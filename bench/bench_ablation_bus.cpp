// Ablation for the paper's section-6 future work: how much do the "chain
// reaction" shifts cost, and what would a broadcast bus buy?
//
// For each error level we run the pure systolic machine and the bus variant
// at three bus widths (1, 4, unbounded) and report iterations and total
// cycles (iterations + bus serialisation).  The paper conjectures the shifts
// dominate in both the highly-similar and highly-different regimes; the gap
// between "pure" and "bus inf" quantifies exactly that.

#include <iostream>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/bus_variant.hpp"
#include "core/systolic_diff.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  const int kSeeds = 12;
  RowGenParams rp;
  rp.width = 10000;

  FixedTable table;
  table.set_header({"err%", "pure-iters", "bus-inf-iters", "bus-inf-cycles",
                    "bus-w4-cycles", "bus-w1-cycles", "speedup(inf)"});

  std::cout << "=== Broadcast-bus ablation (section 6 future work) ===\n";
  std::cout << "(rows of " << rp.width << " px, density 30%, " << kSeeds
            << " seeds per point; cycles = iterations + bus serialisation)\n\n";

  for (int pct : {1, 2, 5, 10, 20, 30, 40, 50, 60}) {
    ErrorGenParams err;
    err.error_fraction = pct / 100.0;
    RunningStat pure_i, businf_i, businf_c, busw4_c, busw1_c;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(pct) * 271 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair(rng, rp, err);

      pure_i.add(static_cast<double>(
          systolic_xor(s.first, s.second).counters.iterations));

      BusConfig inf;  // unbounded bus
      const BusResult r_inf = bus_systolic_xor(s.first, s.second, inf);
      businf_i.add(static_cast<double>(r_inf.counters.iterations));
      businf_c.add(static_cast<double>(r_inf.total_cycles()));

      BusConfig w4;
      w4.bus_width = 4;
      busw4_c.add(static_cast<double>(
          bus_systolic_xor(s.first, s.second, w4).total_cycles()));

      BusConfig w1;
      w1.bus_width = 1;
      busw1_c.add(static_cast<double>(
          bus_systolic_xor(s.first, s.second, w1).total_cycles()));
    }
    table.add_row(
        {FixedTable::num(static_cast<std::int64_t>(pct)),
         FixedTable::num(pure_i.mean(), 1), FixedTable::num(businf_i.mean(), 1),
         FixedTable::num(businf_c.mean(), 1), FixedTable::num(busw4_c.mean(), 1),
         FixedTable::num(busw1_c.mean(), 1),
         FixedTable::num(pure_i.mean() / std::max(1.0, businf_c.mean()), 2)});
  }

  std::cout << table.str() << '\n';
  std::cout << "reading: 'speedup(inf)' is pure-systolic iterations over\n"
               "unbounded-bus cycles — the upper bound on what the paper's\n"
               "proposed broadcast bus could save on shifts alone.\n";
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
