// Hardware feasibility table for the Figure-2 machine: area (gate
// equivalents) and clock estimates across word widths and array sizes, and
// the resulting rows-per-second throughput on the paper's 10,000-pixel
// workload at 3.5% error.  The paper proposes the hardware; this bench
// budgets it.

#include <iostream>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "systolic/datapath.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  // Measure the mean iterations for the reference workload once.
  RowGenParams rp;
  rp.width = 10000;
  ErrorGenParams ep;
  ep.error_fraction = 0.035;
  RunningStat iters, cells_needed;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(900 + static_cast<std::uint64_t>(seed));
    const RowPairSample s = generate_pair(rng, rp, ep);
    const SystolicResult r = systolic_xor(s.first, s.second);
    iters.add(static_cast<double>(r.counters.iterations));
    cells_needed.add(
        static_cast<double>(s.first.run_count() + s.second.run_count()));
  }
  const auto cells = static_cast<std::size_t>(cells_needed.mean()) + 1;
  const double gate_delay_ns = 0.5;  // late-1990s standard cell

  std::cout << "=== Hardware budget for the Figure-2 array ===\n";
  std::cout << "(workload: 10,000-px rows at 30% density, 3.5% errors -> mean "
            << FixedTable::num(iters.mean(), 1) << " iterations, "
            << cells << " cells)\n\n";

  FixedTable table;
  table.set_header({"word-bits", "style", "cell-GE", "array-kGE",
                    "crit-path", "clock-MHz", "rows/s"});
  for (const unsigned bits : {16u, 20u, 24u, 32u}) {
    for (const AdderStyle style : {AdderStyle::kRipple,
                                   AdderStyle::kLookahead}) {
      const ArrayCostModel model{CellCostModel(bits, style), cells};
      const double clock_mhz = model.max_clock_mhz(gate_delay_ns);
      const double rows_per_s = clock_mhz * 1e6 / iters.mean();
      table.add_row(
          {FixedTable::num(static_cast<std::uint64_t>(bits)),
           style == AdderStyle::kRipple ? "ripple" : "lookahead",
           FixedTable::num(model.cell.cell_total().total()),
           FixedTable::num(static_cast<double>(model.total().total()) / 1000.0,
                           1),
           FixedTable::num(
               static_cast<std::uint64_t>(model.cell.critical_path_gates())),
           FixedTable::num(clock_mhz, 0), FixedTable::num(rows_per_s, 0)});
    }
  }
  std::cout << table.str() << '\n';
  std::cout << "reading: even the 32-bit ripple design clears hundreds of\n"
               "thousands of row-diffs per second on similar images (i.e.\n"
               "hundreds of full boards per second) — comfortably real-time\n"
               "for the paper's gigabytes-in-seconds PCB regime.\n";
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
