// High-volume bound verification: hammer the machine with randomized
// workloads across the whole regime grid and report the *slack* of each
// paper bound — how close measured iterations come to Theorem 1 (k1+k2)
// and the unproven Observation (k3+1).  A violation aborts loudly (the
// simulator enforces Theorem 1 internally; the Observation is checked
// here), so a clean run of this bench is itself a verification statement.

#include <algorithm>
#include <iostream>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  FixedTable table;
  table.set_header({"regime", "cases", "iters/thm1 max", "iters/obs max",
                    "obs violations"});

  std::uint64_t total_cases = 0;
  struct Regime {
    const char* name;
    pos_t width;
    double density;
    double error;  // < 0: independent rows
    int cases;
  };
  const Regime regimes[] = {
      {"similar 1%", 4000, 0.30, 0.01, 400},
      {"similar 5%", 4000, 0.30, 0.05, 400},
      {"moderate 20%", 4000, 0.30, 0.20, 200},
      {"heavy 50%", 4000, 0.30, 0.50, 100},
      {"extreme 75%", 4000, 0.40, 0.75, 100},
      {"sparse 5%-density", 4000, 0.05, 0.02, 200},
      {"dense 80%-density", 4000, 0.80, 0.02, 200},
      {"independent", 1000, 0.50, -1.0, 200},
      {"tiny rows", 64, 0.40, 0.10, 800},
  };

  for (const Regime& regime : regimes) {
    double max_thm1 = 0, max_obs = 0;
    std::uint64_t obs_violations = 0;
    for (int c = 0; c < regime.cases; ++c) {
      Rng rng(0xb0d5 + static_cast<std::uint64_t>(c) * 977 +
              static_cast<std::uint64_t>(regime.width));
      RleRow a, b;
      if (regime.error >= 0) {
        RowGenParams rp;
        rp.width = regime.width;
        rp.density = regime.density;
        ErrorGenParams ep;
        ep.error_fraction = regime.error;
        const RowPairSample s = generate_pair(rng, rp, ep);
        a = s.first;
        b = s.second;
      } else {
        RowGenParams rp;
        rp.width = regime.width;
        rp.density = regime.density;
        a = generate_row(rng, rp);
        b = generate_row(rng, rp);
      }
      // The simulator enforces Theorem 1 internally (throws on violation).
      const SystolicResult r = systolic_xor(a, b);
      ++total_cases;
      const double thm1 =
          static_cast<double>(a.run_count() + b.run_count());
      const double obs = static_cast<double>(r.output.run_count() + 1);
      if (thm1 > 0)
        max_thm1 = std::max(
            max_thm1, static_cast<double>(r.counters.iterations) / thm1);
      max_obs = std::max(max_obs,
                         static_cast<double>(r.counters.iterations) / obs);
      if (static_cast<double>(r.counters.iterations) > obs) ++obs_violations;
    }
    table.add_row({regime.name,
                   FixedTable::num(static_cast<std::int64_t>(regime.cases)),
                   FixedTable::num(max_thm1, 3), FixedTable::num(max_obs, 3),
                   FixedTable::num(obs_violations)});
  }

  std::cout << "=== Bound verification sweep ===\n";
  std::cout << "(ratios < 1 mean the bound held with slack; 'obs' is the\n"
               " unproven section-5 Observation k3+1 on canonical inputs)\n\n";
  std::cout << table.str() << '\n';
  std::cout << total_cases
            << " cases; Theorem 1 is additionally enforced inside the "
               "simulator on every run.\n";
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
