// Ablation for the paper's second future-work item: compacting the scattered,
// possibly-adjacent output runs at the end of a systolic run.  For each error
// level we measure how non-canonical the raw machine output actually is and
// compare the modelled costs of a pure-systolic sweep (one cycle per array
// cell) versus a bus-assisted gather (one transaction per occupied cell).

#include <iostream>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/compaction.hpp"
#include "core/systolic_diff.hpp"
#include "core/union_variant.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  const int kSeeds = 12;
  RowGenParams rp;
  rp.width = 10000;

  FixedTable table;
  table.set_header({"err%", "raw-runs", "merges", "canonical-runs",
                    "sweep-cycles", "bus-cycles", "bus-saving",
                    "on-array-passes", "on-array-iters"});

  std::cout << "=== Output-compaction ablation (section 6 future work) ===\n";
  std::cout << "(rows of " << rp.width << " px, density 30%, " << kSeeds
            << " seeds per point)\n\n";

  for (int pct : {1, 2, 5, 10, 20, 30, 40, 50}) {
    ErrorGenParams err;
    err.error_fraction = pct / 100.0;
    RunningStat raw_runs, merges, canon_runs, sweep, bus, passes, arr_iters;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(pct) * 613 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair(rng, rp, err);
      const SystolicResult r = systolic_xor(s.first, s.second);
      const CompactionResult c = compact_row(r.output);
      const CompactionCost cost = compaction_cost(
          static_cast<std::size_t>(r.counters.cells_used),
          r.output.run_count());
      // Our extension: the same compaction performed ON the array by the
      // union machine (O(log chain) passes).
      const CompactPassResult on_array = systolic_compact(r.output);
      raw_runs.add(static_cast<double>(r.output.run_count()));
      merges.add(static_cast<double>(c.merges));
      canon_runs.add(static_cast<double>(c.row.run_count()));
      sweep.add(static_cast<double>(cost.sequential_cycles));
      bus.add(static_cast<double>(cost.bus_cycles));
      passes.add(static_cast<double>(on_array.passes));
      arr_iters.add(static_cast<double>(on_array.counters.iterations));
    }
    table.add_row({FixedTable::num(static_cast<std::int64_t>(pct)),
                   FixedTable::num(raw_runs.mean(), 1),
                   FixedTable::num(merges.mean(), 2),
                   FixedTable::num(canon_runs.mean(), 1),
                   FixedTable::num(sweep.mean(), 0),
                   FixedTable::num(bus.mean(), 0),
                   FixedTable::num(sweep.mean() / std::max(1.0, bus.mean()),
                                   2),
                   FixedTable::num(passes.mean(), 2),
                   FixedTable::num(arr_iters.mean(), 1)});
  }

  std::cout << table.str() << '\n';
  std::cout << "reading: at low error rates the answer occupies few cells of\n"
               "a long array, so the bus-assisted gather ('bus-cycles') beats\n"
               "the cell-by-cell sweep ('sweep-cycles') by the 'bus-saving'\n"
               "factor.  'merges' shows how rarely the machine's raw output\n"
               "is actually non-canonical.\n";
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
