// Validates a specific sentence of section 5: "This was true irrespective of
// the sizes of the images and varied only slightly over different densities."
//
// At a fixed error percentage we sweep the foreground density of the first
// image and report the systolic iteration count and its ratio to the
// run-count difference.  The ratio staying near 1 across densities is the
// claim under test.

#include <iostream>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  const int kSeeds = 15;
  const double kErrorFraction = 0.05;

  FixedTable table;
  table.set_header({"density%", "k1", "iterations", "run-diff",
                    "iters/run-diff"});

  std::cout << "=== Density sweep at " << kErrorFraction * 100
            << "% errors (section 5's 'varied only slightly over different "
               "densities') ===\n\n";

  double min_ratio = 1e9, max_ratio = 0;
  for (const int density_pct : {10, 20, 30, 40, 50, 60, 70}) {
    RowGenParams rp;
    rp.width = 10000;
    rp.density = density_pct / 100.0;
    ErrorGenParams ep;
    ep.error_fraction = kErrorFraction;
    RunningStat iters, diffs, k1s;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(density_pct) * 97 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair(rng, rp, ep);
      const SystolicResult r = systolic_xor(s.first, s.second);
      const double k1 = static_cast<double>(s.first.run_count());
      const double k2 = static_cast<double>(s.second.run_count());
      iters.add(static_cast<double>(r.counters.iterations));
      diffs.add(k1 > k2 ? k1 - k2 : k2 - k1);
      k1s.add(k1);
    }
    const double ratio = iters.mean() / std::max(1.0, diffs.mean());
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    table.add_row({FixedTable::num(static_cast<std::int64_t>(density_pct)),
                   FixedTable::num(k1s.mean(), 0),
                   FixedTable::num(iters.mean(), 1),
                   FixedTable::num(diffs.mean(), 1),
                   FixedTable::num(ratio, 3)});
  }

  std::cout << table.str() << '\n';
  std::cout << "iters/run-diff across densities: ["
            << FixedTable::num(min_ratio, 3) << ", "
            << FixedTable::num(max_ratio, 3) << "]"
            << (max_ratio / min_ratio < 1.5 ? "  [varies only slightly]"
                                            : "  [VARIES STRONGLY]")
            << '\n';
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
