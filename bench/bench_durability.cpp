// Durability extension: does the durable image store's crash story hold at
// every possible kill point, and what does the write-ahead journal cost?
//
// The claim under test is the *prefix property*: however the writer dies —
// at a record boundary, mid-record, or with arbitrary at-rest corruption —
// recovery yields exactly the store state after some prefix of the
// acknowledged operation sequence, with the accounting identities intact
// and zero recovered handles whose bytes do not fingerprint to them.  The
// harness is deterministic: instead of racing a real SIGKILL against the
// page cache, it replays the same acknowledged op log against byte-exact
// crash images (truncations of the journal at every boundary and at
// injected mid-record offsets, plus single-byte corruptions) and recovers
// each one into a scratch directory.
//
//   1. Boundary sweep — a journal of N acknowledged register/evict records
//      is cut at every record boundary; recovery from the cut-at-k image
//      must equal the model state after exactly k ops.
//   2. Mid-record sweep — the same journal is cut inside every record
//      (first byte, midpoint, last byte); the torn record was never
//      acknowledged as readable, so recovery must equal the state after
//      every *complete* record before the cut — still a prefix.
//   3. Corruption sweep — every single byte of the journal is flipped, one
//      at a time.  The record CRC (which covers the length prefix) turns
//      each flip into a torn tail: recovery must match the model prefix the
//      salvage rules imply, and must never crash or serve a wrong image.
//   4. Snapshot + journal — ops, an explicit compaction, more ops; the
//      post-snapshot journal gets the same boundary sweep (prefix now means
//      snapshot state plus a journal prefix), and every byte of the
//      snapshot file is flipped: a corrupt entry becomes a typed
//      recovery_dropped, the resident set stays a subset of the true state,
//      and every surviving handle still fingerprints clean.
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --smoke shrinks the
// workload for CI.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rle/serialize.hpp"
#include "store/durable_store.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace fs = std::filesystem;
using namespace sysrle;

namespace {

RleImage make_image(std::uint64_t seed, pos_t rows, pos_t width) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  p.density = 0.30;
  return generate_image(rng, rows, p);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// One acknowledged op: the journal's fsync (batch size 1) returned before
/// the next op was issued, so every op in the log is acknowledged.
struct Op {
  bool is_register = true;
  ImageHandle handle = 0;
};

/// The model: resident handles after the first `k` acknowledged ops.
std::set<ImageHandle> expected_after(const std::vector<Op>& ops,
                                     std::size_t k) {
  std::set<ImageHandle> resident;
  for (std::size_t i = 0; i < k; ++i) {
    if (ops[i].is_register)
      resident.insert(ops[i].handle);
    else
      resident.erase(ops[i].handle);
  }
  return resident;
}

DurableStoreConfig recover_config(const std::string& dir) {
  DurableStoreConfig cfg;
  cfg.dir = dir;
  cfg.snapshot_on_recovery = false;  // the sweep reads, it does not compact
  return cfg;
}

/// Recovers `dir` and checks it against `expected`: same resident set, the
/// accounting identity, and — the never-serve-a-wrong-image half — every
/// resident handle's parsed bytes re-fingerprint to the handle.
bool recovered_matches(const std::string& dir,
                       const std::set<ImageHandle>& expected,
                       std::uint64_t* fingerprint_mismatches) {
  DurableStore ds(recover_config(dir));
  const StoreStats ss = ds.store().stats();
  if (!ss.accounted()) return false;
  if (ss.resident != expected.size()) return false;
  for (const ImageHandle h : expected) {
    PinnedImage pin = ds.store().acquire(h);
    if (!pin) return false;
    if (canonical_fingerprint(pin.image()) != h) {
      ++*fingerprint_mismatches;
      return false;
    }
  }
  return true;
}

/// Scratch directory holding one crash image of `journal_bytes` (and, when
/// non-empty, a snapshot) to recover from.
void stage_crash_image(const std::string& dir, const std::string& journal_bytes,
                       const std::string& snapshot_bytes) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  write_file(store_journal_path(dir), journal_bytes);
  if (!snapshot_bytes.empty())
    write_file(store_snapshot_path(dir), snapshot_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_durability [--json FILE] [--smoke]\n";
      return 2;
    }
  }

  const pos_t kRows = smoke ? 4 : 8;
  const pos_t kWidth = smoke ? 64 : 256;
  const int kRegisters = smoke ? 8 : 24;
  const int kEvictEvery = 4;  // every 4th op is an explicit evict

  const std::string base = (fs::temp_directory_path() /
                            ("sysrle_bench_durability_" +
                             std::to_string(::getpid())))
                               .string();
  const std::string dir_a = base + "/journal_only";
  const std::string dir_b = base + "/snapshotted";
  const std::string scratch = base + "/scratch";
  fs::remove_all(base);
  fs::create_directories(dir_a);
  fs::create_directories(dir_b);

  BenchReport report("bench_durability");
  report.set_param("rows", static_cast<std::int64_t>(kRows));
  report.set_param("width", static_cast<std::int64_t>(kWidth));
  report.set_param("registers", static_cast<std::int64_t>(kRegisters));
  report.set_param("smoke", smoke ? "true" : "false");

  // --- build the acknowledged op log (journal only, no compaction) --------
  std::vector<Op> ops;
  const auto t0 = std::chrono::steady_clock::now();
  {
    DurableStoreConfig cfg;
    cfg.dir = dir_a;
    cfg.snapshot_every = 0;
    DurableStore ds(cfg);
    std::uint64_t seed = 1;
    std::vector<ImageHandle> live;
    for (int i = 0; i < kRegisters; ++i) {
      const RleImage img = make_image(seed++, kRows, kWidth);
      const auto rr = ds.register_image(img, "img" + std::to_string(i));
      if (!rr.ok) return 3;  // 64-bit collision: not reachable in practice
      ops.push_back({true, rr.handle});
      live.push_back(rr.handle);
      if ((i + 1) % kEvictEvery == 0 && !live.empty()) {
        const ImageHandle victim = live.front();
        live.erase(live.begin());
        if (!ds.evict(victim)) return 3;
        ops.push_back({false, victim});
      }
    }
  }
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::string journal_a = read_file(store_journal_path(dir_a));
  const JournalLoadResult full = load_journal(store_journal_path(dir_a));
  const bool log_complete = full.records.size() == ops.size() &&
                            full.salvaged_tail_bytes == 0;
  report.set_check("journal_log_complete", log_complete);
  report.set_scalar("acknowledged_ops", static_cast<double>(ops.size()));
  report.set_scalar("journal_bytes", static_cast<double>(journal_a.size()));
  report.set_scalar("journal_appends_per_sec",
                    build_s > 0 ? static_cast<double>(ops.size()) / build_s
                                : 0.0);

  std::uint64_t fingerprint_mismatches = 0;
  std::uint64_t crash_points = 0;
  std::uint64_t recoveries = 0;

  // --- 1. every record boundary -------------------------------------------
  bool boundaries_ok = log_complete;
  {
    std::vector<std::uint64_t> cuts;
    cuts.push_back(full.records.empty() ? journal_a.size()
                                        : full.records.front().offset);
    for (const JournalRecord& r : full.records)
      cuts.push_back(r.offset + r.length);
    for (std::size_t k = 0; k < cuts.size(); ++k) {
      stage_crash_image(scratch, journal_a.substr(0, cuts[k]), "");
      ++crash_points;
      ++recoveries;
      if (!recovered_matches(scratch, expected_after(ops, k),
                             &fingerprint_mismatches))
        boundaries_ok = false;
    }
  }
  report.set_check("prefix_property_boundaries", boundaries_ok);

  // --- 2. mid-record cuts --------------------------------------------------
  bool midrecord_ok = log_complete;
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    const JournalRecord& r = full.records[i];
    // A cut inside record i leaves records 0..i-1 readable: the torn record
    // must vanish, not half-apply.
    for (const std::uint64_t delta :
         {std::uint64_t{1}, r.length / 2, r.length - 1}) {
      stage_crash_image(scratch, journal_a.substr(0, r.offset + delta), "");
      ++crash_points;
      ++recoveries;
      if (!recovered_matches(scratch, expected_after(ops, i),
                             &fingerprint_mismatches))
        midrecord_ok = false;
    }
  }
  report.set_check("prefix_property_midrecord", midrecord_ok);

  // --- 3. every single-byte corruption ------------------------------------
  // A flip anywhere in the file must reduce to some salvage prefix: the
  // loader's record count k after the flip decides which prefix, and the
  // recovered store must equal the model after k ops.  (A flip inside
  // record i always truncates the clean prefix at i — the CRC covers the
  // framing — so k is also the index of the flipped record.)
  bool flips_ok = log_complete;
  for (std::size_t off = 0; off < journal_a.size(); ++off) {
    std::string flipped = journal_a;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x20);
    stage_crash_image(scratch, flipped, "");
    ++crash_points;
    ++recoveries;
    const JournalLoadResult salvage = load_journal(store_journal_path(scratch));
    const std::size_t k = salvage.records.size();
    if (k > ops.size()) {
      flips_ok = false;
      continue;
    }
    if (!recovered_matches(scratch, expected_after(ops, k),
                           &fingerprint_mismatches))
      flips_ok = false;
  }
  report.set_check("corruption_sweep_journal", flips_ok);

  // --- 4. snapshot + post-snapshot journal ---------------------------------
  std::vector<Op> pre_ops;
  std::vector<Op> post_ops;
  {
    DurableStoreConfig cfg;
    cfg.dir = dir_b;
    cfg.snapshot_every = 0;
    DurableStore ds(cfg);
    std::uint64_t seed = 1000;
    const int kPre = smoke ? 4 : 8;
    const int kPost = smoke ? 4 : 8;
    for (int i = 0; i < kPre; ++i) {
      const RleImage img = make_image(seed++, kRows, kWidth);
      const auto rr = ds.register_image(img, "pre" + std::to_string(i));
      if (!rr.ok) return 3;
      pre_ops.push_back({true, rr.handle});
    }
    ds.snapshot_now();
    for (int i = 0; i < kPost; ++i) {
      const RleImage img = make_image(seed++, kRows, kWidth);
      const auto rr = ds.register_image(img, "post" + std::to_string(i));
      if (!rr.ok) return 3;
      post_ops.push_back({true, rr.handle});
    }
    // One explicit evict of a *snapshotted* image: replay must apply a
    // journal evict against a snapshot-recovered entry.
    if (!ds.evict(pre_ops.front().handle)) return 3;
    post_ops.push_back({false, pre_ops.front().handle});
  }
  const std::string journal_b = read_file(store_journal_path(dir_b));
  const std::string snapshot_b = read_file(store_snapshot_path(dir_b));
  const JournalLoadResult full_b = load_journal(store_journal_path(dir_b));
  const std::set<ImageHandle> snap_state =
      expected_after(pre_ops, pre_ops.size());

  bool snapshot_boundaries_ok =
      full_b.records.size() == post_ops.size() && !snapshot_b.empty();
  {
    std::vector<std::uint64_t> cuts;
    cuts.push_back(full_b.records.empty() ? journal_b.size()
                                          : full_b.records.front().offset);
    for (const JournalRecord& r : full_b.records)
      cuts.push_back(r.offset + r.length);
    for (std::size_t k = 0; k < cuts.size(); ++k) {
      stage_crash_image(scratch, journal_b.substr(0, cuts[k]), snapshot_b);
      ++crash_points;
      ++recoveries;
      // Prefix now means: the snapshotted state plus the first k journaled
      // post-snapshot ops.
      std::vector<Op> combined = pre_ops;
      combined.insert(combined.end(), post_ops.begin(),
                      post_ops.begin() + static_cast<std::ptrdiff_t>(k));
      if (!recovered_matches(scratch, expected_after(combined, combined.size()),
                             &fingerprint_mismatches))
        snapshot_boundaries_ok = false;
    }
  }
  report.set_check("prefix_property_snapshot_plus_journal",
                   snapshot_boundaries_ok);

  // Snapshot corruption: a flipped byte may only shrink the recovered set
  // (typed drops), never crash and never serve a mismatched fingerprint.
  bool snapshot_flips_ok = !snapshot_b.empty();
  const std::set<ImageHandle> final_state = [&] {
    std::vector<Op> combined = pre_ops;
    combined.insert(combined.end(), post_ops.begin(), post_ops.end());
    return expected_after(combined, combined.size());
  }();
  for (std::size_t off = 0; off < snapshot_b.size(); ++off) {
    std::string flipped = snapshot_b;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x20);
    stage_crash_image(scratch, journal_b, flipped);
    ++crash_points;
    ++recoveries;
    DurableStore ds(recover_config(scratch));
    const StoreStats ss = ds.store().stats();
    if (!ss.accounted()) snapshot_flips_ok = false;
    std::size_t resident_seen = 0;
    for (const ImageHandle h : final_state) {
      PinnedImage pin = ds.store().acquire(h);
      if (!pin) continue;
      ++resident_seen;
      if (canonical_fingerprint(pin.image()) != h) {
        ++fingerprint_mismatches;
        snapshot_flips_ok = false;
      }
    }
    // Nothing outside the true state may appear, and drops must be typed.
    if (ss.resident != resident_seen) snapshot_flips_ok = false;
    const RecoveryReport& rec = ds.recovery();
    if (rec.snapshot_header_ok && rec.snapshot_salvaged_bytes == 0 &&
        rec.dropped() == 0 && resident_seen != final_state.size())
      snapshot_flips_ok = false;
  }
  report.set_check("corruption_sweep_snapshot", snapshot_flips_ok);
  report.set_check("zero_fingerprint_mismatches", fingerprint_mismatches == 0);
  report.set_scalar("crash_points", static_cast<double>(crash_points));
  report.set_scalar("recoveries", static_cast<double>(recoveries));
  report.set_scalar("fingerprint_mismatches",
                    static_cast<double>(fingerprint_mismatches));

  std::cout << "acknowledged ops: " << ops.size() << " (journal "
            << journal_a.size() << " bytes)\n"
            << "crash points tested: " << crash_points << " (recoveries "
            << recoveries << ")\n"
            << "prefix property: boundaries="
            << (boundaries_ok ? "ok" : "FAIL")
            << " midrecord=" << (midrecord_ok ? "ok" : "FAIL")
            << " snapshot+journal="
            << (snapshot_boundaries_ok ? "ok" : "FAIL") << '\n'
            << "corruption sweeps: journal=" << (flips_ok ? "ok" : "FAIL")
            << " snapshot=" << (snapshot_flips_ok ? "ok" : "FAIL") << '\n'
            << "fingerprint mismatches served: " << fingerprint_mismatches
            << '\n';

  fs::remove_all(base);
  if (!json_path.empty()) report.write_file(json_path);
  return report.all_checks_pass() ? 0 : 1;
}
