// System-level extension: a farm of P systolic machines diffing a whole
// board image row by row.  Shows how far the per-row machine's latency
// advantage carries to board latency, and how dispatch policy matters once
// row service times are skewed.

#include <iostream>

#include "common/fixed_table.hpp"
#include "core/machine_farm.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  // One synthetic board: 512 scanlines of 4096 px at 30% density, a few
  // defective rows (higher error) among mostly clean ones — realistic skew.
  Rng rng(4242);
  RowGenParams rp;
  rp.width = 4096;
  const pos_t height = 512;
  RleImage a = generate_image(rng, height, rp);
  RleImage b(rp.width, height);
  for (pos_t y = 0; y < height; ++y) {
    ErrorGenParams ep;
    ep.error_fraction = (y % 37 == 0) ? 0.10 : 0.002;  // sparse defect rows
    b.set_row(y, inject_errors(rng, a.row(y), rp.width, ep));
  }

  FixedTable table;
  table.set_header({"machines", "policy", "makespan", "utilisation",
                    "speedup-vs-1"});

  std::cout << "=== Row-farm throughput model (" << height << " rows of "
            << rp.width << " px) ===\n\n";

  double baseline = 0;
  for (const std::size_t machines : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (const auto policy : {FarmConfig::Policy::kFifo,
                              FarmConfig::Policy::kLongestFirst}) {
      FarmConfig cfg;
      cfg.machines = machines;
      cfg.policy = policy;
      const FarmResult r = simulate_row_farm(a, b, cfg);
      if (machines == 1 && policy == FarmConfig::Policy::kFifo)
        baseline = static_cast<double>(r.makespan);
      table.add_row(
          {FixedTable::num(static_cast<std::uint64_t>(machines)),
           policy == FarmConfig::Policy::kFifo ? "fifo" : "longest-first",
           FixedTable::num(r.makespan),
           FixedTable::num(r.utilisation, 3),
           FixedTable::num(baseline / static_cast<double>(r.makespan), 2)});
    }
  }

  std::cout << table.str() << '\n';
  std::cout << "reading: with skewed rows (a few defect-heavy scanlines),\n"
               "longest-first dispatch keeps utilisation high at large P\n"
               "while FIFO stalls behind the long rows.\n";
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
