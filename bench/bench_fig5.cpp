// Reproduces Figure 5: "Number of iterations as a function of the percent of
// pixels with errors plotted alongside two of the dominating factors in the
// algorithm's running time."
//
// Paper setup: rows of 10,000 pixels with ~250 runs (30 % density); foreground
// runs of length 4-20; error runs of length 2-6; the error percentage is swept
// and three series are reported per point:
//   (1) systolic iterations,
//   (2) the difference in the number of runs in the two images |k1-k2|,
//   (3) the number of runs in the XOR produced by the algorithm (the
//       unproven Observation upper bound).
//
// Expected shape (validated by EXPERIMENTS.md): series (1) hugs series (2)
// up to ~30-40 % error, then bends toward series (3); (3) is never exceeded.
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --smoke shrinks the
// sweep for CI.

#include <iostream>
#include <string>
#include <vector>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/metrics.hpp"
#include "workload/rng.hpp"

int main(int argc, char** argv) {
  using namespace sysrle;

  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_fig5 [--json FILE] [--smoke]\n";
      return 2;
    }
  }

  const pos_t kWidth = 10000;
  const int seeds_per_point = smoke ? 3 : 12;
  const int pct_step = smoke ? 10 : 5;
  RowGenParams row_params;  // defaults: width 10000, runs 4-20, density 0.30

  FixedTable table;
  table.set_header({"err%", "iterations", "run-diff |k1-k2|", "runs-in-XOR",
                    "k1", "k2", "obs-bound-ok"});

  std::vector<double> xs, iters, diffs, k3s;
  std::vector<double> iters_low, diffs_low;  // the <= 40% band
  bool obs_ok_all = true;

  for (int pct = 0; pct <= 70; pct += pct_step) {
    ErrorGenParams err;
    err.error_fraction = pct / 100.0;
    RunningStat s_iter, s_diff, s_k3, s_k1, s_k2, s_err;
    bool obs_ok = true;

    for (int seed = 0; seed < seeds_per_point; ++seed) {
      Rng rng(static_cast<std::uint64_t>(pct) * 1000 +
              static_cast<std::uint64_t>(seed) + 1);
      const RowPairSample sample = generate_pair(rng, row_params, err);
      const SystolicResult r = systolic_xor(sample.first, sample.second);

      const double k1 = static_cast<double>(sample.first.run_count());
      const double k2 = static_cast<double>(sample.second.run_count());
      const double k3_raw = static_cast<double>(r.output.run_count());
      s_iter.add(static_cast<double>(r.counters.iterations));
      s_diff.add(k1 > k2 ? k1 - k2 : k2 - k1);
      s_k3.add(k3_raw);
      s_k1.add(k1);
      s_k2.add(k2);
      s_err.add(static_cast<double>(sample.error_pixels) /
                static_cast<double>(kWidth) * 100.0);
      obs_ok &= static_cast<double>(r.counters.iterations) <= k3_raw + 1.0;
    }
    obs_ok_all &= obs_ok;

    xs.push_back(s_err.mean());
    iters.push_back(s_iter.mean());
    diffs.push_back(s_diff.mean());
    k3s.push_back(s_k3.mean());
    if (s_err.mean() <= 40.0) {
      iters_low.push_back(s_iter.mean());
      diffs_low.push_back(s_diff.mean());
    }

    table.add_row({FixedTable::num(s_err.mean(), 1),
                   FixedTable::num(s_iter.mean(), 1),
                   FixedTable::num(s_diff.mean(), 1),
                   FixedTable::num(s_k3.mean(), 1),
                   FixedTable::num(s_k1.mean(), 0),
                   FixedTable::num(s_k2.mean(), 0),
                   obs_ok ? "yes" : "NO"});
  }

  std::cout << "=== Figure 5: iterations vs percent of pixels with errors ===\n";
  std::cout << "(rows of " << kWidth << " px, ~250 runs, density 30%, "
            << seeds_per_point << " seeds per point)\n\n";
  std::cout << table.str() << '\n';

  const double r_full = pearson(iters, diffs);
  const double r_low = pearson(iters_low, diffs_low);
  const double r_k3 = pearson(iters, k3s);
  std::cout << "Pearson(iterations, run-diff), full sweep : "
            << FixedTable::num(r_full, 3) << '\n';
  std::cout << "Pearson(iterations, run-diff), <=40% band : "
            << FixedTable::num(r_low, 3) << '\n';
  std::cout << "Pearson(iterations, runs-in-XOR)          : "
            << FixedTable::num(r_k3, 3) << '\n';

  std::cout << "\nCSV:\n" << table.csv();

  if (!json_path.empty()) {
    BenchReport report("fig5");
    report.set_param("width", static_cast<std::int64_t>(kWidth));
    report.set_param("seeds_per_point",
                     static_cast<std::int64_t>(seeds_per_point));
    report.set_param("mode", smoke ? "smoke" : "full");
    report.set_x("error_pct", xs);
    report.add_series("iterations", iters);
    report.add_series("run_diff", diffs);
    report.add_series("runs_in_xor", k3s);
    report.set_scalar("pearson_iter_rundiff_full", r_full);
    report.set_scalar("pearson_iter_rundiff_low_band", r_low);
    report.set_scalar("pearson_iter_k3", r_k3);
    report.set_check("observation_bound_ok", obs_ok_all);
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << '\n';
  }
  return 0;
}
