// Wall-clock microbenchmarks (google-benchmark) comparing every row-diff
// engine on the paper's workload.  Not a paper artefact — the paper counts
// iterations, not nanoseconds — but useful for sanity-checking the simulator
// and the library fast path.

#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "baseline/simd_dispatch.hpp"
#include "baseline/word_diff.hpp"
#include "core/boolean_ops.hpp"
#include "core/bus_variant.hpp"
#include "core/image_diff.hpp"
#include "core/systolic_diff.hpp"
#include "core/union_variant.hpp"
#include "rle/rle_image.hpp"
#include "rle/encode.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

struct Inputs {
  RleRow a, b;
  pos_t width;
};

/// One deterministic input pair per (width, error %) point, shared by every
/// engine so the comparison is apples to apples.
Inputs make_inputs(pos_t width, int err_pct) {
  Rng rng(static_cast<std::uint64_t>(width) * 1009 +
          static_cast<std::uint64_t>(err_pct));
  RowGenParams rp;
  rp.width = width;
  ErrorGenParams ep;
  ep.error_fraction = err_pct / 100.0;
  const RowPairSample s = generate_pair(rng, rp, ep);
  return {s.first, s.second, width};
}

void args_grid(benchmark::internal::Benchmark* b) {
  for (const std::int64_t width : {1024, 10000}) {
    for (const std::int64_t err : {3, 30}) {
      b->Args({width, err});
    }
  }
}

void BM_SystolicSimulation(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  cycle_t iterations = 0;
  for (auto _ : state) {
    const SystolicResult r = systolic_xor(in.a, in.b);
    iterations = r.counters.iterations;
    benchmark::DoNotOptimize(r.output);
  }
  state.counters["iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_SystolicSimulation)->Apply(args_grid);

// The telemetry acceptance pair: the disabled path (the default above runs
// with the registry off — one relaxed atomic load per row) must stay within
// noise of the seed build, and the enabled path quantifies the full cost of
// mutex + map + reservoir per row.
void BM_SystolicSimulationTelemetryOn(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  reset_telemetry();
  set_telemetry_enabled(true);
  for (auto _ : state) {
    const SystolicResult r = systolic_xor(in.a, in.b);
    benchmark::DoNotOptimize(r.output);
  }
  set_telemetry_enabled(false);
  reset_telemetry();
}
BENCHMARK(BM_SystolicSimulationTelemetryOn)->Apply(args_grid);

/// One deterministic whole-image pair for the row-parallel benchmarks.
struct ImageInputs {
  RleImage a, b;
};

ImageInputs make_image_inputs(pos_t rows, pos_t width) {
  Rng rng(static_cast<std::uint64_t>(rows) * 7919 +
          static_cast<std::uint64_t>(width));
  RowGenParams gp;
  gp.width = width;
  ImageInputs in{generate_image(rng, rows, gp), RleImage(width, rows)};
  ErrorGenParams ep;
  ep.error_fraction = 0.05;
  for (pos_t y = 0; y < rows; ++y)
    in.b.set_row(y, inject_errors(rng, in.a.row(y), width, ep));
  return in;
}

// The row-executor acceptance pair: telemetry disabled (the default — one
// relaxed atomic load per row, spans skipped entirely) versus enabled, where
// per-row spans are sampled at 1/kRowSpanStride so the shared SpanTracer
// mutex is touched a bounded number of times per image regardless of thread
// count.
void BM_ImageDiffParallel(benchmark::State& state) {
  const ImageInputs in = make_image_inputs(256, 2048);
  ImageDiffOptions options;
  options.engine = DiffEngine::kAdaptive;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const ImageDiffResult r = image_diff(in.a, in.b, options);
    benchmark::DoNotOptimize(r.diff);
  }
}
BENCHMARK(BM_ImageDiffParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_ImageDiffParallelTelemetryOn(benchmark::State& state) {
  const ImageInputs in = make_image_inputs(256, 2048);
  ImageDiffOptions options;
  options.engine = DiffEngine::kAdaptive;
  options.threads = static_cast<std::size_t>(state.range(0));
  reset_telemetry();
  set_telemetry_enabled(true);
  for (auto _ : state) {
    const ImageDiffResult r = image_diff(in.a, in.b, options);
    benchmark::DoNotOptimize(r.diff);
  }
  set_telemetry_enabled(false);
  reset_telemetry();
}
BENCHMARK(BM_ImageDiffParallelTelemetryOn)->Arg(1)->Arg(2)->Arg(4);

void BM_BusVariantSimulation(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  cycle_t iterations = 0;
  for (auto _ : state) {
    const BusResult r = bus_systolic_xor(in.a, in.b);
    iterations = r.counters.iterations;
    benchmark::DoNotOptimize(r.output);
  }
  state.counters["iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_BusVariantSimulation)->Apply(args_grid);

void BM_SequentialMerge(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const SequentialDiffResult r = sequential_xor(in.a, in.b);
    benchmark::DoNotOptimize(r.output);
  }
}
BENCHMARK(BM_SequentialMerge)->Apply(args_grid);

// The word-parallel sequential engine at a pinned dispatch level, on the
// same inputs as BM_SequentialMerge — the ≥3x acceptance comparison for
// the sparse-row workload lives in bench_scaling --dispatch-json; this is
// the per-level microscope.
void BM_WordParallelMerge(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  const auto level = static_cast<SimdLevel>(state.range(2));
  if (!simd_level_supported(level)) {
    state.SkipWithError("SIMD level not supported on this host/build");
    return;
  }
  WordDiffScratch scratch;
  for (auto _ : state) {
    const SequentialDiffResult r = word_parallel_xor(in.a, in.b, scratch, level);
    benchmark::DoNotOptimize(r.output);
  }
  state.SetLabel(to_string(level));
}
BENCHMARK(BM_WordParallelMerge)->Apply([](benchmark::internal::Benchmark* b) {
  for (const std::int64_t width : {1024, 10000}) {
    for (const std::int64_t err : {3, 30}) {
      for (const std::int64_t level :
           {static_cast<std::int64_t>(SimdLevel::kSwar64),
            static_cast<std::int64_t>(SimdLevel::kAvx2)}) {
        b->Args({width, err, level});
      }
    }
  }
});

// The production wrapper (sparse guard + dispatch + thread_local scratch)
// at whatever level the host resolved — what image_diff/stream_diff pay.
void BM_SequentialEngine(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const SequentialDiffResult r = sequential_engine_xor(in.a, in.b);
    benchmark::DoNotOptimize(r.output);
  }
  state.SetLabel(to_string(active_simd_level()));
}
BENCHMARK(BM_SequentialEngine)->Apply(args_grid);

void BM_ParitySweep(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const RleRow r = xor_rows(in.a, in.b);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParitySweep)->Apply(args_grid);

void BM_PixelParallel(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const PixelParallelResult r = pixel_parallel_xor(in.a, in.b, in.width);
    benchmark::DoNotOptimize(r.output);
  }
}
BENCHMARK(BM_PixelParallel)->Apply(args_grid);

void BM_UnionMachine(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const UnionResult r = systolic_or(in.a, in.b);
    benchmark::DoNotOptimize(r.output);
  }
}
BENCHMARK(BM_UnionMachine)->Apply(args_grid);

void BM_ComposedAnd(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const BooleanOpResult r = systolic_and(in.a, in.b);
    benchmark::DoNotOptimize(r.output);
  }
}
BENCHMARK(BM_ComposedAnd)->Apply(args_grid);

void BM_OnArrayCompaction(benchmark::State& state) {
  // Compact a fully fragmented row (worst case: one chain of adjacent unit
  // runs spanning the whole width).
  RleRow fragmented;
  for (pos_t i = 0; i < state.range(0); ++i)
    fragmented.push_back(Run{i, 1});
  for (auto _ : state) {
    const CompactPassResult r = systolic_compact(fragmented);
    benchmark::DoNotOptimize(r.output);
  }
  state.counters["passes"] =
      static_cast<double>(systolic_compact(fragmented).passes);
}
BENCHMARK(BM_OnArrayCompaction)->Arg(256)->Arg(1024);

void BM_EncodeBits(benchmark::State& state) {
  const Inputs in = make_inputs(state.range(0), 3);
  const std::vector<std::uint8_t> bits = decode_bits(in.a, in.width);
  for (auto _ : state) {
    const RleRow r = encode_bits(bits);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EncodeBits)->Arg(10000);

}  // namespace
