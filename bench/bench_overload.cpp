// Robustness extension: what happens when offered load exceeds capacity?
//
// The paper bounds per-row latency on one machine; the ROADMAP's north star
// is a fleet "serving heavy traffic from millions of users".  This bench
// drives the DiffService (src/service) through the load regimes an
// inspection cluster actually sees and validates the serving-side promises
// as named, machine-checkable booleans:
//
//   1. Load sweep (0.5x, 1x, 2x capacity) — every offered request is either
//      admitted or shed with a typed reason (zero silent drops), and the
//      p99 latency of *admitted interactive* requests at 2x stays within 2x
//      of its at-capacity value: the bounded queue converts overload into
//      typed sheds instead of unbounded queueing delay.
//   2. Deadline storm — requests carrying deadlines shorter than the queue
//      delay are shed as deadline_expired (at submit or after admission),
//      and expired requests stop consuming engine cycles mid-image.
//   3. Breaker trip — with the checked engine, an injected permanent fault
//      and no fallback, every request fails; the service breaker opens
//      after `failure_threshold` consecutive failures and later arrivals
//      shed as circuit_open without touching the backend.
//   4. Farm relief — a farm with one permanently flaky machine, with and
//      without per-machine circuit breakers: the breaker caps the wasted
//      dispatches at threshold + half-open probes and the makespan drops
//      back toward the healthy-farm value.
//   5. Hot shard — a 2x2 ShardRouter topology with 70% of route keys pinned
//      to one shard at 2x load: hedges fire for slow interactive requests
//      (hedges_fired > 0) AND the hedge budget caps them
//      (hedges_suppressed > 0), so hedging never doubles offered load
//      exactly when there is no headroom.
//   6. Kill a replica — same topology at 0.5x load; a hot-shard replica is
//      killed mid-phase.  Zero silent drops (router accounting identity
//      holds across the kill) and interactive p99 stays within 2x of the
//      healthy-topology phase driven by the *identical* arrival stream.
//      The phase runs under a FlightRecorder sized to hold every event, and
//      the bench replays the ring afterwards: every offered request id must
//      reconstruct to a timeline ending in a terminal event (respond or a
//      router-level shed), every hedged / failed-over / coalesced request
//      must have its respond on record, and a hedge win must leave a
//      retained anomaly timeline.
//   7. Flight-recorder overhead — the closed-loop calibration workload runs
//      twice, recorder installed vs not; the instrumented per-request cost
//      must stay within 25% of the disabled cost (the disabled fast path is
//      one relaxed atomic load, the enabled path a ticket fetch_add plus
//      relaxed stores per event).
//
// Arrival streams are a pure function of (seed, phase index) — never of
// worker count or topology — so any two phases handed the same pair see
// byte-identical offered traffic (docs/TESTING.md, "Deterministic
// randomness").
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --smoke shrinks the
// workload for CI.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/faults.hpp"
#include "core/machine_farm.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/flight_recorder.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

struct ImagePair {
  RleImage a{0, 0};
  RleImage b{0, 0};
};

/// A small pool of distinct reference/scan pairs reused round-robin, so the
/// submission loop never pays generation cost while pacing arrivals.
std::vector<ImagePair> make_pool(std::size_t n, pos_t rows, pos_t width,
                                 double error_fraction, std::uint64_t seed) {
  std::vector<ImagePair> pool(n);
  Rng rng(seed);
  for (ImagePair& p : pool) {
    RowGenParams gp;
    gp.width = width;
    p.a = generate_image(rng, rows, gp);
    p.b = RleImage(width, rows);
    ErrorGenParams ep;
    ep.error_fraction = error_fraction;
    for (pos_t y = 0; y < rows; ++y)
      p.b.set_row(y, inject_errors(rng, p.a.row(y), width, ep));
  }
  return pool;
}

/// What one load phase produced, folded from the completion callback and the
/// service's own accounting.
struct PhaseOutcome {
  ServiceStats stats;
  RunningStat interactive_us;
  RunningStat batch_us;
  std::uint64_t responses = 0;
  std::uint64_t rows_processed = 0;

  /// offered == admitted + every typed submit-shed, and every admitted
  /// request produced exactly one response: nothing vanished.
  bool accounted() const {
    const std::uint64_t submit_shed =
        stats.shed_queue_full + stats.shed_circuit_open +
        stats.shed_shutdown + stats.shed_deadline_at_submit;
    return stats.offered == stats.admitted + submit_shed &&
           responses == stats.admitted;
  }
};

/// Measures the fleet's saturated throughput: `n` requests are queued all at
/// once against `workers` workers (caps wide open) and the wall time per
/// request is the effective service interval, contention included.  The
/// returned value is the µs of *fleet* time one request costs, i.e. the
/// at-capacity inter-arrival interval.
double calibrate_interarrival_us(const std::vector<ImagePair>& pool, int n,
                                 std::size_t workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.admission.interactive_capacity = static_cast<std::size_t>(n) + 1;
  cfg.admission.batch_capacity = static_cast<std::size_t>(n) + 1;
  const auto t0 = std::chrono::steady_clock::now();
  {
    DiffService service(cfg, nullptr);
    for (int i = 0; i < n; ++i) {
      ServiceRequest req;
      req.id = static_cast<std::uint64_t>(i);
      req.priority = Priority::kBatch;
      const ImagePair& p = pool[static_cast<std::size_t>(i) % pool.size()];
      req.reference = p.a;
      req.scan = p.b;
      req.keep_diff = false;
      service.try_submit(std::move(req));
    }
    service.drain();
  }
  const double wall_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return std::max(wall_us / static_cast<double>(n), 1.0);
}

/// Derives a phase's Poisson arrival-stream seed from (seed, phase index)
/// alone.  Worker count, shard/replica topology, and the backend seed never
/// enter: two phases handed the same (seed, phase) pair offer byte-identical
/// traffic, which is what makes cross-topology latency comparisons (phase 6:
/// healthy vs replica-down) honest.
std::uint64_t arrival_seed_for(std::uint64_t seed, std::uint64_t phase) {
  std::uint64_t z = seed ^ 0xa11ca75ull ^ (phase * 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Open-loop arrival phase: `n` requests arrive as a seeded Poisson process
/// at `load` times the fleet capacity (mean inter-arrival
/// `base_interarrival_us / load`), 1-in-4 interactive.  Poisson arrivals
/// make the at-capacity phase see the same burst-driven queueing the
/// overload phase does, so the p99 comparison is cap-bound against
/// cap-bound rather than idle against saturated.  A `deadline_us` of 0
/// means no deadline.
PhaseOutcome run_phase(const std::vector<ImagePair>& pool, double load,
                       int n, double base_interarrival_us,
                       std::size_t workers, std::uint64_t deadline_us,
                       std::uint64_t seed, std::uint64_t arrival_seed) {
  ServiceConfig cfg;
  cfg.workers = workers;
  // Small bounds are the point: the queue may hold at most ~2 service times
  // of work per class, so admitted-request latency stays bounded and the
  // rest sheds as queue_full.
  cfg.admission.interactive_capacity = 2;
  cfg.admission.batch_capacity = 2 * workers;
  cfg.seed = seed;

  PhaseOutcome out;
  std::mutex mu;
  DiffService service(cfg, [&](ServiceResponse r) {
    std::lock_guard<std::mutex> lk(mu);
    ++out.responses;
    out.rows_processed += r.rows_processed;
    if (r.status == ServiceResponse::Status::kCompleted) {
      (r.priority == Priority::kInteractive ? out.interactive_us
                                            : out.batch_us)
          .add(r.total_us);
    }
  });

  const double mean_interarrival_us = base_interarrival_us / load;
  Rng arrival_rng(arrival_seed);
  double arrival_us = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    arrival_us +=
        -std::log(1.0 - arrival_rng.uniform01()) * mean_interarrival_us;
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(
                    static_cast<std::int64_t>(arrival_us)));
    ServiceRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.priority = i % 4 == 0 ? Priority::kInteractive : Priority::kBatch;
    if (deadline_us > 0)
      req.deadline = Deadline::after(std::chrono::microseconds(
          static_cast<std::int64_t>(deadline_us)));
    const ImagePair& p = pool[static_cast<std::size_t>(i) % pool.size()];
    req.reference = p.a;
    req.scan = p.b;
    req.keep_diff = false;
    service.try_submit(std::move(req));
  }
  service.drain();
  out.stats = service.stats();
  return out;
}

/// What one ShardRouter phase produced: router accounting plus the client
/// view folded from the completion callback.
struct RouterPhaseOutcome {
  RouterStats stats;
  ServiceStats backend;
  RunningStat interactive_us;
  RunningStat batch_us;
  std::uint64_t responses = 0;

  /// The router's zero-silent-drops identity, plus: the callback saw
  /// exactly one response per admitted request.
  bool accounted() const {
    return stats.accounted() && responses == stats.admitted;
  }
};

/// Open-loop arrival phase against a 2-shard x 2-replica ShardRouter
/// (1 worker per replica, so the 4-worker calibration still measures
/// capacity).  `hot_fraction` of requests carry an explicit route key pinned
/// to shard 0; the rest go to shard 1.  When `kill_at >= 0`, replica
/// (0, 0) — a hot-shard replica — is killed right before request `kill_at`
/// is offered and stays dead for the remainder of the phase.  When `flight`
/// is non-null it is installed as the process recorder for exactly the
/// lifetime of the router, so the ring afterwards holds this phase's events
/// and nothing else.
RouterPhaseOutcome run_router_phase(const std::vector<ImagePair>& pool,
                                    double load, int n,
                                    double base_interarrival_us,
                                    double hot_fraction, HedgePolicy hedge,
                                    std::uint64_t seed,
                                    std::uint64_t arrival_seed,
                                    int kill_at,
                                    FlightRecorder* flight = nullptr) {
  RouterConfig cfg;
  cfg.shards = 2;
  cfg.replicas = 2;
  cfg.replica_service.workers = 1;
  cfg.replica_service.admission.interactive_capacity = 2;
  cfg.replica_service.admission.batch_capacity = 2;
  cfg.replica_service.seed = seed;
  cfg.hedge = hedge;
  cfg.seed = seed;

  RouterPhaseOutcome out;
  std::mutex mu;
  if (flight) set_flight_recorder(flight);
  {
    ShardRouter router(cfg, [&](ServiceResponse r) {
      std::lock_guard<std::mutex> lk(mu);
      ++out.responses;
      if (r.status == ServiceResponse::Status::kCompleted) {
        (r.priority == Priority::kInteractive ? out.interactive_us
                                              : out.batch_us)
            .add(r.total_us);
      }
    });

    // Route keys pinned per shard, discovered through the router's own ring
    // so the skew survives any ring-layout change.  The hot/cold choice per
    // request comes from its own seeded stream — like the arrivals, a pure
    // function of (seed, phase).
    std::vector<std::uint64_t> hot_keys;
    std::vector<std::uint64_t> cold_keys;
    for (std::uint64_t k = 1; hot_keys.size() < 8 || cold_keys.size() < 8;
         ++k) {
      std::vector<std::uint64_t>& dst =
          router.shard_of(k) == 0 ? hot_keys : cold_keys;
      if (dst.size() < 8) dst.push_back(k);
    }
    Rng skew_rng(arrival_seed ^ 0x5ced5ull);

    const double mean_interarrival_us = base_interarrival_us / load;
    Rng arrival_rng(arrival_seed);
    double arrival_us = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      arrival_us +=
          -std::log(1.0 - arrival_rng.uniform01()) * mean_interarrival_us;
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(arrival_us)));
      if (i == kill_at) router.kill_replica(0, 0);
      ServiceRequest req;
      req.id = static_cast<std::uint64_t>(i);
      req.priority = i % 4 == 0 ? Priority::kInteractive : Priority::kBatch;
      const bool hot = skew_rng.uniform01() < hot_fraction;
      const std::vector<std::uint64_t>& keys = hot ? hot_keys : cold_keys;
      req.route_key = keys[static_cast<std::size_t>(i) % keys.size()];
      const ImagePair& p = pool[static_cast<std::size_t>(i) % pool.size()];
      req.reference = p.a;
      req.scan = p.b;
      req.keep_diff = false;
      (void)router.try_submit(std::move(req));
    }
    router.drain();
    out.stats = router.stats();
    out.backend = router.backend_stats();
  }
  if (flight) set_flight_recorder(nullptr);
  return out;
}

/// Folds a flight-recorder snapshot into per-request timeline facts for the
/// reconstructability checks after the kill-a-replica phase.
struct FlightAudit {
  std::uint64_t requests_seen = 0;    ///< distinct client request ids
  std::uint64_t missing_terminal = 0; ///< ids with no respond/router shed
  std::uint64_t interesting = 0;      ///< hedged/failed-over/coalesced/shed
  std::uint64_t interesting_without_respond = 0;
};

FlightAudit audit_flight(const FlightRecorder& flight) {
  struct PerRequest {
    bool terminal = false;     ///< respond, or a router-level shed
    bool respond = false;
    bool interesting = false;  ///< hedge/failover/coalesce/shed touched it
    bool shed_only = false;    ///< shed was the terminal outcome
  };
  std::unordered_map<std::uint64_t, PerRequest> by_request;
  for (const FlightEvent& e : flight.snapshot()) {
    if (!e.ctx.active) continue;
    PerRequest& pr = by_request[e.ctx.request_id];
    switch (e.kind) {
      case FlightEventKind::kRespond:
        pr.terminal = true;
        pr.respond = true;
        break;
      case FlightEventKind::kShed:
        pr.interesting = true;
        // A router-level shed (no shard routed yet) is itself the terminal
        // client outcome; a backend shed feeds failover and the client
        // response arrives later as a respond event.
        if (e.ctx.shard < 0) {
          pr.terminal = true;
          pr.shed_only = true;
        }
        break;
      case FlightEventKind::kHedgeFired:
      case FlightEventKind::kHedgeWon:
      case FlightEventKind::kHedgeLost:
      case FlightEventKind::kFailover:
      case FlightEventKind::kCoalesceJoined:
      case FlightEventKind::kCoalescePromoted:
        pr.interesting = true;
        break;
      default:
        break;
    }
  }
  FlightAudit audit;
  audit.requests_seen = by_request.size();
  for (const auto& [rid, pr] : by_request) {
    if (!pr.terminal) ++audit.missing_terminal;
    if (pr.interesting) {
      ++audit.interesting;
      if (!pr.respond && !pr.shed_only) ++audit.interesting_without_respond;
    }
  }
  return audit;
}

/// Breaker-trip phase: checked engine, permanent stuck-comparator fault,
/// fallback disabled, zero retries — every processed request fails, so the
/// service breaker must open and later arrivals must shed as circuit_open.
PhaseOutcome run_breaker_phase(const std::vector<ImagePair>& pool, int n) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.use_checked_engine = true;
  cfg.recovery.max_retries = 0;
  cfg.recovery.fallback_to_sequential = false;
  cfg.breaker.failure_threshold = 3;
  // Longer than the phase: once open, the breaker stays open to the end.
  cfg.breaker.open_duration = 60'000'000;

  FaultSpec fault;
  fault.kind = FaultKind::kNoSwap;
  fault.activation = FaultActivation::kPermanent;
  fault.cell = 0;

  PhaseOutcome out;
  std::mutex mu;
  DiffService service(cfg, [&](ServiceResponse r) {
    std::lock_guard<std::mutex> lk(mu);
    ++out.responses;
    out.rows_processed += r.rows_processed;
  });
  for (int i = 0; i < n; ++i) {
    ServiceRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.priority = Priority::kBatch;
    req.fault = fault;
    const ImagePair& p = pool[static_cast<std::size_t>(i) % pool.size()];
    req.reference = p.a;
    req.scan = p.b;
    req.keep_diff = false;
    service.try_submit(std::move(req));
    // Give workers a moment so failures (not queue_full) dominate the early
    // submissions and the breaker sees consecutive kFailed responses.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  service.drain();
  out.stats = service.stats();
  return out;
}

struct FarmComparison {
  FarmResult without_breaker;
  FarmResult with_breaker;
};

/// One permanently flaky machine in a 4-machine farm, with and without
/// per-machine breakers.
FarmComparison run_farm_phase(pos_t rows, pos_t width) {
  Rng rng(7);
  RowGenParams gp;
  gp.width = width;
  const RleImage a = generate_image(rng, rows, gp);
  RleImage b(width, rows);
  ErrorGenParams ep;
  ep.error_fraction = 0.05;
  for (pos_t y = 0; y < rows; ++y)
    b.set_row(y, inject_errors(rng, a.row(y), width, ep));

  FarmConfig cfg;
  cfg.machines = 4;
  cfg.flaky.push_back({.machine = 1, .failure_probability = 1.0});

  FarmComparison cmp;
  cmp.without_breaker = simulate_row_farm(a, b, cfg);
  cfg.enable_breakers = true;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_duration = 4096;
  cmp.with_breaker = simulate_row_farm(a, b, cfg);
  return cmp;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_overload [--json FILE] [--smoke]\n";
      return 2;
    }
  }

  const pos_t kRows = smoke ? 24 : 64;
  const pos_t kWidth = smoke ? 1024 : 4096;
  const int kRequests = smoke ? 60 : 240;
  const std::size_t kWorkers = 4;
  const std::uint64_t kSeed = 42;

  const std::vector<ImagePair> pool =
      make_pool(8, kRows, kWidth, 0.03, kSeed);
  const double interarrival_us =
      calibrate_interarrival_us(pool, smoke ? 16 : 48, kWorkers);
  const double service_us =
      interarrival_us * static_cast<double>(kWorkers);
  std::cout << "calibrated capacity: one request per " << interarrival_us
            << " us of fleet time (" << kRows << " rows x " << kWidth
            << " px, " << kWorkers << " workers; ~" << service_us
            << " us per request)\n\n";

  // --- 1. load sweep ------------------------------------------------------
  const std::vector<double> loads = {0.5, 1.0, 2.0};
  std::vector<PhaseOutcome> phases;
  for (std::size_t i = 0; i < loads.size(); ++i)
    phases.push_back(run_phase(pool, loads[i], kRequests, interarrival_us,
                               kWorkers, /*deadline_us=*/0, kSeed,
                               arrival_seed_for(kSeed, i)));

  FixedTable table;
  table.set_header({"load", "offered", "admitted", "shed", "completed",
                    "int-p99-us", "accounted"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const PhaseOutcome& p = phases[i];
    table.add_row({FixedTable::num(loads[i]), FixedTable::num(p.stats.offered),
                   FixedTable::num(p.stats.admitted),
                   FixedTable::num(p.stats.shed_total()),
                   FixedTable::num(p.stats.completed),
                   FixedTable::num(p.interactive_us.p99()),
                   p.accounted() ? "yes" : "NO"});
  }
  std::cout << "--- 1. load sweep ---\n" << table.str() << '\n';

  const PhaseOutcome& at_capacity = phases[1];
  const PhaseOutcome& overload = phases[2];
  const bool no_silent_drops =
      phases[0].accounted() && phases[1].accounted() && phases[2].accounted();
  const bool typed_shed_under_overload = overload.stats.shed_total() > 0;
  const double p99_1x = at_capacity.interactive_us.p99();
  const double p99_2x = overload.interactive_us.p99();
  const bool interactive_p99_bounded =
      p99_1x > 0.0 && p99_2x <= 2.0 * p99_1x;

  // --- 2. deadline storm --------------------------------------------------
  // Deadlines of ~1.5 service times at 2x load: many requests expire in the
  // queue or mid-image; none may keep burning engine cycles afterwards.
  const std::uint64_t storm_deadline_us =
      static_cast<std::uint64_t>(service_us * 1.5);
  const PhaseOutcome storm =
      run_phase(pool, 2.0, kRequests, interarrival_us, kWorkers,
                storm_deadline_us, kSeed + 1, arrival_seed_for(kSeed, 3));
  const std::uint64_t storm_deadline_sheds =
      storm.stats.shed_deadline_at_submit + storm.stats.shed_deadline_after_admit;
  const std::uint64_t storm_row_budget =
      storm.stats.admitted * static_cast<std::uint64_t>(kRows);
  std::cout << "--- 2. deadline storm (" << storm_deadline_us
            << " us deadlines at 2x load) ---\n"
            << "deadline sheds: " << storm_deadline_sheds
            << " (at submit " << storm.stats.shed_deadline_at_submit
            << ", after admit " << storm.stats.shed_deadline_after_admit
            << ")\nrows processed: " << storm.rows_processed << " of "
            << storm_row_budget << " admitted-row budget\n\n";
  const bool deadline_sheds_typed =
      storm.accounted() && storm_deadline_sheds > 0;
  // Expired requests stopped mid-image iff the fleet processed strictly
  // fewer rows than every admitted request running to completion.
  const bool deadline_stops_work =
      storm.stats.shed_deadline_after_admit == 0 ||
      storm.rows_processed < storm_row_budget;

  // --- 3. breaker trip ----------------------------------------------------
  const PhaseOutcome breaker = run_breaker_phase(pool, smoke ? 16 : 32);
  std::cout << "--- 3. breaker trip (permanent fault, no fallback) ---\n"
            << "failed: " << breaker.stats.failed
            << "  shed circuit_open: " << breaker.stats.shed_circuit_open
            << '\n';
  const bool breaker_opens_under_faults =
      breaker.accounted() && breaker.stats.failed >= 3 &&
      breaker.stats.shed_circuit_open > 0;

  // --- 4. farm relief -----------------------------------------------------
  const FarmComparison farm = run_farm_phase(smoke ? 32 : 96, kWidth);
  const FarmResult& fw = farm.without_breaker;
  const FarmResult& fb = farm.with_breaker;
  std::cout << "--- 4. farm relief (machine 1 permanently flaky) ---\n"
            << "without breakers: makespan " << fw.makespan
            << " faulty dispatches " << fw.faulty_dispatches
            << " wasted cycles " << fw.faulty_cycles << '\n'
            << "with breakers:    makespan " << fb.makespan
            << " faulty dispatches " << fb.faulty_dispatches
            << " wasted cycles " << fb.faulty_cycles << " (probes "
            << fb.probe_dispatches << ")\n\n";
  // Both runs complete the same useful rows on the same healthy machines
  // (re-dispatch excludes the flaky machine), so the breaker cannot cost
  // useful work — only tail packing. Quarantining machine 1 perturbs the
  // FIFO dispatch order (fewer burn/re-queue events shift row start times),
  // and list scheduling is not monotone under such perturbations, so the
  // makespan can drift either way by at most one row's service time: the
  // classic Graham list-scheduling anomaly. Measured at the fixed seed:
  // full size 1598 vs 1577 (+21 cycles, critical row 61), smoke 162 vs 167
  // (breakers win outright). The former 1.05x multiplicative slack (~79
  // cycles at full size) over-allowed; the additive one-critical-row bound
  // is both tighter and principled.
  const bool farm_breaker_relief =
      fb.faulty_cycles < fw.faulty_cycles &&
      fb.makespan <= fw.makespan + fb.critical_row &&
      fb.faulty_dispatches < fw.faulty_dispatches;

  // --- 5. hot shard -------------------------------------------------------
  // 70% of keys pinned to shard 0 at 2x load: the hot shard queues, slow
  // interactive requests cross the short fixed hedge delay (~a quarter
  // service time) and hedge to the sibling replica; the deliberately
  // starved budget (1 token, nothing earned back) runs dry after the first
  // hedge so suppression is observed in the same run.
  HedgePolicy hot_hedge;
  hot_hedge.fixed_delay_us =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(service_us / 4), 1);
  hot_hedge.budget = {.initial_tokens = 1.0,
                      .max_tokens = 1.0,
                      .tokens_per_success = 0.0,
                      .cost_per_retry = 1.0};
  const RouterPhaseOutcome hot =
      run_router_phase(pool, 2.0, kRequests, interarrival_us,
                       /*hot_fraction=*/0.7, hot_hedge, kSeed,
                       arrival_seed_for(kSeed, 4), /*kill_at=*/-1);
  std::cout << "--- 5. hot shard (2x2 router, 70% keys on shard 0, 2x load) "
               "---\n"
            << "hedges fired: " << hot.stats.hedges_fired << "  won: "
            << hot.stats.hedges_won << "  suppressed: "
            << hot.stats.hedges_suppressed << "  unroutable: "
            << hot.stats.hedges_unroutable << '\n'
            << "failovers: " << hot.stats.failovers << " (cross-shard "
            << hot.stats.cross_shard_failovers << ")  coalesced: "
            << hot.stats.coalesced << "  shed shard_down: "
            << hot.stats.shed_shard_down << '\n'
            << "accounted: " << (hot.accounted() ? "yes" : "NO") << "\n\n";
  const bool hedges_fired_under_overload = hot.stats.hedges_fired > 0;
  const bool hedge_budget_caps_hedges = hot.stats.hedges_suppressed > 0;

  // --- 6. kill a replica --------------------------------------------------
  // Same topology and the SAME arrival stream twice: once healthy, once with
  // hot-shard replica (0,0) killed an eighth of the way in.  Failover keeps
  // the killed run's interactive p99 within 2x of the healthy run's, and
  // the accounting identity shows the kill dropped nothing silently.
  HedgePolicy kill_hedge;
  kill_hedge.fixed_delay_us = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(service_us * 2.0), 1);
  const std::uint64_t kill_arrival_seed = arrival_seed_for(kSeed, 5);
  const RouterPhaseOutcome healthy =
      run_router_phase(pool, 0.5, kRequests, interarrival_us,
                       /*hot_fraction=*/0.5, kill_hedge, kSeed,
                       kill_arrival_seed, /*kill_at=*/-1);
  // The killed run flies with the recorder installed; the ring is sized far
  // beyond the phase's event volume so nothing wraps and the audit below
  // sees every request's complete timeline.
  FlightRecorder flight(1 << 14);
  const RouterPhaseOutcome killed =
      run_router_phase(pool, 0.5, kRequests, interarrival_us,
                       /*hot_fraction=*/0.5, kill_hedge, kSeed,
                       kill_arrival_seed, /*kill_at=*/kRequests / 8, &flight);
  const double p99_healthy = healthy.interactive_us.p99();
  const double p99_killed = killed.interactive_us.p99();
  const FlightAudit audit = audit_flight(flight);
  const std::vector<FlightRecorder::RetainedTimeline> retained =
      flight.retained();
  bool hedge_win_retained = killed.stats.hedges_won == 0;
  for (const FlightRecorder::RetainedTimeline& t : retained)
    if (t.anomaly == "hedge_won" && !t.events.empty())
      hedge_win_retained = true;
  std::cout << "--- 6. kill a replica (replica 0.0 down from request "
            << kRequests / 8 << ") ---\n"
            << "healthy:      completed " << healthy.stats.completed
            << "  int-p99 " << p99_healthy << " us\n"
            << "replica down: completed " << killed.stats.completed
            << "  int-p99 " << p99_killed << " us  failovers "
            << killed.stats.failovers << "  rejected "
            << killed.stats.rejected << '\n'
            << "accounted: healthy " << (healthy.accounted() ? "yes" : "NO")
            << ", replica down " << (killed.accounted() ? "yes" : "NO")
            << '\n'
            << "flight: " << flight.recorded() << " events ("
            << flight.dropped() << " overwritten), " << audit.requests_seen
            << " request timelines (" << audit.interesting
            << " hedged/failed-over/coalesced/shed), " << retained.size()
            << " retained anomalies\n\n";
  const bool router_no_silent_drops =
      hot.accounted() && healthy.accounted() && killed.accounted();
  const bool replica_down_failover =
      killed.stats.failovers > 0 && killed.stats.completed > 0;
  const bool replica_down_p99_bounded =
      p99_healthy > 0.0 && p99_killed <= 2.0 * p99_healthy;
  // Reconstructability: the ring held everything (no wrap), every offered
  // request id shows up, every timeline reaches a terminal event, and every
  // request a hedge/failover/coalesce/shed touched has its client respond
  // (or router-level shed) on record.  A hedge win must also survive as a
  // retained anomaly timeline.
  const bool flight_timelines_complete =
      flight.dropped() == 0 &&
      audit.requests_seen == killed.stats.offered &&
      audit.missing_terminal == 0 && audit.interesting_without_respond == 0 &&
      hedge_win_retained;

  // --- 7. flight-recorder overhead ----------------------------------------
  // The same closed-loop workload as the capacity calibration, with and
  // without the recorder installed.  The instrumented run records the full
  // per-request event set, so this is the marginal cost of flying with the
  // recorder on.
  const int overhead_n = smoke ? 16 : 48;
  const double disabled_us_per_req =
      calibrate_interarrival_us(pool, overhead_n, kWorkers);
  FlightRecorder overhead_flight(1 << 12);
  set_flight_recorder(&overhead_flight);
  const double enabled_us_per_req =
      calibrate_interarrival_us(pool, overhead_n, kWorkers);
  set_flight_recorder(nullptr);
  const double overhead_ratio = enabled_us_per_req / disabled_us_per_req;
  std::cout << "--- 7. flight-recorder overhead (closed loop, " << overhead_n
            << " requests) ---\n"
            << "disabled: " << disabled_us_per_req
            << " us/request   enabled: " << enabled_us_per_req
            << " us/request (ratio " << overhead_ratio << ", "
            << overhead_flight.recorded() << " events recorded)\n\n";
  const bool flight_overhead_bounded = overhead_ratio <= 1.25;

  const bool all_ok = no_silent_drops && typed_shed_under_overload &&
                      interactive_p99_bounded && deadline_sheds_typed &&
                      deadline_stops_work && breaker_opens_under_faults &&
                      farm_breaker_relief && router_no_silent_drops &&
                      hedges_fired_under_overload &&
                      hedge_budget_caps_hedges && replica_down_failover &&
                      replica_down_p99_bounded && flight_timelines_complete &&
                      flight_overhead_bounded;
  std::cout << "verdict: "
            << (all_ok ? "overload contained (all checks pass)"
                       : "OVERLOAD GAP (see failed checks)")
            << '\n';

  if (!json_path.empty()) {
    BenchReport report("overload");
    report.set_param("rows", static_cast<std::int64_t>(kRows));
    report.set_param("width", static_cast<std::int64_t>(kWidth));
    report.set_param("requests", static_cast<std::int64_t>(kRequests));
    report.set_param("workers", static_cast<std::int64_t>(kWorkers));
    report.set_param("seed", static_cast<std::int64_t>(kSeed));
    report.set_param("smoke", smoke ? "true" : "false");
    report.set_x("load_factor", loads);
    auto series = [&](const char* name, auto&& get) {
      std::vector<double> v;
      for (const PhaseOutcome& p : phases)
        v.push_back(static_cast<double>(get(p)));
      report.add_series(name, std::move(v));
    };
    series("offered", [](const PhaseOutcome& p) { return p.stats.offered; });
    series("admitted", [](const PhaseOutcome& p) { return p.stats.admitted; });
    series("shed", [](const PhaseOutcome& p) { return p.stats.shed_total(); });
    series("completed",
           [](const PhaseOutcome& p) { return p.stats.completed; });
    series("interactive_p99_us",
           [](const PhaseOutcome& p) { return p.interactive_us.p99(); });
    report.set_scalar("service_time_us", service_us);
    report.set_scalar("p99_at_capacity_us", p99_1x);
    report.set_scalar("p99_at_overload_us", p99_2x);
    report.set_scalar("storm_deadline_sheds",
                      static_cast<double>(storm_deadline_sheds));
    report.set_scalar("breaker_circuit_open_sheds",
                      static_cast<double>(breaker.stats.shed_circuit_open));
    report.set_scalar("farm_faulty_cycles_without_breaker",
                      static_cast<double>(fw.faulty_cycles));
    report.set_scalar("farm_faulty_cycles_with_breaker",
                      static_cast<double>(fb.faulty_cycles));
    report.set_scalar("router_hedges_fired",
                      static_cast<double>(hot.stats.hedges_fired));
    report.set_scalar("router_hedges_won",
                      static_cast<double>(hot.stats.hedges_won));
    report.set_scalar("router_hedges_suppressed",
                      static_cast<double>(hot.stats.hedges_suppressed));
    report.set_scalar("router_coalesced",
                      static_cast<double>(hot.stats.coalesced));
    report.set_scalar("router_failovers_replica_down",
                      static_cast<double>(killed.stats.failovers));
    report.set_scalar("p99_healthy_topology_us", p99_healthy);
    report.set_scalar("p99_replica_down_us", p99_killed);
    report.set_scalar("flight_events_recorded",
                      static_cast<double>(flight.recorded()));
    report.set_scalar("flight_events_dropped",
                      static_cast<double>(flight.dropped()));
    report.set_scalar("flight_timelines",
                      static_cast<double>(audit.requests_seen));
    report.set_scalar("flight_retained_anomalies",
                      static_cast<double>(retained.size()));
    report.set_scalar("flight_disabled_us_per_request", disabled_us_per_req);
    report.set_scalar("flight_enabled_us_per_request", enabled_us_per_req);
    report.set_scalar("flight_overhead_ratio", overhead_ratio);
    report.set_check("no_silent_drops", no_silent_drops);
    report.set_check("typed_shed_under_overload", typed_shed_under_overload);
    report.set_check("interactive_p99_bounded", interactive_p99_bounded);
    report.set_check("deadline_sheds_typed", deadline_sheds_typed);
    report.set_check("deadline_stops_work", deadline_stops_work);
    report.set_check("breaker_opens_under_faults", breaker_opens_under_faults);
    report.set_check("farm_breaker_relief", farm_breaker_relief);
    report.set_check("router_no_silent_drops", router_no_silent_drops);
    report.set_check("hedges_fired_under_overload",
                     hedges_fired_under_overload);
    report.set_check("hedge_budget_caps_hedges", hedge_budget_caps_hedges);
    report.set_check("replica_down_failover", replica_down_failover);
    report.set_check("replica_down_p99_bounded", replica_down_p99_bounded);
    report.set_check("flight_timelines_complete", flight_timelines_complete);
    report.set_check("flight_overhead_bounded", flight_overhead_bounded);
    report.write_file(json_path);
  }
  return all_ok ? 0 : 1;
}
