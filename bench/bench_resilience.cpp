// Resilience extension: what does fault tolerance cost?
//
// Three questions, three tables:
//   1. Checking tax — wall-clock of the checked engine (invariant checkers
//      armed every iteration + watchdog) vs the bare systolic simulator and
//      the sequential merge baseline, on a healthy machine.
//   2. Recovery tax — cycles burned per row when a permanent / transient /
//      intermittent fault is present, split into retry cost and fallback
//      cost, from a small fault-injection campaign.
//   3. Degraded farm — board makespan when machines die mid-board and their
//      in-flight rows are re-dispatched to survivors.

#include <chrono>
#include <iostream>

#include "common/fixed_table.hpp"
#include "core/campaign.hpp"
#include "core/checked_diff.hpp"
#include "core/machine_farm.hpp"
#include "core/systolic_diff.hpp"
#include "baseline/sequential_diff.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Board {
  RleImage a{0, 0};
  RleImage b{0, 0};
};

Board make_board(pos_t width, pos_t height, double error_fraction) {
  Rng rng(20260805);
  RowGenParams rp;
  rp.width = width;
  Board board;
  board.a = generate_image(rng, height, rp);
  board.b = RleImage(width, height);
  for (pos_t y = 0; y < height; ++y) {
    ErrorGenParams ep;
    ep.error_fraction = error_fraction;
    board.b.set_row(y, inject_errors(rng, board.a.row(y), width, ep));
  }
  return board;
}

void checking_tax(const Board& board) {
  std::cout << "--- 1. checking tax (healthy machine, "
            << board.a.height() << " rows of " << board.a.width()
            << " px) ---\n\n";
  FixedTable table;
  table.set_header({"engine", "wall-s", "rows/s", "vs-unchecked"});

  const int kRepeats = 5;
  auto time_rows = [&](auto&& per_row) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kRepeats; ++rep)
      for (pos_t y = 0; y < board.a.height(); ++y)
        per_row(board.a.row(y), board.b.row(y));
    return seconds_since(t0);
  };

  const double rows =
      static_cast<double>(board.a.height()) * static_cast<double>(kRepeats);
  const double bare = time_rows([](const RleRow& ra, const RleRow& rb) {
    (void)systolic_xor(ra, rb);
  });
  const double checked = time_rows([](const RleRow& ra, const RleRow& rb) {
    (void)checked_xor(ra, rb);
  });
  const double sequential = time_rows([](const RleRow& ra, const RleRow& rb) {
    (void)sequential_xor(ra, rb);
  });

  auto add = [&](const char* name, double s) {
    table.add_row({name, FixedTable::num(s, 4), FixedTable::num(rows / s, 0),
                   FixedTable::num(s / bare, 2)});
  };
  add("systolic (unchecked)", bare);
  add("checked (invariants+watchdog)", checked);
  add("sequential merge", sequential);
  std::cout << table.str() << '\n';
  std::cout << "CSV:\n" << table.csv() << '\n';
}

void recovery_tax(const Board& board) {
  std::cout << "--- 2. recovery tax (fault-injection campaign) ---\n\n";
  FixedTable table;
  table.set_header({"model", "trials", "detected", "retried", "fell-back",
                    "wasted-cycles", "wasted/detected"});

  for (const FaultActivation activation :
       {FaultActivation::kPermanent, FaultActivation::kTransient,
        FaultActivation::kIntermittent}) {
    CampaignConfig cfg;
    cfg.activations = {activation};
    cfg.cell_stride = 4;  // thin the sweep; this is a cost probe
    const CampaignResult r = run_fault_campaign(board.a, board.b, cfg);
    const double per_detected =
        r.total.detected
            ? static_cast<double>(r.total.wasted_cycles) /
                  static_cast<double>(r.total.detected)
            : 0.0;
    table.add_row({to_string(activation), FixedTable::num(r.total.trials),
                   FixedTable::num(r.total.detected),
                   FixedTable::num(r.total.recovered_by_retry),
                   FixedTable::num(r.total.fell_back),
                   FixedTable::num(r.total.wasted_cycles),
                   FixedTable::num(per_detected, 1)});
  }
  std::cout << table.str() << '\n';
  std::cout << "CSV:\n" << table.csv() << '\n';
}

void degraded_farm(const Board& board) {
  std::cout << "--- 3. degraded farm (machines dying mid-board) ---\n\n";
  FixedTable table;
  table.set_header({"deaths", "makespan", "vs-healthy", "redispatched",
                    "lost-cycles", "utilisation"});

  FarmConfig healthy;
  healthy.machines = 8;
  const FarmResult base = simulate_row_farm(board.a, board.b, healthy);

  for (const std::size_t deaths : {0u, 1u, 2u, 4u}) {
    FarmConfig cfg = healthy;
    for (std::size_t i = 0; i < deaths; ++i)
      cfg.failures.push_back({i, base.makespan / 4 * (i + 1)});
    const FarmResult r = simulate_row_farm(board.a, board.b, cfg);
    table.add_row(
        {FixedTable::num(static_cast<std::uint64_t>(deaths)),
         FixedTable::num(r.makespan),
         FixedTable::num(static_cast<double>(r.makespan) /
                             static_cast<double>(base.makespan),
                         3),
         FixedTable::num(r.redispatched_rows),
         FixedTable::num(r.lost_cycles), FixedTable::num(r.utilisation, 3)});
  }
  std::cout << table.str() << '\n';
  std::cout << "CSV:\n" << table.csv() << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Fault-tolerance cost model ===\n\n";
  const Board board = make_board(2048, 64, 0.02);
  checking_tax(board);
  recovery_tax(board);
  degraded_farm(board);
  std::cout << "reading: checking costs a constant factor over the bare\n"
               "simulator; transient faults are absorbed by retry (cheap),\n"
               "permanent ones by fallback (bounded by the sequential merge\n"
               "cost); a dying machine adds its lost work plus re-dispatch\n"
               "latency to the makespan but never changes the image result.\n";
  return 0;
}
