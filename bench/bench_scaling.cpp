// Extends Table 1's second regime to demonstrate the paper's headline claim
// at scale: with a fixed number of defects the systolic iteration count is
// *constant in image size* while the sequential merge is linear.  Also
// reports the modelled pixel-parallel comparator (section 6), whose O(1) XOR
// is swamped by decompress/recompress conversions.
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --smoke shrinks the
// sweep for CI.

#include <iostream>
#include <string>
#include <vector>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main(int argc, char** argv) {
  using namespace sysrle;

  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_scaling [--json FILE] [--smoke]\n";
      return 2;
    }
  }

  const int kSeeds = smoke ? 5 : 25;
  const pos_t max_width = smoke ? 8192 : 131072;
  FixedTable table;
  table.set_header({"width", "runs(k1)", "systolic-iters", "sequential-iters",
                    "pixel-parallel-steps", "systolic-cells"});

  std::cout << "=== Scaling with 6 fixed error runs of 4 px ===\n";
  std::cout << "(systolic should stay flat; sequential and pixel-parallel "
               "grow with size)\n\n";

  std::vector<double> xs, k1s, sys_iters, seq_iters, pp_steps, cells;
  double sys_first = 0, sys_last = 0, seq_first = 0, seq_last = 0;
  for (pos_t width = 128; width <= max_width; width *= 4) {
    RowGenParams rp;
    rp.width = width;
    RunningStat sys_stat, seq_stat, k1_stat, cells_stat;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(width) * 131 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair_fixed_errors(rng, rp, 6, 4);
      const SystolicResult r = systolic_xor(s.first, s.second);
      sys_stat.add(static_cast<double>(r.counters.iterations));
      seq_stat.add(
          static_cast<double>(sequential_xor(s.first, s.second).iterations));
      k1_stat.add(static_cast<double>(s.first.run_count()));
      cells_stat.add(static_cast<double>(r.counters.cells_used));
    }
    const auto pp = pixel_parallel_cost(width);
    table.add_row({FixedTable::num(static_cast<std::int64_t>(width)),
                   FixedTable::num(k1_stat.mean(), 0),
                   FixedTable::num(sys_stat.mean(), 2),
                   FixedTable::num(seq_stat.mean(), 0),
                   FixedTable::num(pp.total_steps()),
                   FixedTable::num(cells_stat.mean(), 0)});
    xs.push_back(static_cast<double>(width));
    k1s.push_back(k1_stat.mean());
    sys_iters.push_back(sys_stat.mean());
    seq_iters.push_back(seq_stat.mean());
    pp_steps.push_back(static_cast<double>(pp.total_steps()));
    cells.push_back(cells_stat.mean());
    if (width == 128) {
      sys_first = sys_stat.mean();
      seq_first = seq_stat.mean();
    }
    sys_last = sys_stat.mean();
    seq_last = seq_stat.mean();
  }

  const bool claim_holds = sys_last / sys_first < 3.0;
  std::cout << table.str() << '\n';
  std::cout << "growth 128 -> " << max_width << ": systolic x"
            << FixedTable::num(sys_last / sys_first, 2) << ", sequential x"
            << FixedTable::num(seq_last / seq_first, 1)
            << (claim_holds ? "  [constant-time claim holds]"
                            : "  [CLAIM VIOLATED]")
            << '\n';
  std::cout << "\nCSV:\n" << table.csv();

  if (!json_path.empty()) {
    BenchReport report("scaling");
    report.set_param("seeds", static_cast<std::int64_t>(kSeeds));
    report.set_param("error_runs", static_cast<std::int64_t>(6));
    report.set_param("error_run_length", static_cast<std::int64_t>(4));
    report.set_param("mode", smoke ? "smoke" : "full");
    report.set_x("width", xs);
    report.add_series("k1", k1s);
    report.add_series("systolic_iterations", sys_iters);
    report.add_series("sequential_iterations", seq_iters);
    report.add_series("pixel_parallel_steps", pp_steps);
    report.add_series("systolic_cells", cells);
    report.set_scalar("growth_systolic", sys_last / sys_first);
    report.set_scalar("growth_sequential", seq_last / seq_first);
    report.set_check("constant_time_claim", claim_holds);
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << '\n';
  }
  return 0;
}
