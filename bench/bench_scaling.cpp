// Extends Table 1's second regime to demonstrate the paper's headline claim
// at scale: with a fixed number of defects the systolic iteration count is
// *constant in image size* while the sequential merge is linear.  Also
// reports the modelled pixel-parallel comparator (section 6), whose O(1) XOR
// is swamped by decompress/recompress conversions.

#include <iostream>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

int main() {
  using namespace sysrle;

  const int kSeeds = 25;
  FixedTable table;
  table.set_header({"width", "runs(k1)", "systolic-iters", "sequential-iters",
                    "pixel-parallel-steps", "systolic-cells"});

  std::cout << "=== Scaling with 6 fixed error runs of 4 px ===\n";
  std::cout << "(systolic should stay flat; sequential and pixel-parallel "
               "grow with size)\n\n";

  double sys_first = 0, sys_last = 0, seq_first = 0, seq_last = 0;
  for (pos_t width = 128; width <= 131072; width *= 4) {
    RowGenParams rp;
    rp.width = width;
    RunningStat sys_stat, seq_stat, k1_stat, cells_stat;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(width) * 131 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair_fixed_errors(rng, rp, 6, 4);
      const SystolicResult r = systolic_xor(s.first, s.second);
      sys_stat.add(static_cast<double>(r.counters.iterations));
      seq_stat.add(
          static_cast<double>(sequential_xor(s.first, s.second).iterations));
      k1_stat.add(static_cast<double>(s.first.run_count()));
      cells_stat.add(static_cast<double>(r.counters.cells_used));
    }
    const auto pp = pixel_parallel_cost(width);
    table.add_row({FixedTable::num(static_cast<std::int64_t>(width)),
                   FixedTable::num(k1_stat.mean(), 0),
                   FixedTable::num(sys_stat.mean(), 2),
                   FixedTable::num(seq_stat.mean(), 0),
                   FixedTable::num(pp.total_steps()),
                   FixedTable::num(cells_stat.mean(), 0)});
    if (width == 128) {
      sys_first = sys_stat.mean();
      seq_first = seq_stat.mean();
    }
    sys_last = sys_stat.mean();
    seq_last = seq_stat.mean();
  }

  std::cout << table.str() << '\n';
  std::cout << "growth 128 -> 131072: systolic x"
            << FixedTable::num(sys_last / sys_first, 2) << ", sequential x"
            << FixedTable::num(seq_last / seq_first, 1)
            << (sys_last / sys_first < 3.0 ? "  [constant-time claim holds]"
                                           : "  [CLAIM VIOLATED]")
            << '\n';
  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
