// Extends Table 1's second regime to demonstrate the paper's headline claim
// at scale: with a fixed number of defects the systolic iteration count is
// *constant in image size* while the sequential merge is linear.  Also
// reports the modelled pixel-parallel comparator (section 6), whose O(1) XOR
// is swamped by decompress/recompress conversions.
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --threads-json FILE
// additionally runs the row-parallel thread sweep and writes its own
// sysrle.bench.v1 report; --smoke shrinks both sweeps for CI.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/image_diff.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

/// Row-parallel executor sweep: wall time of a whole-image adaptive diff at
/// 1, 2, 4, ... threads on one fixed workload.  Emits wall_us / rows_per_sec
/// / speedup series plus a `hardware_threads` scalar so the 4-thread >= 2x
/// expectation is only enforced where the silicon can deliver it (a 1-core
/// CI runner cannot speed anything up; see docs/PERFORMANCE.md).
void run_thread_sweep(const std::string& json_path, bool smoke) {
  const pos_t rows = smoke ? 512 : 2048;
  const pos_t width = smoke ? 2048 : 8192;
  const int reps = smoke ? 3 : 5;

  Rng rng(20260806);
  RowGenParams gp;
  gp.width = width;
  const RleImage a = generate_image(rng, rows, gp);
  RleImage b(width, rows);
  ErrorGenParams ep;
  ep.error_fraction = 0.05;
  for (pos_t y = 0; y < rows; ++y)
    b.set_row(y, inject_errors(rng, a.row(y), width, ep));

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t hardware_threads = hw == 0 ? 1 : hw;

  std::cout << "\n=== Row-parallel thread sweep (adaptive engine, " << rows
            << " x " << width << ", " << hardware_threads
            << " hardware threads) ===\n";

  FixedTable table;
  table.set_header({"threads", "wall-us", "rows/s", "speedup", "used"});

  std::vector<double> xs, wall, rps, speedup, used;
  double serial_wall = 0.0;
  bool deterministic = true;
  std::string serial_diff;
  for (std::size_t t = 1; t <= 8; t *= 2) {
    ImageDiffOptions options;
    options.engine = DiffEngine::kAdaptive;
    options.threads = t;
    double best_us = 0.0;
    std::size_t threads_used = 1;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const ImageDiffResult r = image_diff(a, b, options);
      const auto t1 = std::chrono::steady_clock::now();
      const double us = static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count());
      if (rep == 0 || us < best_us) best_us = us;
      threads_used = std::max(threads_used, r.threads_used);
      if (rep == 0) {
        std::string rendered;
        for (pos_t y = 0; y < r.diff.height(); ++y)
          rendered += r.diff.row(y).to_string() + '\n';
        if (t == 1) serial_diff = rendered;
        else if (rendered != serial_diff) deterministic = false;
      }
    }
    if (t == 1) serial_wall = best_us;
    const double sp = best_us > 0.0 ? serial_wall / best_us : 1.0;
    table.add_row({FixedTable::num(static_cast<std::int64_t>(t)),
                   FixedTable::num(best_us, 0),
                   FixedTable::num(best_us > 0.0 ? static_cast<double>(rows) *
                                                       1e6 / best_us
                                                 : 0.0,
                                   0),
                   FixedTable::num(sp, 2),
                   FixedTable::num(static_cast<std::int64_t>(threads_used))});
    xs.push_back(static_cast<double>(t));
    wall.push_back(best_us);
    rps.push_back(best_us > 0.0 ? static_cast<double>(rows) * 1e6 / best_us
                                : 0.0);
    speedup.push_back(sp);
    used.push_back(static_cast<double>(threads_used));
  }
  std::cout << table.str();

  double speedup_at_4 = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (xs[i] == 4.0) speedup_at_4 = speedup[i];
  // Only machines with >= 4 real threads can be held to the 2x bar.
  const bool scaling_ok = hardware_threads < 4 || speedup_at_4 >= 2.0;
  std::cout << "speedup at 4 threads: x" << FixedTable::num(speedup_at_4, 2)
            << (hardware_threads < 4
                    ? "  [not enforced: fewer than 4 hardware threads]"
                    : (scaling_ok ? "  [>= 2x ok]" : "  [BELOW 2x]"))
            << '\n';

  BenchReport report("thread_scaling");
  report.set_param("rows", static_cast<std::int64_t>(rows));
  report.set_param("width", static_cast<std::int64_t>(width));
  report.set_param("error_fraction", 0.05);
  report.set_param("engine", "adaptive");
  report.set_param("reps", static_cast<std::int64_t>(reps));
  report.set_param("mode", smoke ? "smoke" : "full");
  report.set_x("threads", xs);
  report.add_series("wall_us", wall);
  report.add_series("rows_per_sec", rps);
  report.add_series("speedup", speedup);
  report.add_series("threads_used", used);
  report.set_scalar("hardware_threads",
                    static_cast<double>(hardware_threads));
  report.set_scalar("speedup_at_4_threads", speedup_at_4);
  report.set_check("thread_scaling_ok", scaling_ok);
  report.set_check("deterministic_across_threads", deterministic);
  report.write_file(json_path);
  std::cout << "wrote " << json_path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sysrle;

  std::string json_path;
  std::string threads_json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--threads-json" && i + 1 < argc) {
      threads_json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_scaling [--json FILE] [--threads-json FILE] "
                   "[--smoke]\n";
      return 2;
    }
  }

  const int kSeeds = smoke ? 5 : 25;
  const pos_t max_width = smoke ? 8192 : 131072;
  FixedTable table;
  table.set_header({"width", "runs(k1)", "systolic-iters", "sequential-iters",
                    "pixel-parallel-steps", "systolic-cells"});

  std::cout << "=== Scaling with 6 fixed error runs of 4 px ===\n";
  std::cout << "(systolic should stay flat; sequential and pixel-parallel "
               "grow with size)\n\n";

  std::vector<double> xs, k1s, sys_iters, seq_iters, pp_steps, cells;
  double sys_first = 0, sys_last = 0, seq_first = 0, seq_last = 0;
  for (pos_t width = 128; width <= max_width; width *= 4) {
    RowGenParams rp;
    rp.width = width;
    RunningStat sys_stat, seq_stat, k1_stat, cells_stat;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(width) * 131 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair_fixed_errors(rng, rp, 6, 4);
      const SystolicResult r = systolic_xor(s.first, s.second);
      sys_stat.add(static_cast<double>(r.counters.iterations));
      seq_stat.add(
          static_cast<double>(sequential_xor(s.first, s.second).iterations));
      k1_stat.add(static_cast<double>(s.first.run_count()));
      cells_stat.add(static_cast<double>(r.counters.cells_used));
    }
    const auto pp = pixel_parallel_cost(width);
    table.add_row({FixedTable::num(static_cast<std::int64_t>(width)),
                   FixedTable::num(k1_stat.mean(), 0),
                   FixedTable::num(sys_stat.mean(), 2),
                   FixedTable::num(seq_stat.mean(), 0),
                   FixedTable::num(pp.total_steps()),
                   FixedTable::num(cells_stat.mean(), 0)});
    xs.push_back(static_cast<double>(width));
    k1s.push_back(k1_stat.mean());
    sys_iters.push_back(sys_stat.mean());
    seq_iters.push_back(seq_stat.mean());
    pp_steps.push_back(static_cast<double>(pp.total_steps()));
    cells.push_back(cells_stat.mean());
    if (width == 128) {
      sys_first = sys_stat.mean();
      seq_first = seq_stat.mean();
    }
    sys_last = sys_stat.mean();
    seq_last = seq_stat.mean();
  }

  const bool claim_holds = sys_last / sys_first < 3.0;
  std::cout << table.str() << '\n';
  std::cout << "growth 128 -> " << max_width << ": systolic x"
            << FixedTable::num(sys_last / sys_first, 2) << ", sequential x"
            << FixedTable::num(seq_last / seq_first, 1)
            << (claim_holds ? "  [constant-time claim holds]"
                            : "  [CLAIM VIOLATED]")
            << '\n';
  std::cout << "\nCSV:\n" << table.csv();

  if (!json_path.empty()) {
    BenchReport report("scaling");
    report.set_param("seeds", static_cast<std::int64_t>(kSeeds));
    report.set_param("error_runs", static_cast<std::int64_t>(6));
    report.set_param("error_run_length", static_cast<std::int64_t>(4));
    report.set_param("mode", smoke ? "smoke" : "full");
    report.set_x("width", xs);
    report.add_series("k1", k1s);
    report.add_series("systolic_iterations", sys_iters);
    report.add_series("sequential_iterations", seq_iters);
    report.add_series("pixel_parallel_steps", pp_steps);
    report.add_series("systolic_cells", cells);
    report.set_scalar("growth_systolic", sys_last / sys_first);
    report.set_scalar("growth_sequential", seq_last / seq_first);
    report.set_check("constant_time_claim", claim_holds);
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << '\n';
  }

  if (!threads_json_path.empty()) run_thread_sweep(threads_json_path, smoke);
  return 0;
}
