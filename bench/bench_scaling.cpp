// Extends Table 1's second regime to demonstrate the paper's headline claim
// at scale: with a fixed number of defects the systolic iteration count is
// *constant in image size* while the sequential merge is linear.  Also
// reports the modelled pixel-parallel comparator (section 6), whose O(1) XOR
// is swamped by decompress/recompress conversions.
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --threads-json FILE
// additionally runs the row-parallel thread sweep and writes its own
// sysrle.bench.v1 report; --dispatch-json FILE runs the word-parallel
// engine speedup + θ recalibration sweep (the BENCH_pr10.json evidence);
// --smoke shrinks every sweep for CI.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "baseline/simd_dispatch.hpp"
#include "baseline/word_diff.hpp"
#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/cost_model.hpp"
#include "core/image_diff.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

/// Row-parallel executor sweep: wall time of a whole-image adaptive diff at
/// 1, 2, 4, ... threads on one fixed workload.  Emits wall_us / rows_per_sec
/// / speedup series plus a `hardware_threads` scalar so the 4-thread >= 2x
/// expectation is only enforced where the silicon can deliver it (a 1-core
/// CI runner cannot speed anything up; see docs/PERFORMANCE.md).
void run_thread_sweep(const std::string& json_path, bool smoke) {
  const pos_t rows = smoke ? 512 : 2048;
  const pos_t width = smoke ? 2048 : 8192;
  const int reps = smoke ? 3 : 5;

  Rng rng(20260806);
  RowGenParams gp;
  gp.width = width;
  const RleImage a = generate_image(rng, rows, gp);
  RleImage b(width, rows);
  ErrorGenParams ep;
  ep.error_fraction = 0.05;
  for (pos_t y = 0; y < rows; ++y)
    b.set_row(y, inject_errors(rng, a.row(y), width, ep));

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t hardware_threads = hw == 0 ? 1 : hw;

  std::cout << "\n=== Row-parallel thread sweep (adaptive engine, " << rows
            << " x " << width << ", " << hardware_threads
            << " hardware threads) ===\n";

  FixedTable table;
  table.set_header({"threads", "wall-us", "rows/s", "speedup", "used"});

  std::vector<double> xs, wall, rps, speedup, used;
  double serial_wall = 0.0;
  bool deterministic = true;
  std::string serial_diff;
  for (std::size_t t = 1; t <= 8; t *= 2) {
    ImageDiffOptions options;
    options.engine = DiffEngine::kAdaptive;
    options.threads = t;
    double best_us = 0.0;
    std::size_t threads_used = 1;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const ImageDiffResult r = image_diff(a, b, options);
      const auto t1 = std::chrono::steady_clock::now();
      const double us = static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count());
      if (rep == 0 || us < best_us) best_us = us;
      threads_used = std::max(threads_used, r.threads_used);
      if (rep == 0) {
        std::string rendered;
        for (pos_t y = 0; y < r.diff.height(); ++y)
          rendered += r.diff.row(y).to_string() + '\n';
        if (t == 1) serial_diff = rendered;
        else if (rendered != serial_diff) deterministic = false;
      }
    }
    if (t == 1) serial_wall = best_us;
    const double sp = best_us > 0.0 ? serial_wall / best_us : 1.0;
    table.add_row({FixedTable::num(static_cast<std::int64_t>(t)),
                   FixedTable::num(best_us, 0),
                   FixedTable::num(best_us > 0.0 ? static_cast<double>(rows) *
                                                       1e6 / best_us
                                                 : 0.0,
                                   0),
                   FixedTable::num(sp, 2),
                   FixedTable::num(static_cast<std::int64_t>(threads_used))});
    xs.push_back(static_cast<double>(t));
    wall.push_back(best_us);
    rps.push_back(best_us > 0.0 ? static_cast<double>(rows) * 1e6 / best_us
                                : 0.0);
    speedup.push_back(sp);
    used.push_back(static_cast<double>(threads_used));
  }
  std::cout << table.str();

  double speedup_at_4 = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (xs[i] == 4.0) speedup_at_4 = speedup[i];
  // Only machines with >= 4 real threads can be held to the 2x bar.
  const bool scaling_ok = hardware_threads < 4 || speedup_at_4 >= 2.0;
  std::cout << "speedup at 4 threads: x" << FixedTable::num(speedup_at_4, 2)
            << (hardware_threads < 4
                    ? "  [not enforced: fewer than 4 hardware threads]"
                    : (scaling_ok ? "  [>= 2x ok]" : "  [BELOW 2x]"))
            << '\n';

  BenchReport report("thread_scaling");
  report.set_param("rows", static_cast<std::int64_t>(rows));
  report.set_param("width", static_cast<std::int64_t>(width));
  report.set_param("error_fraction", 0.05);
  report.set_param("engine", "adaptive");
  report.set_param("reps", static_cast<std::int64_t>(reps));
  report.set_param("mode", smoke ? "smoke" : "full");
  report.set_x("threads", xs);
  report.add_series("wall_us", wall);
  report.add_series("rows_per_sec", rps);
  report.add_series("speedup", speedup);
  report.add_series("threads_used", used);
  report.set_scalar("hardware_threads",
                    static_cast<double>(hardware_threads));
  report.set_scalar("speedup_at_4_threads", speedup_at_4);
  report.set_check("thread_scaling_ok", scaling_ok);
  report.set_check("deterministic_across_threads", deterministic);
  report.write_file(json_path);
  std::cout << "wrote " << json_path << '\n';
}

/// Best-of-`reps` wall time of `fn` over every pair, in microseconds *per
/// pair*.  `fn` returns a cheap checksum so the optimizer cannot elide the
/// diff; the folded checksum is returned through `sink`.
template <typename Fn>
double time_pairs_us(const std::vector<std::pair<RleRow, RleRow>>& pairs,
                     int reps, std::uint64_t& sink, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t checksum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& [a, b] : pairs) checksum += fn(a, b);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        1000.0;
    if (rep == 0 || us < best) best = us;
    sink ^= checksum;
  }
  return best / static_cast<double>(pairs.size());
}

/// Deletes exactly round(fraction * k) runs of `base` at random indices —
/// the θ-sweep workload.  Unlike inject_errors (which keeps k1 ≈ k2 and so
/// never exercises the routing boundary), run deletion dials the
/// dissimilarity ratio |k1-k2|/(k1+k2) = p/(2-p) across the whole [0, 1]
/// range as the deleted fraction p goes 0 → 1.
RleRow delete_run_fraction(Rng& rng, const RleRow& base, double fraction) {
  const std::size_t k = base.run_count();
  const std::size_t to_delete = static_cast<std::size_t>(
      fraction * static_cast<double>(k) + 0.5);
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  for (std::size_t i = k; i > 1; --i) {  // Fisher-Yates off the bench rng
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  std::vector<bool> keep(k, true);
  for (std::size_t i = 0; i < to_delete && i < k; ++i) keep[order[i]] = false;
  RleRow out;
  for (std::size_t i = 0; i < k; ++i)
    if (keep[i]) out.push_back(base[i]);
  return out;
}

/// The PR-10 evidence sweep, two phases in one sysrle.bench.v1 report:
///
///  1. Speedup: the word-parallel sequential engine vs the scalar
///     sequential_xor merge on the fragmented sparse-row workload (1-2
///     pixel runs at density 0.35 — the run-dense regime the engine's
///     dispatch guard selects for), across error densities.  Output is
///     cross-checked bit-identical to the canonicalized oracle at every
///     dispatch level supported on the host, and the paper's smooth
///     workload gets a no-harm row (the guard must route it to the scalar
///     merge at scalar-merge cost).
///
///  2. θ recalibration: run-deletion pairs whose dissimilarity ratio
///     |k1-k2|/(k1+k2) sweeps [0, 0.8] re-verify the two facts the
///     dispatcher prices with — systolic iterations track the ratio
///     (Figure 5) and never exceed k1+k2 (Theorem 1) — and record the
///     wall-clock series showing the host-side *simulator* never beats
///     the engine (it pays O(k) cell setup per row; θ is a hardware-model
///     knob, not a host-wall-clock one).  The recalibrated θ is the old
///     scalar-tuned 0.5 divided by the engine's measured headline
///     speedup; checks pin the constant to that derivation and require it
///     to split the sweep into a systolic side and a sequential side.
///
/// Perf-dependent bands are relaxed in --smoke (CI wiring run on noisy
/// shared hardware); the committed BENCH_pr10.json comes from a full run.
void run_dispatch_sweep(const std::string& json_path, bool smoke) {
  const int pairs_per_point = smoke ? 24 : 192;
  const int reps = smoke ? 2 : 5;

  // The run-dense regime: 1-2 pixel runs at density 0.35 put ~30 run
  // boundaries in every 64-bit word, which is where the scalar merge's
  // branch misprediction tax peaks and the word path's fixed per-word cost
  // amortizes best.  Error bursts are kept short (1-2 px) so injected
  // errors fragment rather than smooth the rows.
  RowGenParams frag;
  frag.min_run_length = 1;
  frag.max_run_length = 2;
  frag.density = 0.35;

  std::uint64_t sink = 0;
  BenchReport report("dispatch");
  report.set_param("width", static_cast<std::int64_t>(frag.width));
  report.set_param("fragmented_density", frag.density);
  report.set_param("fragmented_run_length", "1-2");
  report.set_param("pairs_per_point",
                   static_cast<std::int64_t>(pairs_per_point));
  report.set_param("reps", static_cast<std::int64_t>(reps));
  report.set_param("simd", to_string(active_simd_level()));
  report.set_param("mode", smoke ? "smoke" : "full");

  // ---- Phase 1: speedup vs the scalar merge on fragmented rows.
  std::cout << "\n=== Word-parallel engine speedup (fragmented rows, width "
            << frag.width << ", simd=" << to_string(active_simd_level())
            << ") ===\n";
  FixedTable speed_table;
  speed_table.set_header({"err-%", "scalar-us/row", "word-us/row", "speedup"});
  const std::vector<double> error_pcts =
      smoke ? std::vector<double>{10, 30} : std::vector<double>{10, 20, 30, 50};
  bool identical = true;
  double headline_speedup = 0.0;  // the 30%-error point
  for (const double err : error_pcts) {
    Rng rng(715001 + static_cast<std::uint64_t>(err));
    ErrorGenParams ep;
    ep.error_fraction = err / 100.0;
    ep.min_error_length = 1;
    ep.max_error_length = 2;
    std::vector<std::pair<RleRow, RleRow>> pairs;
    for (int i = 0; i < pairs_per_point; ++i) {
      RowPairSample s = generate_pair(rng, frag, ep);
      pairs.emplace_back(std::move(s.first), std::move(s.second));
    }
    // Bit-identity against the canonicalized oracle at every level the
    // host supports, not just the active one.
    const SimdLevel restore = active_simd_level();
    for (const SimdLevel level : supported_simd_levels()) {
      set_simd_level(level);
      for (const auto& [a, b] : pairs) {
        RleRow expected = sequential_xor(a, b).output;
        expected.canonicalize();
        if (sequential_engine_xor(a, b).output != expected) identical = false;
      }
    }
    set_simd_level(restore);
    const double t_scalar =
        time_pairs_us(pairs, reps, sink, [](const RleRow& a, const RleRow& b) {
          return sequential_xor(a, b).output.run_count();
        });
    const double t_word =
        time_pairs_us(pairs, reps, sink, [](const RleRow& a, const RleRow& b) {
          return sequential_engine_xor(a, b).output.run_count();
        });
    const double sp = t_word > 0.0 ? t_scalar / t_word : 0.0;
    if (err == 30) headline_speedup = sp;
    speed_table.add_row({FixedTable::num(err, 0), FixedTable::num(t_scalar, 2),
                         FixedTable::num(t_word, 2), FixedTable::num(sp, 2)});
    report.set_scalar("scalar_us_at_" + std::to_string(static_cast<int>(err)) +
                          "pct",
                      t_scalar);
    report.set_scalar(
        "word_us_at_" + std::to_string(static_cast<int>(err)) + "pct", t_word);
    report.set_scalar(
        "speedup_at_" + std::to_string(static_cast<int>(err)) + "pct", sp);
  }
  std::cout << speed_table.str();
  std::cout << "headline speedup (30% errors): x"
            << FixedTable::num(headline_speedup, 2)
            << (headline_speedup >= 3.0 ? "  [>= 3x ok]" : "  [BELOW 3x]")
            << (identical ? "" : "  [OUTPUT MISMATCH]") << '\n';

  // No-harm row: on the paper's smooth workload (4-20 px runs) the density
  // guard must route to the scalar merge, so the engine may cost at most
  // the merge plus canonicalize + dispatch overhead.
  double no_harm_ratio = 0.0;
  {
    Rng rng(715999);
    RowGenParams paper;  // the paper's §5 defaults
    ErrorGenParams ep;
    std::vector<std::pair<RleRow, RleRow>> pairs;
    for (int i = 0; i < pairs_per_point; ++i) {
      RowPairSample s = generate_pair(rng, paper, ep);
      pairs.emplace_back(std::move(s.first), std::move(s.second));
    }
    const double t_scalar =
        time_pairs_us(pairs, reps, sink, [](const RleRow& a, const RleRow& b) {
          return sequential_xor(a, b).output.run_count();
        });
    const double t_engine =
        time_pairs_us(pairs, reps, sink, [](const RleRow& a, const RleRow& b) {
          return sequential_engine_xor(a, b).output.run_count();
        });
    no_harm_ratio = t_scalar > 0.0 ? t_engine / t_scalar : 0.0;
    std::cout << "paper-workload no-harm ratio (engine/scalar): "
              << FixedTable::num(no_harm_ratio, 2) << '\n';
  }

  // ---- Phase 2: θ sweep on run-deletion pairs.
  std::cout << "\n=== Theta sweep: systolic simulator vs engine "
               "(run-deletion pairs, paper workload) ===\n";
  FixedTable theta_table;
  theta_table.set_header({"ratio", "sys-iters/k", "systolic-us/row",
                          "engine-us/row", "route@theta"});
  const std::vector<double> target_ratios =
      smoke ? std::vector<double>{0.0, 0.25, 0.5, 0.8}
            : std::vector<double>{0.0,  0.05, 0.1, 0.15, 0.2, 0.25,
                                  0.3,  0.35, 0.4, 0.5,  0.65, 0.8};
  std::vector<double> ratios, sys_us, eng_us, iter_fracs;
  bool theorem1_ok = true;
  bool wallclock_dominated = true;
  bool first_routes_systolic = false, last_routes_sequential = false;
  RowGenParams paper;
  for (const double target : target_ratios) {
    // ratio r = p/(2-p)  <=>  deleted fraction p = 2r/(1+r).
    const double p = 2.0 * target / (1.0 + target);
    Rng rng(825001 + static_cast<std::uint64_t>(target * 1000.0));
    std::vector<std::pair<RleRow, RleRow>> pairs;
    double ratio_acc = 0.0;
    for (int i = 0; i < pairs_per_point; ++i) {
      RleRow a = generate_row(rng, paper);
      RleRow b = delete_run_fraction(rng, a, p);
      const auto k1 = static_cast<double>(a.run_count());
      const auto k2 = static_cast<double>(b.run_count());
      if (k1 + k2 > 0.0) ratio_acc += (k1 - k2) / (k1 + k2);
      pairs.emplace_back(std::move(a), std::move(b));
    }
    const double achieved = ratio_acc / pairs_per_point;
    SystolicDiffMachine machine;  // recycled, as the row executor does
    SystolicConfig cfg;
    cfg.canonicalize_output = true;
    // Untimed model pass: iteration counts for the Figure-5/Theorem-1
    // checks (deterministic, unlike the wall-clock series).
    double iter_frac_acc = 0.0;
    for (const auto& [a, b] : pairs) {
      const auto iters = static_cast<double>(
          systolic_xor(a, b, cfg, machine).counters.iterations);
      const auto k = static_cast<double>(a.run_count() + b.run_count());
      if (iters > k) theorem1_ok = false;
      if (k > 0.0) iter_frac_acc += iters / k;
    }
    const double iter_frac = iter_frac_acc / pairs_per_point;
    const double t_sys =
        time_pairs_us(pairs, reps, sink,
                      [&machine, &cfg](const RleRow& a, const RleRow& b) {
                        return systolic_xor(a, b, cfg, machine)
                            .output.run_count();
                      });
    const double t_eng =
        time_pairs_us(pairs, reps, sink, [](const RleRow& a, const RleRow& b) {
          return sequential_engine_xor(a, b).output.run_count();
        });
    if (t_eng >= t_sys) wallclock_dominated = false;
    const AdaptiveRoute route = choose_adaptive_route(
        100, static_cast<std::uint64_t>(100.0 * (1.0 - p) + 0.5));
    const bool routed_systolic = route == AdaptiveRoute::kSystolic;
    if (target == target_ratios.front()) first_routes_systolic = routed_systolic;
    if (target == target_ratios.back()) last_routes_sequential = !routed_systolic;
    theta_table.add_row(
        {FixedTable::num(achieved, 3), FixedTable::num(iter_frac, 3),
         FixedTable::num(t_sys, 2), FixedTable::num(t_eng, 2),
         routed_systolic ? "systolic" : "sequential"});
    ratios.push_back(achieved);
    sys_us.push_back(t_sys);
    eng_us.push_back(t_eng);
    iter_fracs.push_back(iter_frac);
  }
  std::cout << theta_table.str();

  // Figure-5 correlation: systolic iterations per unit k must climb with
  // the dissimilarity ratio (monotone up to a small noise slack) and span
  // a real range across the sweep.
  bool fig5_ok = iter_fracs.back() > iter_fracs.front() + 0.3;
  for (std::size_t i = 1; i < iter_fracs.size(); ++i)
    if (iter_fracs[i] < iter_fracs[i - 1] - 0.02) fig5_ok = false;

  // The recalibration itself: θ prices a systolic cycle against sequential
  // work, so the old scalar-tuned 0.5 shrinks by the engine's measured
  // headline speedup.
  const double theta_derived =
      headline_speedup > 0.0 ? 0.5 / headline_speedup : 0.0;
  const double theta_band = smoke ? 0.15 : 0.05;
  std::cout << "derived theta = 0.5 / " << FixedTable::num(headline_speedup, 2)
            << " = " << FixedTable::num(theta_derived, 3)
            << "  (pinned kDefaultSimilarityThreshold = "
            << FixedTable::num(kDefaultSimilarityThreshold, 3) << ")\n";

  report.set_x("dissimilarity_ratio", ratios);
  report.add_series("systolic_us_per_row", sys_us);
  report.add_series("engine_us_per_row", eng_us);
  report.add_series("systolic_iter_fraction", iter_fracs);
  report.set_scalar("paper_no_harm_ratio", no_harm_ratio);
  report.set_scalar("headline_speedup", headline_speedup);
  report.set_scalar("theta_derived_from_speedup", theta_derived);
  report.set_scalar("recalibrated_theta", kDefaultSimilarityThreshold);
  report.set_check("word_engine_3x_on_sparse",
                   headline_speedup >= (smoke ? 1.5 : 3.0));
  report.set_check("bit_identical_to_scalar_oracle", identical);
  report.set_check("paper_workload_no_harm",
                   no_harm_ratio > 0.0 && no_harm_ratio <= (smoke ? 1.6 : 1.25));
  report.set_check("theorem1_holds_on_sweep", theorem1_ok);
  report.set_check("figure5_iterations_track_dissimilarity", fig5_ok);
  report.set_check("simulator_wallclock_dominated", wallclock_dominated);
  report.set_check("theta_tracks_engine_speedup",
                   theta_derived > 0.0 &&
                       kDefaultSimilarityThreshold - theta_derived <= theta_band &&
                       theta_derived - kDefaultSimilarityThreshold <= theta_band);
  report.set_check("theta_splits_sweep",
                   first_routes_systolic && last_routes_sequential);
  report.write_file(json_path);
  std::cout << "wrote " << json_path << '\n';
  if (sink == 0xdeadbeef) std::cout << "";  // keep the checksums alive
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sysrle;

  std::string json_path;
  std::string threads_json_path;
  std::string dispatch_json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--threads-json" && i + 1 < argc) {
      threads_json_path = argv[++i];
    } else if (a == "--dispatch-json" && i + 1 < argc) {
      dispatch_json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_scaling [--json FILE] [--threads-json FILE] "
                   "[--dispatch-json FILE] [--smoke]\n";
      return 2;
    }
  }

  const int kSeeds = smoke ? 5 : 25;
  const pos_t max_width = smoke ? 8192 : 131072;
  FixedTable table;
  table.set_header({"width", "runs(k1)", "systolic-iters", "sequential-iters",
                    "pixel-parallel-steps", "systolic-cells"});

  std::cout << "=== Scaling with 6 fixed error runs of 4 px ===\n";
  std::cout << "(systolic should stay flat; sequential and pixel-parallel "
               "grow with size)\n\n";

  std::vector<double> xs, k1s, sys_iters, seq_iters, pp_steps, cells;
  double sys_first = 0, sys_last = 0, seq_first = 0, seq_last = 0;
  for (pos_t width = 128; width <= max_width; width *= 4) {
    RowGenParams rp;
    rp.width = width;
    RunningStat sys_stat, seq_stat, k1_stat, cells_stat;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(width) * 131 +
              static_cast<std::uint64_t>(seed));
      const RowPairSample s = generate_pair_fixed_errors(rng, rp, 6, 4);
      const SystolicResult r = systolic_xor(s.first, s.second);
      sys_stat.add(static_cast<double>(r.counters.iterations));
      seq_stat.add(
          static_cast<double>(sequential_xor(s.first, s.second).iterations));
      k1_stat.add(static_cast<double>(s.first.run_count()));
      cells_stat.add(static_cast<double>(r.counters.cells_used));
    }
    const auto pp = pixel_parallel_cost(width);
    table.add_row({FixedTable::num(static_cast<std::int64_t>(width)),
                   FixedTable::num(k1_stat.mean(), 0),
                   FixedTable::num(sys_stat.mean(), 2),
                   FixedTable::num(seq_stat.mean(), 0),
                   FixedTable::num(pp.total_steps()),
                   FixedTable::num(cells_stat.mean(), 0)});
    xs.push_back(static_cast<double>(width));
    k1s.push_back(k1_stat.mean());
    sys_iters.push_back(sys_stat.mean());
    seq_iters.push_back(seq_stat.mean());
    pp_steps.push_back(static_cast<double>(pp.total_steps()));
    cells.push_back(cells_stat.mean());
    if (width == 128) {
      sys_first = sys_stat.mean();
      seq_first = seq_stat.mean();
    }
    sys_last = sys_stat.mean();
    seq_last = seq_stat.mean();
  }

  const bool claim_holds = sys_last / sys_first < 3.0;
  std::cout << table.str() << '\n';
  std::cout << "growth 128 -> " << max_width << ": systolic x"
            << FixedTable::num(sys_last / sys_first, 2) << ", sequential x"
            << FixedTable::num(seq_last / seq_first, 1)
            << (claim_holds ? "  [constant-time claim holds]"
                            : "  [CLAIM VIOLATED]")
            << '\n';
  std::cout << "\nCSV:\n" << table.csv();

  if (!json_path.empty()) {
    BenchReport report("scaling");
    report.set_param("seeds", static_cast<std::int64_t>(kSeeds));
    report.set_param("error_runs", static_cast<std::int64_t>(6));
    report.set_param("error_run_length", static_cast<std::int64_t>(4));
    report.set_param("mode", smoke ? "smoke" : "full");
    report.set_x("width", xs);
    report.add_series("k1", k1s);
    report.add_series("systolic_iterations", sys_iters);
    report.add_series("sequential_iterations", seq_iters);
    report.add_series("pixel_parallel_steps", pp_steps);
    report.add_series("systolic_cells", cells);
    report.set_scalar("growth_systolic", sys_last / sys_first);
    report.set_scalar("growth_sequential", seq_last / seq_first);
    report.set_check("constant_time_claim", claim_holds);
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << '\n';
  }

  if (!threads_json_path.empty()) run_thread_sweep(threads_json_path, smoke);
  if (!dispatch_json_path.empty())
    run_dispatch_sweep(dispatch_json_path, smoke);
  return 0;
}
