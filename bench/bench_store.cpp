// Store extension: what does the persistent image store buy the serving
// stack, and does its accounting hold under churn?
//
// The pre-store serving path pays full ingestion on every request: both
// operands arrive as serialized RLE bytes and must be parsed (read_rle,
// with per-row validation) and fingerprinted (the coalescer key hashes both
// images) before the diff engine sees a single run.  The store amortizes
// all of that to registration time — a hot reference image is parsed zero
// times per request.  This bench pins that claim and the store/cache
// accounting identities as named, machine-checkable booleans:
//
//   1. Hot-reference throughput — one reference and a pool of scans are
//      registered once; a request stream cycling those hot pairs is served
//      three ways.  Baseline: parse + fingerprint both operands and diff,
//      per request (exactly the by-value submit path's ingestion work).
//      Acquire-only: resolve both pins from the store and diff — the
//      "parsed zero times per request" half of the claim.  Full stack:
//      acquire + result-cache lookup, diffing only on a cold pair — what
//      `serve --store` actually wires up.  The full stack must clear 5x the
//      baseline's request throughput, the acquire-only path must already
//      beat the baseline, every acquire must hit (zero lookup misses), and
//      all three paths must produce bit-identical diffs per pair.
//   2. Result-cache hit ratio — a 1x1 ShardRouter with store + cache serves
//      K distinct by-handle pairs, each submitted R times sequentially
//      (response awaited between submissions, so the coalescer never sees
//      two in flight).  The backend engine runs exactly K times; the other
//      K*(R-1) responses come from the cache, bit-identical per pair, and
//      lookups == hits + misses.
//   3. Churn — a deliberately tiny store capacity forces eviction across a
//      long register stream: registered == resident + evicted at every
//      step's end, resident bytes never exceed capacity (no pins held), the
//      slab arena's live bytes track the store's resident bytes exactly
//      (zero leak), and a pinned entry survives a capacity storm that
//      evicts everything around it.  The result cache gets the same
//      treatment: budgeted inserts evict from the LRU tail and the
//      lookup identity holds.
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --smoke shrinks the
// workload for CI.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixed_table.hpp"
#include "core/image_diff.hpp"
#include "rle/serialize.hpp"
#include "service/shard_router.hpp"
#include "store/image_store.hpp"
#include "store/result_cache.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

RleImage make_image(Rng& rng, pos_t rows, pos_t width, double density) {
  RowGenParams gp;
  gp.width = width;
  gp.density = density;
  return generate_image(rng, rows, gp);
}

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_store [--json FILE] [--smoke]\n";
      return 2;
    }
  }

  const pos_t kRows = smoke ? 32 : 96;
  const pos_t kWidth = smoke ? 2048 : 8192;
  const int kRequests = smoke ? 120 : 600;
  const std::uint64_t kSeed = 42;

  ImageDiffOptions options;
  options.threads = 1;  // serial rows: the bench measures ingestion, not pool
  // The library fast path, not the cycle-level machine simulation: the
  // claim under test is that the store amortizes per-request *ingestion*
  // (parse + fingerprint), which only shows once the diff itself runs at
  // production speed.
  options.engine = DiffEngine::kParitySweep;

  // --- 1. hot-reference throughput ---------------------------------------
  // One reference, a small pool of scans, both sides pre-registered.  The
  // baseline replays the by-value ingestion path per request: deserialize
  // both operands from their SRLB bytes (read_rle validates every row),
  // fingerprint both (the coalescer key does), then diff.  Diff payloads
  // are kept per pair and fingerprinted after the clocks stop, so the
  // verification cost never tilts any timed loop.
  Rng rng(kSeed);
  const RleImage reference = make_image(rng, kRows, kWidth, 0.30);
  const int kScanPool = 8;
  std::vector<RleImage> scans;
  for (int i = 0; i < kScanPool; ++i)
    scans.push_back(make_image(rng, kRows, kWidth, 0.28));

  const std::string ref_bytes = canonical_rle_bytes(reference);
  std::vector<std::string> scan_bytes;
  for (const RleImage& s : scans) scan_bytes.push_back(canonical_rle_bytes(s));

  std::vector<RleImage> baseline_diffs(static_cast<std::size_t>(kScanPool),
                                       RleImage{0, 0});
  const auto t_base = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const std::size_t p = static_cast<std::size_t>(i % kScanPool);
    std::istringstream ra(ref_bytes);
    const RleImage a = read_rle(ra);
    std::istringstream rb(scan_bytes[p]);
    const RleImage b = read_rle(rb);
    (void)canonical_fingerprint(a);
    (void)canonical_fingerprint(b);
    ImageDiffResult r = image_diff(a, b, options);
    if (i < kScanPool) baseline_diffs[p] = std::move(r.diff);
  }
  const double baseline_us = elapsed_us(t_base);

  ImageStore store;  // default 64 MB: everything stays resident
  const ImageHandle ref_handle = store.register_image(reference).handle;
  std::vector<ImageHandle> scan_handles;
  for (const RleImage& s : scans)
    scan_handles.push_back(store.register_image(s).handle);

  // Acquire-only: parsed zero times per request, engine still runs per
  // request.
  std::vector<RleImage> acquire_diffs(static_cast<std::size_t>(kScanPool),
                                      RleImage{0, 0});
  const auto t_acquire = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const std::size_t p = static_cast<std::size_t>(i % kScanPool);
    const PinnedImage a = store.acquire(ref_handle);
    const PinnedImage b = store.acquire(scan_handles[p]);
    ImageDiffResult r = image_diff(a.image(), b.image(), options);
    if (i < kScanPool) acquire_diffs[p] = std::move(r.diff);
  }
  const double acquire_us = elapsed_us(t_acquire);

  // Full stack: acquire + result-cache lookup; the engine runs only on the
  // first sight of a pair (what `serve --store` wires through the router).
  ResultCache hot_cache;
  std::vector<RleImage> stack_diffs(static_cast<std::size_t>(kScanPool),
                                    RleImage{0, 0});
  const auto t_stack = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    const std::size_t p = static_cast<std::size_t>(i % kScanPool);
    const PinnedImage a = store.acquire(ref_handle);
    const PinnedImage b = store.acquire(scan_handles[p]);
    ResultKey key;
    key.fp_a = a.handle();
    key.fp_b = b.handle();
    key.engine = options.engine;
    key.canonicalize = options.canonicalize_output;
    std::shared_ptr<const CachedDiff> hit =
        hot_cache.lookup(key, a.image(), b.image());
    if (!hit) {
      ImageDiffResult r = image_diff(a.image(), b.image(), options);
      CachedDiff result;
      result.diff = std::move(r.diff);
      result.rows_processed = static_cast<std::uint64_t>(kRows);
      hot_cache.insert(key, a.share(), b.share(), std::move(result));
      hit = hot_cache.lookup(key, a.image(), b.image());
    }
    if (i < kScanPool) stack_diffs[p] = hit->diff;
  }
  const double stack_us = elapsed_us(t_stack);

  const double throughput_ratio = stack_us > 0.0 ? baseline_us / stack_us : 0.0;
  const double acquire_ratio = acquire_us > 0.0 ? baseline_us / acquire_us : 0.0;
  const StoreStats hot_stats = store.stats();
  const bool hot_throughput_5x = throughput_ratio >= 5.0;
  const bool hot_parse_amortized = acquire_ratio > 1.0;
  const bool hot_zero_misses = hot_stats.lookup_misses == 0;
  bool hot_bit_identical = true;
  for (std::size_t p = 0; p < static_cast<std::size_t>(kScanPool); ++p) {
    const std::uint64_t want = canonical_fingerprint(baseline_diffs[p]);
    hot_bit_identical = hot_bit_identical &&
                        canonical_fingerprint(acquire_diffs[p]) == want &&
                        canonical_fingerprint(stack_diffs[p]) == want;
  }
  const bool hot_accounted = hot_stats.accounted() &&
                             hot_cache.stats().accounted();

  std::cout << "--- 1. hot-reference throughput (" << kRequests
            << " requests over " << kScanPool << " hot pairs, " << kRows
            << " rows x " << kWidth << " px) ---\n"
            << "parse-per-request: " << baseline_us / kRequests
            << " us/request   acquire-only: " << acquire_us / kRequests
            << " us/request (" << acquire_ratio
            << "x)\nstore+cache:       " << stack_us / kRequests
            << " us/request   ratio " << throughput_ratio << "x\n"
            << "acquires: " << hot_stats.acquires << " (misses "
            << hot_stats.lookup_misses << ")  bit-identical: "
            << (hot_bit_identical ? "yes" : "NO") << "\n\n";

  // --- 2. result-cache hit ratio ------------------------------------------
  // K distinct pairs, each diffed kRepeats times strictly sequentially
  // through a 1x1 router (the response is awaited before the next submit,
  // so nothing coalesces and every repeat is a clean cache lookup).
  const int kPairs = smoke ? 4 : 8;
  const int kRepeats = 3;
  auto cache_store = std::make_shared<ImageStore>();
  auto cache = std::make_shared<ResultCache>();
  std::vector<ImageHandle> pair_a(static_cast<std::size_t>(kPairs));
  std::vector<ImageHandle> pair_b(static_cast<std::size_t>(kPairs));
  for (int p = 0; p < kPairs; ++p) {
    pair_a[static_cast<std::size_t>(p)] =
        cache_store->register_image(make_image(rng, kRows, kWidth, 0.30))
            .handle;
    pair_b[static_cast<std::size_t>(p)] =
        cache_store->register_image(make_image(rng, kRows, kWidth, 0.28))
            .handle;
  }

  RouterConfig rcfg;
  rcfg.shards = 1;
  rcfg.replicas = 1;
  rcfg.replica_service.workers = 1;
  rcfg.replica_service.admission.interactive_capacity = 4;
  rcfg.replica_service.admission.batch_capacity = 4;
  rcfg.store = cache_store;
  rcfg.cache = cache;

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t delivered = 0;
  std::map<std::uint64_t, std::uint64_t> diff_fp_by_id;
  bool all_completed = true;
  {
    ShardRouter router(rcfg, [&](ServiceResponse r) {
      std::lock_guard<std::mutex> lk(mu);
      ++delivered;
      if (r.status == ServiceResponse::Status::kCompleted)
        diff_fp_by_id[r.id] = canonical_fingerprint(r.diff);
      else
        all_completed = false;
      cv.notify_all();
    });
    std::uint64_t id = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      for (int p = 0; p < kPairs; ++p) {
        ServiceRequest req;
        req.id = id++;
        req.priority = Priority::kBatch;
        req.ref_handle = pair_a[static_cast<std::size_t>(p)];
        req.scan_handle = pair_b[static_cast<std::size_t>(p)];
        req.keep_diff = true;
        req.options = options;
        if (router.try_submit(std::move(req))) all_completed = false;
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return delivered >= id; });
      }
    }
    router.drain();
    const RouterStats rt = router.stats();
    const ServiceStats bk = router.backend_stats();
    const CacheStats cs = cache->stats();

    const std::uint64_t total =
        static_cast<std::uint64_t>(kPairs) * kRepeats;
    const std::uint64_t expected_hits =
        static_cast<std::uint64_t>(kPairs) * (kRepeats - 1);
    const double hit_ratio =
        cs.lookups > 0
            ? static_cast<double>(cs.hits) / static_cast<double>(cs.lookups)
            : 0.0;
    // Bit-identical replay: every repeat of pair p reproduced the same
    // canonical diff fingerprint.
    bool replay_identical = all_completed && diff_fp_by_id.size() == total;
    for (std::uint64_t i = 0; replay_identical && i < total; ++i)
      replay_identical =
          diff_fp_by_id[i] ==
          diff_fp_by_id[i % static_cast<std::uint64_t>(kPairs)];
    const bool cache_serves_repeats =
        rt.cache_hits == expected_hits &&
        bk.engine_invocations == static_cast<std::uint64_t>(kPairs);
    const bool cache_accounted = cs.accounted() && rt.accounted();

    std::cout << "--- 2. result-cache hit ratio (" << kPairs << " pairs x "
              << kRepeats << " sequential repeats) ---\n"
              << "engine invocations: " << bk.engine_invocations
              << "  cache hits: " << rt.cache_hits << "/" << cs.lookups
              << " lookups (ratio " << hit_ratio << ")\n"
              << "replay bit-identical: " << (replay_identical ? "yes" : "NO")
              << "\n\n";

    // --- 3. churn -----------------------------------------------------------
    // A 64 KiB store swallows a stream of images far past capacity; the
    // accounting identity and the arena-leak identity must survive, and a
    // pinned entry must ride out the storm.
    StoreConfig tiny;
    tiny.capacity_bytes = 64 * 1024;
    tiny.slab_bytes = 16 * 1024;
    ImageStore churn(tiny);
    const int kChurn = smoke ? 64 : 256;
    const ImageHandle pinned_handle =
        churn.register_image(make_image(rng, 16, 2048, 0.3)).handle;
    const PinnedImage pinned = churn.acquire(pinned_handle);
    bool churn_accounted = true;
    for (int i = 0; i < kChurn; ++i) {
      (void)churn.register_image(make_image(rng, 16, 2048, 0.3));
      const StoreStats s = churn.stats();
      churn_accounted = churn_accounted && s.accounted();
    }
    const StoreStats churn_stats = churn.stats();
    const SlabArena::Stats arena = churn.arena_stats();
    const bool churn_evicts = churn_stats.evicted > 0;
    const bool churn_arena_no_leak =
        arena.live_bytes == churn_stats.resident_bytes;
    const bool churn_pin_survives =
        churn.contains(pinned_handle) && pinned.image().height() == 16;

    CacheConfig tiny_cache;
    tiny_cache.capacity_bytes = 64 * 1024;
    ResultCache churn_cache(tiny_cache);
    for (int i = 0; i < kChurn; ++i) {
      const RleImage diff = make_image(rng, 16, 2048, 0.3);
      ResultKey key;
      key.fp_a = static_cast<std::uint64_t>(i) + 1;
      key.fp_b = static_cast<std::uint64_t>(i) + 2;
      auto a = std::make_shared<const RleImage>(0, 0);
      auto b = std::make_shared<const RleImage>(0, 0);
      churn_cache.insert(key, a, b,
                         CachedDiff{diff, 16, 0});
      (void)churn_cache.lookup(key, *a, *b);
    }
    const CacheStats churn_cache_stats = churn_cache.stats();
    const bool cache_churn_evicts = churn_cache_stats.evictions > 0;
    const bool cache_churn_budget =
        churn_cache_stats.resident_bytes <= tiny_cache.capacity_bytes;
    const bool cache_churn_accounted = churn_cache_stats.accounted();

    std::cout << "--- 3. churn (64 KiB budgets, " << kChurn
              << " registrations / insertions) ---\n"
              << "store: registered " << churn_stats.registered
              << " resident " << churn_stats.resident << " evicted "
              << churn_stats.evicted << " (blocked by pin "
              << churn_stats.evict_blocked_by_pin << ")\n"
              << "arena: live " << arena.live_bytes << " bytes vs resident "
              << churn_stats.resident_bytes << " bytes ("
              << (churn_arena_no_leak ? "no leak" : "LEAK") << ")\n"
              << "cache: insertions " << churn_cache_stats.insertions
              << " evictions " << churn_cache_stats.evictions
              << " resident_bytes " << churn_cache_stats.resident_bytes
              << "\n\n";

    const bool all_ok = hot_throughput_5x && hot_parse_amortized &&
                        hot_zero_misses && hot_bit_identical && hot_accounted &&
                        cache_serves_repeats && replay_identical &&
                        cache_accounted && churn_accounted && churn_evicts &&
                        churn_arena_no_leak && churn_pin_survives &&
                        cache_churn_evicts && cache_churn_budget &&
                        cache_churn_accounted;
    std::cout << "verdict: "
              << (all_ok ? "store holds (all checks pass)"
                         : "STORE GAP (see failed checks)")
              << '\n';

    if (!json_path.empty()) {
      BenchReport report("store");
      report.set_param("rows", static_cast<std::int64_t>(kRows));
      report.set_param("width", static_cast<std::int64_t>(kWidth));
      report.set_param("requests", static_cast<std::int64_t>(kRequests));
      report.set_param("seed", static_cast<std::int64_t>(kSeed));
      report.set_param("smoke", smoke ? "true" : "false");
      report.set_scalar("baseline_us_per_request",
                        baseline_us / kRequests);
      report.set_scalar("acquire_only_us_per_request",
                        acquire_us / kRequests);
      report.set_scalar("store_cache_us_per_request", stack_us / kRequests);
      report.set_scalar("throughput_ratio", throughput_ratio);
      report.set_scalar("acquire_only_ratio", acquire_ratio);
      report.set_scalar("hot_acquires",
                        static_cast<double>(hot_stats.acquires));
      report.set_scalar("cache_engine_invocations",
                        static_cast<double>(bk.engine_invocations));
      report.set_scalar("cache_hits", static_cast<double>(rt.cache_hits));
      report.set_scalar("cache_lookups", static_cast<double>(cs.lookups));
      report.set_scalar("cache_hit_ratio", hit_ratio);
      report.set_scalar("churn_registered",
                        static_cast<double>(churn_stats.registered));
      report.set_scalar("churn_evicted",
                        static_cast<double>(churn_stats.evicted));
      report.set_scalar("churn_evict_blocked_by_pin",
                        static_cast<double>(churn_stats.evict_blocked_by_pin));
      report.set_scalar("churn_arena_live_bytes",
                        static_cast<double>(arena.live_bytes));
      report.set_scalar("churn_resident_bytes",
                        static_cast<double>(churn_stats.resident_bytes));
      report.set_scalar("cache_churn_evictions",
                        static_cast<double>(churn_cache_stats.evictions));
      report.set_check("hot_throughput_5x", hot_throughput_5x);
      report.set_check("hot_parse_amortized", hot_parse_amortized);
      report.set_check("hot_zero_misses", hot_zero_misses);
      report.set_check("hot_bit_identical", hot_bit_identical);
      report.set_check("hot_accounted", hot_accounted);
      report.set_check("cache_serves_repeats", cache_serves_repeats);
      report.set_check("replay_identical", replay_identical);
      report.set_check("cache_accounted", cache_accounted);
      report.set_check("churn_accounted", churn_accounted);
      report.set_check("churn_evicts", churn_evicts);
      report.set_check("churn_arena_no_leak", churn_arena_no_leak);
      report.set_check("churn_pin_survives", churn_pin_survives);
      report.set_check("cache_churn_evicts", cache_churn_evicts);
      report.set_check("cache_churn_budget", cache_churn_budget);
      report.set_check("cache_churn_accounted", cache_churn_accounted);
      report.write_file(json_path);
    }
    return all_ok ? 0 : 1;
  }
}
