// Reproduces Table 1: "Average systolic iterations versus sequential
// iterations for small amounts of errors (where the length of runs in images
// is 4-20, and the length of error runs is 2-6)."
//
// Two regimes over image sizes 128..2048:
//   (a) errors ~= 3.5 % of the image  -> both algorithms grow linearly;
//   (b) exactly 6 error runs of 4 px  -> sequential still grows linearly
//       while the systolic machine "averages just over 5 iterations
//       regardless of how large the image gets".
//
// Flags: --json FILE writes a sysrle.bench.v1 report; --smoke shrinks the
// sweep for CI.

#include <iostream>
#include <string>
#include <vector>

#include "baseline/sequential_diff.hpp"
#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

struct RegimeRow {
  std::vector<double> systolic;
  std::vector<double> sequential;
};

RegimeRow run_regime(const std::vector<pos_t>& sizes, int seeds_per_point,
                     bool fixed_errors) {
  RegimeRow out;
  for (const pos_t width : sizes) {
    RowGenParams rp;
    rp.width = width;
    RunningStat sys_stat, seq_stat;
    for (int seed = 0; seed < seeds_per_point; ++seed) {
      Rng rng(static_cast<std::uint64_t>(width) * 7919 +
              static_cast<std::uint64_t>(seed) + (fixed_errors ? 1u : 0u));
      RowPairSample s;
      if (fixed_errors) {
        s = generate_pair_fixed_errors(rng, rp, /*count=*/6, /*length=*/4);
      } else {
        ErrorGenParams ep;
        ep.error_fraction = 0.035;
        s = generate_pair(rng, rp, ep);
      }
      sys_stat.add(static_cast<double>(
          systolic_xor(s.first, s.second).counters.iterations));
      seq_stat.add(
          static_cast<double>(sequential_xor(s.first, s.second).iterations));
    }
    out.systolic.push_back(sys_stat.mean());
    out.sequential.push_back(seq_stat.mean());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_table1 [--json FILE] [--smoke]\n";
      return 2;
    }
  }

  // Smoke keeps the full 128->2048 span (the shape check needs the
  // separation) but drops the per-cell seed count and the interior sizes.
  const int seeds_per_point = smoke ? 5 : 50;
  std::vector<pos_t> sizes{128, 256, 512, 1024, 2048};
  if (smoke) sizes = {128, 512, 2048};

  std::cout << "=== Table 1: average iterations vs image size ===\n";
  std::cout << "(runs 4-20 px, error runs 2-6 px, " << seeds_per_point
            << " seeds per cell)\n\n";

  const RegimeRow pct = run_regime(sizes, seeds_per_point, false);
  const RegimeRow fixed = run_regime(sizes, seeds_per_point, true);

  FixedTable table;
  std::vector<std::string> header{"Algorithm", "Errors"};
  for (const pos_t w : sizes) header.push_back(std::to_string(w));
  table.set_header(header);

  auto add = [&table](const char* algo, const char* errs,
                      const std::vector<double>& vals) {
    std::vector<std::string> row{algo, errs};
    for (const double v : vals) row.push_back(FixedTable::num(v, 1));
    table.add_row(row);
  };
  add("Systolic", "3.5%", pct.systolic);
  add("Sequential", "3.5%", pct.sequential);
  add("Systolic", "6 runs", fixed.systolic);
  add("Sequential", "6 runs", fixed.sequential);

  std::cout << table.str() << '\n';

  // Shape validation, printed so a regression is obvious in the log.
  const double growth_seq = fixed.sequential.back() / fixed.sequential.front();
  const double growth_sys = fixed.systolic.back() / fixed.systolic.front();
  // Smoke runs 5 seeds per cell, so leave more noise headroom on the margin.
  const double margin = smoke ? 2.5 : 4.0;
  const bool shape_ok = growth_sys < 1.5 && growth_seq > margin * growth_sys;
  std::cout << "fixed-error growth " << sizes.front() << " -> " << sizes.back()
            << ": sequential x" << FixedTable::num(growth_seq, 1)
            << ", systolic x" << FixedTable::num(growth_sys, 1)
            << (shape_ok ? "  [shape matches the paper]"
                         : "  [SHAPE MISMATCH]")
            << '\n';
  std::cout << "systolic mean at " << sizes.back()
            << " px with 6 error runs: "
            << FixedTable::num(fixed.systolic.back(), 2)
            << " iterations (paper: 'just over 5')\n";

  std::cout << "\nCSV:\n" << table.csv();

  if (!json_path.empty()) {
    BenchReport report("table1");
    report.set_param("seeds_per_point",
                     static_cast<std::int64_t>(seeds_per_point));
    report.set_param("mode", smoke ? "smoke" : "full");
    std::vector<double> xs;
    for (const pos_t w : sizes) xs.push_back(static_cast<double>(w));
    report.set_x("width", std::move(xs));
    report.add_series("systolic_pct_errors", pct.systolic);
    report.add_series("sequential_pct_errors", pct.sequential);
    report.add_series("systolic_fixed_errors", fixed.systolic);
    report.add_series("sequential_fixed_errors", fixed.sequential);
    report.set_scalar("fixed_growth_sequential", growth_seq);
    report.set_scalar("fixed_growth_systolic", growth_sys);
    report.set_scalar("systolic_mean_at_max_width", fixed.systolic.back());
    report.set_check("shape_matches_paper", shape_ok);
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << '\n';
  }
  return 0;
}
