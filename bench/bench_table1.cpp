// Reproduces Table 1: "Average systolic iterations versus sequential
// iterations for small amounts of errors (where the length of runs in images
// is 4-20, and the length of error runs is 2-6)."
//
// Two regimes over image sizes 128..2048:
//   (a) errors ~= 3.5 % of the image  -> both algorithms grow linearly;
//   (b) exactly 6 error runs of 4 px  -> sequential still grows linearly
//       while the systolic machine "averages just over 5 iterations
//       regardless of how large the image gets".

#include <iostream>
#include <vector>

#include "baseline/sequential_diff.hpp"
#include "common/fixed_table.hpp"
#include "common/stats.hpp"
#include "core/systolic_diff.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

constexpr int kSeedsPerPoint = 50;
const std::vector<pos_t> kSizes{128, 256, 512, 1024, 2048};

struct RegimeRow {
  std::vector<double> systolic;
  std::vector<double> sequential;
};

RegimeRow run_regime(bool fixed_errors) {
  RegimeRow out;
  for (const pos_t width : kSizes) {
    RowGenParams rp;
    rp.width = width;
    RunningStat sys_stat, seq_stat;
    for (int seed = 0; seed < kSeedsPerPoint; ++seed) {
      Rng rng(static_cast<std::uint64_t>(width) * 7919 +
              static_cast<std::uint64_t>(seed) + (fixed_errors ? 1u : 0u));
      RowPairSample s;
      if (fixed_errors) {
        s = generate_pair_fixed_errors(rng, rp, /*count=*/6, /*length=*/4);
      } else {
        ErrorGenParams ep;
        ep.error_fraction = 0.035;
        s = generate_pair(rng, rp, ep);
      }
      sys_stat.add(static_cast<double>(
          systolic_xor(s.first, s.second).counters.iterations));
      seq_stat.add(
          static_cast<double>(sequential_xor(s.first, s.second).iterations));
    }
    out.systolic.push_back(sys_stat.mean());
    out.sequential.push_back(seq_stat.mean());
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Table 1: average iterations vs image size ===\n";
  std::cout << "(runs 4-20 px, error runs 2-6 px, " << kSeedsPerPoint
            << " seeds per cell)\n\n";

  const RegimeRow pct = run_regime(/*fixed_errors=*/false);
  const RegimeRow fixed = run_regime(/*fixed_errors=*/true);

  FixedTable table;
  std::vector<std::string> header{"Algorithm", "Errors"};
  for (const pos_t w : kSizes) header.push_back(std::to_string(w));
  table.set_header(header);

  auto add = [&table](const char* algo, const char* errs,
                      const std::vector<double>& vals) {
    std::vector<std::string> row{algo, errs};
    for (const double v : vals) row.push_back(FixedTable::num(v, 1));
    table.add_row(row);
  };
  add("Systolic", "3.5%", pct.systolic);
  add("Sequential", "3.5%", pct.sequential);
  add("Systolic", "6 runs", fixed.systolic);
  add("Sequential", "6 runs", fixed.sequential);

  std::cout << table.str() << '\n';

  // Shape validation, printed so a regression is obvious in the log.
  const double growth_seq = fixed.sequential.back() / fixed.sequential.front();
  const double growth_sys = fixed.systolic.back() / fixed.systolic.front();
  std::cout << "fixed-error growth 128 -> 2048: sequential x"
            << FixedTable::num(growth_seq, 1) << ", systolic x"
            << FixedTable::num(growth_sys, 1)
            << (growth_sys < 1.5 && growth_seq > 4.0 * growth_sys
                    ? "  [shape matches the paper]"
                    : "  [SHAPE MISMATCH]")
            << '\n';
  std::cout << "systolic mean at 2048 px with 6 error runs: "
            << FixedTable::num(fixed.systolic.back(), 2)
            << " iterations (paper: 'just over 5')\n";

  std::cout << "\nCSV:\n" << table.csv();
  return 0;
}
