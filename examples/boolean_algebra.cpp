// The full Boolean algebra on the array: XOR is the paper's machine, OR is
// the union variant, and AND / difference fall out of machine composition —
//   A AND B = (A XOR B) XOR (A OR B)
//   A \ B   = A XOR (A AND B)
// This example runs all four on one input pair and shows the pass and
// iteration accounting.
//
//   $ ./boolean_algebra

#include <iostream>

#include "core/boolean_ops.hpp"
#include "core/systolic_diff.hpp"
#include "core/union_variant.hpp"
#include "rle/encode.hpp"

int main() {
  using namespace sysrle;

  const std::string sa = "0011111100001111000011110000";
  const std::string sb = "0000111111000011110000110000";
  const RleRow a = encode_bitstring(sa);
  const RleRow b = encode_bitstring(sb);
  const pos_t width = static_cast<pos_t>(sa.size());

  std::cout << "a       : " << sa << "   " << a << '\n';
  std::cout << "b       : " << sb << "   " << b << "\n\n";

  const SystolicResult x = systolic_xor(a, b);
  std::cout << "a XOR b : " << decode_bitstring(x.output.canonical(), width)
            << "   (1 pass, " << x.counters.iterations << " iterations)\n";

  const UnionResult u = systolic_or(a, b);
  std::cout << "a OR b  : " << decode_bitstring(u.output.canonical(), width)
            << "   (1 pass, " << u.counters.iterations << " iterations)\n";

  const BooleanOpResult n = systolic_and(a, b);
  std::cout << "a AND b : " << decode_bitstring(n.output, width) << "   ("
            << n.passes << " passes, " << n.counters.iterations
            << " iterations)\n";

  const BooleanOpResult d = systolic_subtract(a, b);
  std::cout << "a \\ b   : " << decode_bitstring(d.output, width) << "   ("
            << d.passes << " passes, " << d.counters.iterations
            << " iterations)\n";

  std::cout << "\nwhy composition: XOR and OR are definable on the multiset\n"
               "of runs in the array (a run's image of origin never matters),\n"
               "AND is not — but the identity AND = XOR(XOR, OR) closes the\n"
               "algebra on unmodified hardware.  See docs/HARDWARE.md §5.\n";
  return 0;
}
