// Character recognition by template difference — the paper's introduction
// lists character recognition among the applications of fast binary image
// difference.  A noisy sample glyph is compared against every template in
// the font; the best match is the template whose RLE difference has the
// fewest foreground pixels.  All comparisons run on the systolic machine.
//
//   $ ./character_match [text]

#include <iostream>
#include <string>

#include "bitmap/convert.hpp"
#include "core/systolic_diff.hpp"
#include "workload/glyphs.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

/// Flips a few random pixels to simulate scanner noise.
BitmapImage add_noise(Rng& rng, BitmapImage img, int flips) {
  for (int i = 0; i < flips; ++i)
    img.set(rng.uniform(0, img.width() - 1), rng.uniform(0, img.height() - 1),
            rng.bernoulli(0.5));
  return img;
}

/// Total difference pixels between two equal-size RLE images, computed row
/// by row on the systolic machine.  Returns the pair (pixels, iterations).
std::pair<len_t, cycle_t> systolic_distance(const RleImage& a,
                                            const RleImage& b) {
  len_t pixels = 0;
  cycle_t iterations = 0;
  for (pos_t y = 0; y < a.height(); ++y) {
    const SystolicResult r = systolic_xor(a.row(y), b.row(y));
    pixels += r.output.foreground_pixels();
    iterations += r.counters.iterations;
  }
  return {pixels, iterations};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string text = argc > 1 ? argv[1] : "SYSTOLIC";
  const pos_t scale = 3;
  Rng rng(123);

  const std::string alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string recognised;
  cycle_t total_iterations = 0;

  for (char expected : text) {
    if (!glyph_available(expected)) {
      recognised += '?';
      continue;
    }
    // The "scanned" sample: the true glyph plus noise.
    const BitmapImage clean = render_glyph(expected, scale);
    const RleImage sample =
        bitmap_to_rle(add_noise(rng, clean, /*flips=*/6));

    char best = '?';
    len_t best_distance = -1;
    for (char candidate : alphabet) {
      const RleImage tmpl = bitmap_to_rle(render_glyph(candidate, scale));
      const auto [pixels, iters] = systolic_distance(sample, tmpl);
      total_iterations += iters;
      if (best_distance < 0 || pixels < best_distance) {
        best_distance = pixels;
        best = candidate;
      }
    }
    recognised += best;
    std::cout << "sample '" << expected << "' -> matched '" << best
              << "' (difference " << best_distance << " px)\n";
  }

  std::cout << "\ninput text : " << text << '\n';
  std::cout << "recognised : " << recognised << '\n';
  std::cout << "total systolic iterations across all template comparisons: "
            << total_iterations << '\n';
  std::cout << (recognised == text ? "perfect recognition\n"
                                   : "note: noise caused mismatches\n");
  return 0;
}
