// A tour of the compressed-domain toolbox: everything here happens on RLE
// data — generation, serialization to disk, geometric normalisation,
// denoising morphology, the systolic difference, region labeling, and
// compression analytics.  No stage ever materialises a full bitmap.
//
//   $ ./compressed_pipeline

#include <iostream>

#include "core/image_diff.hpp"
#include "inspect/labeling.hpp"
#include "rle/morphology.hpp"
#include "rle/ops.hpp"
#include "rle/rle_stats.hpp"
#include "rle/serialize.hpp"
#include "rle/transform.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace {

using namespace sysrle;

/// ORs (adds) or subtracts (removes) a w x h rectangle — pure row ops.
void paint_rect(RleImage& img, pos_t x, pos_t y, pos_t w, pos_t h, bool add) {
  const RleRow rect{{x, w}};
  for (pos_t yy = y; yy < y + h && yy < img.height(); ++yy) {
    img.set_row(yy, add ? or_rows(img.row(yy), rect)
                        : subtract_rows(img.row(yy), rect));
  }
}

}  // namespace

int main() {
  Rng rng(2024);

  // 1. Generate a reference image and persist it (binary RLE format).
  RowGenParams p;
  p.width = 4096;
  p.min_run_length = 40;   // coarse artwork: long runs, high compression
  p.max_run_length = 300;
  p.density = 0.35;
  const RleImage reference = generate_image(rng, 256, p);
  write_rle_file("/tmp/sysrle_pipeline_ref.srl", reference);
  std::cout << "reference: " << compression_stats(reference).to_string()
            << "\n           saved to /tmp/sysrle_pipeline_ref.srl\n";

  // 2. The 'scan': reloaded from disk, mirrored (film flipped on the
  //    scanner), with 6 rectangular defects and ~150 one-pixel specks.
  RleImage scan = read_rle_file("/tmp/sysrle_pipeline_ref.srl");
  for (int d = 0; d < 6; ++d) {
    paint_rect(scan, rng.uniform(50, p.width - 60), rng.uniform(5, 245),
               rng.uniform(4, 10), rng.uniform(3, 6), rng.bernoulli(0.5));
  }
  for (int s = 0; s < 150; ++s) {
    const pos_t x = rng.uniform(0, p.width - 1);
    const pos_t y = rng.uniform(0, 255);
    scan.set_row(y, xor_rows(scan.row(y), RleRow{{x, 1}}));
  }
  scan = reflect_image_horizontal(scan);

  // 3. Normalise the orientation back — one O(runs) transform.
  const RleImage normalised = reflect_image_horizontal(scan);

  // 4. Systolic difference against the reference.
  ImageDiffOptions opts;
  opts.engine = DiffEngine::kSystolic;
  const ImageDiffResult raw = image_diff(reference, normalised, opts);
  std::cout << "raw difference: " << raw.diff.stats().foreground_pixels
            << " px in " << raw.diff.stats().total_runs << " runs\n"
            << "  machine: " << raw.counters.to_string() << '\n';

  // 5. Morphological opening deletes the specks; the rectangular defects
  //    (>= 3x3 after erosion margin) survive.
  const RleImage cleaned = open_image(raw.diff, 1, 1);
  const auto regions = label_components(cleaned);
  std::cout << "after 3x3 opening: " << cleaned.stats().foreground_pixels
            << " px in " << regions.size() << " region(s):\n";
  for (const Component& c : regions)
    std::cout << "  region " << c.label << ": (" << c.min_x << ',' << c.min_y
              << ")-(" << c.max_x << ',' << c.max_y << "), " << c.pixel_count
              << " px\n";

  // 6. Run-length profile of the reference (why RLE pays off here).
  std::cout << "\nreference run-length profile:\n"
            << run_length_histogram(reference).to_string();
  return 0;
}
