// Reproduces the paper's worked example end to end: the Figure 1 input pair,
// the Figure 3 step-by-step systolic execution trace, and the final XOR.
//
//   $ ./figure3_trace

#include <iostream>

#include "core/compaction.hpp"
#include "core/cost_model.hpp"
#include "core/systolic_diff.hpp"
#include "systolic/trace.hpp"

int main() {
  using namespace sysrle;

  // Figure 1 of the paper, verbatim.
  const RleRow img1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
  const RleRow img2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};

  std::cout << "Row of Image 1 : " << img1 << '\n';
  std::cout << "Row of Image 2 : " << img2 << "\n\n";

  TraceRecorder trace;
  SystolicConfig cfg;
  cfg.capacity = 6;  // Figure 3 draws Cell0..Cell5
  cfg.trace = &trace;
  cfg.check_invariants = true;  // run the section-4 theorem checkers live
  const SystolicResult r = systolic_xor(img1, img2, cfg);

  std::cout << "Execution of the systolic algorithm (cf. Figure 3):\n\n";
  std::cout << trace.render() << '\n';

  std::cout << "Difference (XOR) : " << r.output << '\n';
  const CompactionResult compacted = compact_row(r.output);
  std::cout << "After compaction : " << compacted.row << "  ("
            << compacted.merges << " adjacent merges)\n\n";

  const DiffCostMeasurement pred = measure_costs(img1, img2);
  std::cout << "iterations taken        : " << r.counters.iterations << '\n';
  std::cout << "Theorem 1 bound (k1+k2) : " << pred.theorem1_bound() << '\n';
  std::cout << "Observation bound (k3+1): " << r.output.run_count() + 1
            << '\n';
  std::cout << "|k1 - k2|               : " << pred.run_count_difference()
            << '\n';
  return 0;
}
