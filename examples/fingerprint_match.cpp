// Fingerprint verification by compressed-domain differencing — the paper's
// fourth named application.  Two captures of the "same finger" (one with
// synthetic minutiae perturbations) are compared against a different finger;
// the decision statistic is the difference-pixel fraction computed row by
// row on the systolic machine.
//
//   $ ./fingerprint_match

#include <iostream>

#include "bitmap/convert.hpp"
#include "core/systolic_diff.hpp"
#include "workload/fingerprint.hpp"
#include "workload/metrics.hpp"

namespace {

using namespace sysrle;

struct MatchResult {
  double difference_fraction;
  cycle_t systolic_iterations;
};

MatchResult compare(const RleImage& a, const RleImage& b) {
  len_t differing = 0;
  cycle_t iterations = 0;
  for (pos_t y = 0; y < a.height(); ++y) {
    const SystolicResult r = systolic_xor(a.row(y), b.row(y));
    differing += r.output.foreground_pixels();
    iterations += r.counters.iterations;
  }
  const double area =
      static_cast<double>(a.width()) * static_cast<double>(a.height());
  return {static_cast<double>(differing) / area, iterations};
}

}  // namespace

int main() {
  Rng rng(31337);
  FingerprintParams params;
  params.width = 512;
  params.height = 512;

  // Enrolled print, a second capture of the same finger (extra minutiae from
  // pressure/skin condition), and a different finger entirely.
  const BitmapImage enrolled_bmp = generate_ridges(rng, params);
  BitmapImage second_capture_bmp = enrolled_bmp;
  const auto minutiae = add_minutiae(rng, second_capture_bmp, 10);
  const BitmapImage other_finger_bmp = generate_ridges(rng, params);

  const RleImage enrolled = bitmap_to_rle(enrolled_bmp);
  const RleImage second_capture = bitmap_to_rle(second_capture_bmp);
  const RleImage other_finger = bitmap_to_rle(other_finger_bmp);

  std::cout << "enrolled print: " << enrolled.stats().total_runs
            << " runs, density "
            << enrolled.stats().density << "\n";
  std::cout << "second capture: " << minutiae.size()
            << " synthetic minutiae applied\n\n";

  const MatchResult same = compare(enrolled, second_capture);
  const MatchResult diff = compare(enrolled, other_finger);

  std::cout << "same finger   : difference fraction "
            << same.difference_fraction << "  (systolic iterations "
            << same.systolic_iterations << ")\n";
  std::cout << "other finger  : difference fraction "
            << diff.difference_fraction << "  (systolic iterations "
            << diff.systolic_iterations << ")\n\n";

  const double threshold = 0.05;
  std::cout << "decision at threshold " << threshold << ":\n";
  std::cout << "  same finger  -> "
            << (same.difference_fraction < threshold ? "MATCH" : "NO MATCH")
            << '\n';
  std::cout << "  other finger -> "
            << (diff.difference_fraction < threshold ? "MATCH" : "NO MATCH")
            << '\n';
  std::cout << "\nnote the iteration asymmetry: similar prints diff in far\n"
               "fewer systolic iterations than dissimilar ones — the paper's\n"
               "similarity-adaptive running time, observed in the wild.\n";
  return 0;
}
