// Frame-differencing motion detection in the compressed domain (another of
// the paper's motivating applications).  Consecutive frames of a synthetic
// scene are XORed on the systolic machine; the difference blobs are the
// motion regions.
//
//   $ ./motion_detection [frames]

#include <cstdlib>
#include <iostream>

#include "core/image_diff.hpp"
#include "inspect/labeling.hpp"
#include "workload/metrics.hpp"
#include "workload/motion.hpp"

int main(int argc, char** argv) {
  using namespace sysrle;
  const std::size_t frames =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;

  Rng rng(7);
  MotionParams params;
  params.width = 640;
  params.height = 480;
  params.objects = 5;
  const auto sequence = generate_motion_sequence(rng, params, frames);
  std::cout << "scene: " << params.width << 'x' << params.height << ", "
            << params.objects << " moving objects, " << frames
            << " frames\n\n";

  ImageDiffOptions diff_options;
  diff_options.engine = DiffEngine::kSystolic;

  for (std::size_t f = 0; f + 1 < sequence.size(); ++f) {
    const RleImage& prev = sequence[f];
    const RleImage& next = sequence[f + 1];
    const ImageDiffResult diff = image_diff(prev, next, diff_options);
    const auto regions = label_components(diff.diff);
    const ImageSimilarity sim = measure_images(prev, next);

    std::cout << "frame " << f << " -> " << f + 1 << ": "
              << sim.error_pixels << " changed pixels in " << regions.size()
              << " motion region(s); systolic iterations total "
              << diff.counters.iterations << ", worst row "
              << diff.max_row_iterations << '\n';
    for (const Component& c : regions) {
      if (c.pixel_count < 8) continue;  // noise gate for the printout
      std::cout << "    region " << c.label << ": bbox (" << c.min_x << ','
                << c.min_y << ")-(" << c.max_x << ',' << c.max_y << "), "
                << c.pixel_count << " px\n";
    }
  }

  std::cout << "\nwhy compressed-domain diffing pays off here: consecutive\n"
               "frames are nearly identical, so per-row iterations track the\n"
               "run-count difference (often 0-2) instead of the total run\n"
               "count the sequential merge must always walk.\n";
  return 0;
}
