// Reference-based PCB inspection — the application the paper is motivated by
// (section 1, [2]).  Generates synthetic CAD artwork, fabricates a "scanned
// board" with injected manufacturing defects and a small scanner misalignment,
// then runs the full compressed-domain pipeline:
//
//   align -> systolic RLE difference -> run-based labeling -> classification
//
//   $ ./pcb_inspection [seed]

#include <cstdlib>
#include <iostream>

#include "bitmap/convert.hpp"
#include "bitmap/pbm_io.hpp"
#include "inspect/pipeline.hpp"
#include "inspect/report.hpp"
#include "inspect/scoring.hpp"
#include "workload/pcb.hpp"

int main(int argc, char** argv) {
  using namespace sysrle;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // 1. The reference: synthetic CAD artwork.
  PcbParams board_params;
  board_params.width = 2048;
  board_params.height = 512;
  const BitmapImage reference_bmp = generate_pcb_artwork(rng, board_params);
  std::cout << "reference artwork: " << board_params.width << 'x'
            << board_params.height << ", "
            << reference_bmp.popcount() << " copper pixels\n";

  // 2. The scan: the same board with fabrication defects and a 2-px camera
  //    offset.
  BitmapImage scan_bmp = reference_bmp;
  DefectParams defect_params;
  defect_params.count = 7;
  defect_params.min_size = 3;
  defect_params.max_size = 7;
  const auto injected = inject_pcb_defects(rng, scan_bmp, defect_params);
  std::cout << "injected defects (ground truth):\n";
  for (const InjectedDefect& d : injected)
    std::cout << "  - " << d.to_string() << '\n';

  const RleImage reference = bitmap_to_rle(reference_bmp);
  const RleImage scan = shift_image(bitmap_to_rle(scan_bmp), 2);

  // Persist both sides as PBM for external viewers.
  write_pbm_file("/tmp/sysrle_reference.pbm", reference_bmp);
  write_pbm_file("/tmp/sysrle_scan.pbm", rle_to_bitmap(scan));
  std::cout << "\nwrote /tmp/sysrle_reference.pbm and /tmp/sysrle_scan.pbm\n";

  // 3. Inspect, with the systolic engine doing the difference stage.  The
  //    border mask hides the columns the alignment shift clips at the image
  //    edges (they would otherwise read as full-height "defects").
  InspectionOptions options;
  options.engine = DiffEngine::kSystolic;
  options.alignment_radius = 4;
  options.min_defect_area = 4;
  options.border_mask = 6;
  options.denoise_open_radius = 0;
  const InspectionReport report = inspect(reference, scan, options);

  std::cout << '\n' << format_report(report);

  // 4. Score the detections against the injected ground truth.
  const DetectionScore score = score_detections(report.defects, injected);
  std::cout << "\ndetection score vs ground truth: " << score.to_string()
            << '\n';

  const RleImageStats stats = reference.stats();
  std::cout << "\ncompressed-domain statistics:\n";
  std::cout << "  reference runs          : " << stats.total_runs << '\n';
  std::cout << "  max runs per row (k)    : " << stats.max_runs_per_row
            << '\n';
  std::cout << "  systolic iterations, total over rows: "
            << report.diff_counters.iterations << '\n';
  std::cout << "  worst-row iterations (array latency) : "
            << report.diff_counters.to_string() << '\n';
  return report.pass ? 0 : 0;  // defects expected in this demo
}
