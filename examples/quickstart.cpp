// Quickstart: compute the difference of two RLE-encoded rows on the systolic
// machine and compare it with the sequential baseline.
//
//   $ ./quickstart
//
// Demonstrates the three core entry points: encode_bitstring (compression),
// systolic_xor (the paper's machine) and sequential_xor (the baseline).

#include <iostream>

#include "baseline/sequential_diff.hpp"
#include "core/systolic_diff.hpp"
#include "rle/encode.hpp"

int main() {
  using namespace sysrle;

  // Two scanlines of a binary image, as raw bitstrings ...
  const std::string row1 = "0011110000111100001111000011110000";
  const std::string row2 = "0011110000110000001111110011110000";

  // ... compressed once at the edge of the system.
  const RleRow a = encode_bitstring(row1);
  const RleRow b = encode_bitstring(row2);
  std::cout << "row 1 RLE: " << a << "  (" << a.run_count() << " runs)\n";
  std::cout << "row 2 RLE: " << b << "  (" << b.run_count() << " runs)\n\n";

  // The systolic machine computes the XOR without decompressing anything.
  const SystolicResult sys = systolic_xor(a, b);
  std::cout << "systolic difference : " << sys.output.canonical() << '\n';
  std::cout << "machine iterations  : " << sys.counters.iterations
            << "  (Theorem 1 bound: " << a.run_count() + b.run_count()
            << ")\n";
  std::cout << "machine activity    : " << sys.counters.to_string() << "\n\n";

  // The paper's sequential merge gives the same answer in Theta(k1+k2) time.
  const SequentialDiffResult seq = sequential_xor(a, b);
  std::cout << "sequential difference: " << seq.output.canonical() << '\n';
  std::cout << "sequential iterations: " << seq.iterations << '\n';

  // Decode to pixels, to see the difference as an image row.
  std::cout << "\nrow 1      : " << row1 << '\n';
  std::cout << "row 2      : " << row2 << '\n';
  std::cout << "difference : "
            << decode_bitstring(sys.output.canonical(),
                                static_cast<pos_t>(row1.size()))
            << '\n';
  return 0;
}
