#!/usr/bin/env python3
"""Replot the paper's Figure 5 from bench_fig5's CSV output.

Usage:
    build/bench/bench_fig5 > fig5.txt
    scripts/plot_fig5.py fig5.txt fig5.png

The bench prints a human table followed by a "CSV:" section; this script
parses the CSV block and renders the three series of the published figure:
systolic iterations, the run-count difference |k1-k2|, and the number of
runs in the XOR (the Observation upper bound).

Requires matplotlib (not shipped with the repo's C++ toolchain).
"""

import csv
import io
import sys


def extract_csv(text: str) -> str:
    marker = text.find("CSV:")
    if marker < 0:
        raise SystemExit("no CSV block found — pass bench_fig5's output")
    return text[marker + len("CSV:"):].strip()


def main() -> None:
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1], encoding="utf-8") as f:
        rows = list(csv.DictReader(io.StringIO(extract_csv(f.read()))))

    err = [float(r["err%"]) for r in rows]
    iters = [float(r["iterations"]) for r in rows]
    diff = [float(r["run-diff |k1-k2|"]) for r in rows]
    k3 = [float(r["runs-in-XOR"]) for r in rows]

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7, 4.5))
    ax.plot(err, iters, "o-", label="Number of iterations")
    ax.plot(err, diff, "s--", label="Difference in number of runs")
    ax.plot(err, k3, "^:", label="Number of runs in the XOR")
    ax.set_xlabel("Percent of pixels that are different between the two images")
    ax.set_ylabel("count")
    ax.set_title("Figure 5 (reproduced): iterations vs error percentage")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(sys.argv[2], dpi=150)
    print(f"wrote {sys.argv[2]}")


if __name__ == "__main__":
    main()
