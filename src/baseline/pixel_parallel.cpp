#include "baseline/pixel_parallel.hpp"

#include "bitmap/bit_ops.hpp"
#include "bitmap/convert.hpp"
#include "common/assert.hpp"

namespace sysrle {

PixelParallelCost pixel_parallel_cost(pos_t width) {
  SYSRLE_REQUIRE(width >= 0, "pixel_parallel_cost: negative width");
  PixelParallelCost cost;
  cost.processors = width;
  cost.decompress_steps = width;
  cost.xor_depth = 1;
  cost.recompress_steps = width;
  return cost;
}

PixelParallelResult pixel_parallel_xor(const RleRow& a, const RleRow& b,
                                       pos_t width) {
  SYSRLE_REQUIRE(a.fits_width(width), "pixel_parallel_xor: row a exceeds width");
  SYSRLE_REQUIRE(b.fits_width(width), "pixel_parallel_xor: row b exceeds width");
  PixelParallelResult result;
  const BitRow ba = rle_to_bitrow(a, width);
  const BitRow bb = rle_to_bitrow(b, width);
  result.output = bitrow_to_rle(xor_bitrows(ba, bb));
  result.cost = pixel_parallel_cost(width);
  return result;
}

}  // namespace sysrle
