#pragma once
// The uncompressed pixel-parallel alternative the paper's conclusion
// discusses: "a parallel solution ... can easily be performed on uncompressed
// data in constant time if the number of processors available is proportional
// to the number of pixels", at the cost of (a) b processors instead of 2k
// cells and (b) the RLE <-> bitmap conversions.  This module provides both an
// executable software version (word-parallel XOR) and the cost model used in
// the comparison benches.

#include <cstdint>

#include "rle/rle_row.hpp"

namespace sysrle {

/// Cost model of the pixel-parallel machine for one row of width b.
struct PixelParallelCost {
  std::int64_t processors = 0;      ///< b — one per pixel
  std::int64_t decompress_steps = 0;///< writing b pixels from the RLE inputs
  std::int64_t xor_depth = 1;       ///< the O(1) parallel XOR itself
  std::int64_t recompress_steps = 0;///< scanning b pixels back into RLE

  /// Total modelled time including the conversions the paper says this
  /// approach cannot avoid.
  std::int64_t total_steps() const {
    return decompress_steps + xor_depth + recompress_steps;
  }
};

/// Builds the cost model for a row of the given width.  Decompression can be
/// done in O(1) parallel time given b processors, but only after a broadcast
/// of the run list; we model the conventional sequential-scan conversion the
/// paper's software pipeline would use (b steps each way).
PixelParallelCost pixel_parallel_cost(pos_t width);

/// Result of the executable pixel-parallel diff.
struct PixelParallelResult {
  RleRow output;            ///< canonical XOR row
  PixelParallelCost cost;   ///< modelled cost for this width
};

/// Computes the XOR by decompressing both rows to packed bitmaps, XORing
/// word-parallel, and re-encoding — the exact pipeline the paper's
/// compressed-domain machine exists to avoid.
PixelParallelResult pixel_parallel_xor(const RleRow& a, const RleRow& b,
                                       pos_t width);

}  // namespace sysrle
