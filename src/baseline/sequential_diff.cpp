#include "baseline/sequential_diff.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"

namespace sysrle {

SequentialDiffResult sequential_xor(const RleRow& a, const RleRow& b) {
  SequentialDiffResult result;

  // Cursor over one input: the index of the next whole run plus the
  // still-unconsumed part of the current top run.
  struct Cursor {
    const RleRow* row;
    std::size_t next = 0;
    std::optional<Run> top;

    void refill() {
      if (!top && next < row->run_count()) {
        top = (*row)[next];
        ++next;
      }
    }
    bool exhausted() const { return !top; }
  };

  Cursor ca{&a, 0, std::nullopt}, cb{&b, 0, std::nullopt};
  ca.refill();
  cb.refill();

  auto emit = [&result](pos_t s, pos_t e) {
    result.output.push_back(Run::from_bounds(s, e));
  };

  while (!ca.exhausted() || !cb.exhausted()) {
    ++result.iterations;

    if (ca.exhausted() || cb.exhausted()) {
      // One array drained: the other's top run passes through unchanged.
      Cursor& c = ca.exhausted() ? cb : ca;
      emit(c.top->start, c.top->end());
      c.top.reset();
      c.refill();
      continue;
    }

    Run& ra = *ca.top;
    Run& rb = *cb.top;
    // Order so `lo` is the lexicographically smaller top run.
    const bool a_first = ra.start < rb.start ||
                         (ra.start == rb.start && ra.end() <= rb.end());
    Run& lo = a_first ? ra : rb;
    Run& hi = a_first ? rb : ra;
    Cursor& clo = a_first ? ca : cb;

    if (lo.start < hi.start) {
      // The XOR's leftmost piece is lo's prefix up to hi's start (or all of
      // lo when they are disjoint).  Emit it and leave the remainder.
      const pos_t piece_end = std::min(lo.end(), hi.start - 1);
      emit(lo.start, piece_end);
      if (piece_end == lo.end()) {
        clo.top.reset();
        clo.refill();
      } else {
        lo = Run::from_bounds(piece_end + 1, lo.end());
      }
    } else {
      // Equal starts: the common prefix cancels (XOR produces background).
      const pos_t common_end = std::min(lo.end(), hi.end());
      auto shrink = [&](Cursor& c) {
        if (common_end == c.top->end()) {
          c.top.reset();
          c.refill();
        } else {
          c.top = Run::from_bounds(common_end + 1, c.top->end());
        }
      };
      shrink(ca);
      shrink(cb);
    }
  }
  return result;
}

}  // namespace sysrle
