#pragma once
// The paper's sequential comparator (section 2): a single simultaneous pass
// over the two run arrays that merges them into the output, one output piece
// per loop iteration.  Its iteration count — Θ(k1 + k2) in the best, worst
// and average case — is the number Table 1 reports against the systolic
// machine, so the implementation counts iterations exactly as described:
// "for each iteration we determine the XOR of the top run of both
// bitstrings, take the smaller of the resulting runs, and leave the
// remainder in the array it came from."

#include <cstdint>

#include "rle/rle_row.hpp"

namespace sysrle {

/// Result of the sequential merge diff.
struct SequentialDiffResult {
  RleRow output;              ///< the XOR, ordered and non-overlapping
  std::uint64_t iterations = 0;  ///< merge-loop iterations (the paper's cost)
};

/// Computes the XOR of two RLE rows with the paper's sequential merge.
/// The output may contain adjacent runs (exactly like the systolic machine);
/// pass it through RleRow::canonicalize for the fully compressed form.
SequentialDiffResult sequential_xor(const RleRow& a, const RleRow& b);

}  // namespace sysrle
