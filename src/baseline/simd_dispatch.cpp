#include "baseline/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "common/assert.hpp"

namespace sysrle {

namespace {

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kIsX86 = true;
#else
constexpr bool kIsX86 = false;
#endif

#if defined(__aarch64__)
constexpr bool kIsAarch64 = true;
#else
constexpr bool kIsAarch64 = false;
#endif

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Resolves the startup level: SYSRLE_SIMD wins when set (and must name a
/// supported level — a typo must not silently fall back to a different
/// engine than the operator asked for); otherwise the widest level wins.
SimdLevel resolve_startup_level() {
  const char* env = std::getenv("SYSRLE_SIMD");
  if (env != nullptr && *env != '\0') {
    const SimdLevel level = parse_simd_level(env);
    SYSRLE_REQUIRE(simd_level_supported(level),
                   std::string("SYSRLE_SIMD=") + env +
                       ": level not supported on this host/build");
    return level;
  }
  return detect_best_simd_level();
}

std::atomic<SimdLevel>& active_level_storage() {
  // The throwing initializer runs again on the next call if SYSRLE_SIMD is
  // invalid, so every diff surfaces the same one-line diagnostic.
  static std::atomic<SimdLevel> level{resolve_startup_level()};
  return level;
}

}  // namespace

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSwar64:
      return "swar64";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel parse_simd_level(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "swar64") return SimdLevel::kSwar64;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "neon") return SimdLevel::kNeon;
  SYSRLE_REQUIRE(false, "unknown SIMD level '" + name +
                            "' (scalar|swar64|avx2|neon)");
  return SimdLevel::kScalar;  // unreachable
}

bool simd_level_compiled(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
    case SimdLevel::kSwar64:
      return true;
    case SimdLevel::kAvx2:
#if defined(SYSRLE_AVX2_COMPILED)
      return true;
#else
      return false;
#endif
    case SimdLevel::kNeon:
      return kIsAarch64;
  }
  return false;
}

bool simd_level_supported(SimdLevel level) {
  if (!simd_level_compiled(level)) return false;
  if (level == SimdLevel::kAvx2) return kIsX86 && cpu_has_avx2();
  return true;
}

std::vector<SimdLevel> supported_simd_levels() {
  std::vector<SimdLevel> out;
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSwar64,
                                SimdLevel::kAvx2, SimdLevel::kNeon})
    if (simd_level_supported(level)) out.push_back(level);
  return out;
}

SimdLevel detect_best_simd_level() {
  if (simd_level_supported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (simd_level_supported(SimdLevel::kNeon)) return SimdLevel::kNeon;
  return SimdLevel::kSwar64;
}

SimdLevel active_simd_level() {
  return active_level_storage().load(std::memory_order_relaxed);
}

void set_simd_level(SimdLevel level) {
  SYSRLE_REQUIRE(simd_level_supported(level),
                 std::string("SIMD level '") + to_string(level) +
                     "' not supported on this host/build");
  active_level_storage().store(level, std::memory_order_relaxed);
}

}  // namespace sysrle
