#pragma once
// Runtime SIMD dispatch for the word-parallel sequential engine.
//
// The sequential side of the system (adaptive routing, checked-diff
// recovery, dissimilar-image pairs) runs on whatever the host offers: a
// plain 64-bit SWAR loop everywhere, AVX2 where the binary was compiled
// with the kernel and the CPU reports the feature, and — on AArch64 — a
// NEON level that currently delegates to the SWAR loop (stub; the 64-bit
// path is already word-parallel there).  The level is resolved once at
// startup from the SYSRLE_SIMD environment variable (or the CLI's --simd
// flag) and read with a single relaxed atomic load afterwards, so the hot
// path pays nothing for the flexibility.
//
// Every level is bit-identical by contract: the differential suite in
// tests/test_word_diff.cpp pins each compiled level against the scalar
// merge oracle, and the CI build matrix compiles the shim both with and
// without the AVX2 kernel so a lane-width bug cannot hide behind the
// build host's ISA.

#include <string>
#include <vector>

namespace sysrle {

/// A dispatch level of the sequential diff engine, from portable to widest.
enum class SimdLevel {
  kScalar,  ///< the paper's run-merge loop (sequential_xor) — the oracle
  kSwar64,  ///< packed 64-bit rows, one machine word per step
  kAvx2,    ///< packed rows XORed 256 bits per step (x86, compiled + CPUID)
  kNeon,    ///< AArch64 stub: resolves to the SWAR loop (128-bit TODO)
};

/// Stable lowercase name ("scalar" | "swar64" | "avx2" | "neon").
const char* to_string(SimdLevel level);

/// Parses a level name; throws contract_error on anything else.
SimdLevel parse_simd_level(const std::string& name);

/// True when the level's kernel is compiled into this binary.
bool simd_level_compiled(SimdLevel level);

/// True when the level is compiled AND the running CPU supports it.
bool simd_level_supported(SimdLevel level);

/// All levels supported on this host, portable-first.
std::vector<SimdLevel> supported_simd_levels();

/// The widest supported level — the startup default when SYSRLE_SIMD is
/// not set.
SimdLevel detect_best_simd_level();

/// The level the sequential engine currently dispatches to.  First call
/// resolves SYSRLE_SIMD (unknown or unsupported values throw
/// contract_error with a one-line diagnostic); later calls are one relaxed
/// atomic load.
SimdLevel active_simd_level();

/// Overrides the active level (CLI --simd, tests).  Throws contract_error
/// when the level is not supported on this host.
void set_simd_level(SimdLevel level);

}  // namespace sysrle
