#include "baseline/word_diff.hpp"

#include <algorithm>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

/// XORs a row's boundary toggles into the buffer: one bit at each run's
/// start and one just past its end.  Branchless per run; consecutive
/// toggles that land in the same word are batched in a register so
/// fragmented rows (many runs per word) do not serialize on
/// store-to-load forwarding.
void toggle_row(const RleRow& row, pos_t base, std::uint64_t* words) {
  std::size_t cur = 0;        // word index the accumulator belongs to
  std::uint64_t acc = 0;      // pending toggles for words[cur]
  for (const Run& r : row) {
    // Unsigned bit arithmetic: positions are non-negative by contract, and
    // the cast lets >> 6 / & 63 compile to plain shifts (signed division
    // needs a rounding correction the optimizer cannot elide).
    const auto s = static_cast<std::uint64_t>(r.start - base);
    const auto e1 = static_cast<std::uint64_t>(r.end() + 1 - base);
    const std::size_t ws = s >> 6;
    const std::size_t we = e1 >> 6;
    if (ws != cur) {
      words[cur] ^= acc;
      acc = 0;
      cur = ws;
    }
    acc ^= std::uint64_t{1} << (s & 63);
    if (we != cur) {
      words[cur] ^= acc;
      acc = 0;
      cur = we;
    }
    acc ^= std::uint64_t{1} << (e1 & 63);
  }
  words[cur] ^= acc;
}

/// The oracle plus canonicalize: the engine's output contract is canonical
/// at every level, and the bit domain the word path diffs in has no notion
/// of adjacent runs, so the scalar level must compress to match.
SequentialDiffResult scalar_canonical_xor(const RleRow& a, const RleRow& b) {
  SequentialDiffResult r = sequential_xor(a, b);
  r.output.canonicalize();
  return r;
}

}  // namespace

namespace detail {

void prefix_fill_swar(std::uint64_t* words, std::size_t n) {
  std::uint64_t carry = 0;  // 0 or ~0: fill state entering the word
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = words[i];
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x ^= carry;
    carry = std::uint64_t{0} - (x >> 63);
    words[i] = x;
  }
}

}  // namespace detail

SequentialDiffResult word_parallel_xor(const RleRow& a, const RleRow& b,
                                       WordDiffScratch& scratch,
                                       SimdLevel level) {
  SYSRLE_REQUIRE(level != SimdLevel::kScalar,
                 "word_parallel_xor: kScalar is not a word level");
  SYSRLE_REQUIRE(!a.empty() && !b.empty(),
                 "word_parallel_xor: rows must be non-empty");

  // Cover only the joint word-aligned extent, so a small diff near the end
  // of a wide row does not pay for the empty prefix.  One extra word holds
  // the end-toggle of a run finishing exactly at the extent's last bit.
  const pos_t lo = std::min(a.first_pixel(), b.first_pixel());
  const pos_t hi = std::max(a.last_pixel(), b.last_pixel());
  const pos_t base = (lo / 64) * 64;
  const std::size_t word_count =
      static_cast<std::size_t>(hi / 64 - lo / 64) + 1;

  scratch.words.assign(word_count + 1, 0);
  toggle_row(a, base, scratch.words.data());
  toggle_row(b, base, scratch.words.data());

  switch (level) {
#if defined(SYSRLE_AVX2_COMPILED)
    case SimdLevel::kAvx2:
      detail::prefix_fill_avx2(scratch.words.data(), word_count + 1);
      break;
#endif
    default:
      // kSwar64 and the NEON stub share the plain 64-bit loop.
      detail::prefix_fill_swar(scratch.words.data(), word_count + 1);
      break;
  }

  SequentialDiffResult result;
  result.iterations = word_count;
  append_word_runs(scratch.words.data(), word_count + 1, base, result.output);
  return result;
}

SequentialDiffResult sequential_engine_xor(const RleRow& a, const RleRow& b) {
  const SimdLevel level = active_simd_level();

  // An empty side makes the diff a copy of the other row — the scalar merge
  // already does that in k iterations; packing would only add work.
  if (level == SimdLevel::kScalar || a.empty() || b.empty()) {
    if (telemetry_enabled()) global_metrics().add("engine.dispatch.rows_scalar");
    return scalar_canonical_xor(a, b);
  }

  // Run-density guard: the word path pays O(extent/64) words plus two
  // toggles per run, and only wins where run boundaries are dense enough
  // that the merge's branchy Θ(k1+k2) walk mispredicts its way to a loss.
  // Sparse or smooth rows — few runs per extent word — route to the merge,
  // which also keeps ultra-sparse ultra-wide rows within the scalar bound.
  const pos_t lo = std::min(a.first_pixel(), b.first_pixel());
  const pos_t hi = std::max(a.last_pixel(), b.last_pixel());
  const std::uint64_t words = static_cast<std::uint64_t>(hi / 64 - lo / 64) + 1;
  const std::uint64_t k = a.run_count() + b.run_count();
  if (k < kMinRunsPerWord * words) {
    if (telemetry_enabled()) {
      MetricsRegistry& m = global_metrics();
      m.add("engine.dispatch.rows_scalar");
      m.add("engine.dispatch.sparse_fallbacks");
    }
    return scalar_canonical_xor(a, b);
  }

  if (telemetry_enabled()) global_metrics().add("engine.dispatch.rows_word");
  thread_local WordDiffScratch scratch;
  return word_parallel_xor(a, b, scratch, level);
}

}  // namespace sysrle
