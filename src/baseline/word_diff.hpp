#pragma once
// Word-parallel sequential diff engine (ROADMAP open item 2, first half).
//
// The scalar merge in sequential_diff.hpp walks runs one boundary at a time
// — Θ(k1 + k2) data-dependent branches.  This engine works in the packed
// bit domain instead, following Breuel's packed-binary technique
// (arXiv:0712.0121):
//
//   1. *Toggle*: each run contributes two branchless XORs — a toggle bit at
//      its start and one past its end — into a single word buffer covering
//      the rows' joint extent.  Both rows toggle the same buffer, which IS
//      the word-wise XOR of the two packed rows (XOR composes).
//   2. *Prefix fill*: a carry-propagating prefix-XOR pass turns the toggle
//      bits into filled pixels (bit j = parity of toggles at positions
//      <= j).  This is the SIMD-dispatched kernel: a SWAR64 loop, or four
//      lanes per step with cross-lane carry resolution on AVX2.
//   3. *Extract*: runs come back out with the transition-mask scan in
//      bitmap/convert.hpp (countr_zero + clear-lowest-bit per run).
//
// Contract: the output is bit-identical to the scalar oracle at every
// dispatch level, and — unlike raw sequential_xor — always canonical (the
// bit domain has no notion of adjacent runs, and the scalar path
// canonicalizes to match).  tests/test_word_diff.cpp pins this across all
// levels compiled into the binary.
//
// Dispatch guard: the packed pass wins when run boundaries are dense per
// word — fragmented rows are exactly where the scalar merge drowns in
// mispredicted branches — and loses when runs are few and far apart, where
// the merge's Θ(k1 + k2) is small and packing the extent is pure overhead.
// sequential_engine_xor routes to the word path only when
// k1 + k2 >= kMinRunsPerWord * extent_words, which also caps its cost at a
// constant factor of min(O(k1+k2), O(width/64)) for every input.

#include <cstdint>
#include <vector>

#include "baseline/sequential_diff.hpp"
#include "baseline/simd_dispatch.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Reusable toggle/fill buffer so per-row diffs do not allocate.  One
/// scratch per thread; sequential_engine_xor keeps its own thread_local
/// instance.
struct WordDiffScratch {
  std::vector<std::uint64_t> words;
};

/// Minimum run-boundary density (runs per 64-bit extent word) for the word
/// path to beat the scalar merge, measured on this repo's fragmented-row
/// sweep (bench_scaling --dispatch-json).  Below it the engine routes to
/// the scalar merge.
inline constexpr std::uint64_t kMinRunsPerWord = 6;

/// Diffs both rows in the packed bit domain at the given dispatch level
/// (toggle + prefix fill + extract).  `iterations` counts the 64-bit words
/// of the joint extent (the packed analogue of the scalar merge's loop
/// count).  Precondition: level is a word level (not kScalar) and both
/// rows are non-empty.  Output is canonical.
SequentialDiffResult word_parallel_xor(const RleRow& a, const RleRow& b,
                                       WordDiffScratch& scratch,
                                       SimdLevel level);

/// Production entry point for every sequential call site: dispatches on
/// active_simd_level(), applies the run-density guard, and always returns
/// canonical output (the scalar level canonicalizes the oracle's result so
/// all levels agree bit-for-bit).  `iterations` is words scanned on the
/// word path or merge iterations on the scalar path.
SequentialDiffResult sequential_engine_xor(const RleRow& a, const RleRow& b);

namespace detail {
/// In-place prefix-XOR fill: turns boundary-toggle words into filled-pixel
/// words (bit j of the result = parity of toggle bits at positions <= j
/// across the whole buffer).  Plain SWAR loop with a scalar carry.
void prefix_fill_swar(std::uint64_t* words, std::size_t n);

#if defined(SYSRLE_AVX2_COMPILED)
/// Same contract, four words per step with cross-lane carry resolution;
/// only in AVX2-enabled builds.
void prefix_fill_avx2(std::uint64_t* words, std::size_t n);
#endif
}  // namespace detail

}  // namespace sysrle
