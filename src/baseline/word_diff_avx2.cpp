// AVX2 prefix-fill kernel for the word-parallel sequential engine.  This TU
// is the only one compiled with -mavx2 (see src/baseline/CMakeLists.txt), so
// the wider instructions cannot leak into code that runs before the runtime
// CPU check in simd_dispatch.cpp.
#include "baseline/word_diff.hpp"

#if defined(SYSRLE_AVX2_COMPILED)

#include <immintrin.h>

namespace sysrle::detail {

void prefix_fill_avx2(std::uint64_t* words, std::size_t n) {
  // Prefix-XOR is carry-ripple by nature, but the expensive part — the six
  // shift-xor steps that spread each toggle bit left within its word — has
  // no cross-word dependency, so four lanes run them together.  Only the
  // carry resolution is serial, and that collapses to four scalar XOR/NEG
  // ops on the lane parities: lane j's carry-in is the carry into the block
  // XOR the combined parity of lanes 0..j-1, each parity being the lane's
  // bit 63 after the in-lane fill (movmskpd reads exactly those four bits).
  std::uint64_t carry = 0;  // 0 or ~0: fill state entering the next word
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 1));
    x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 2));
    x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 4));
    x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 8));
    x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 16));
    x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 32));
    const auto par =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(x)));
    const std::uint64_t c0 = carry;
    const std::uint64_t c1 = c0 ^ (std::uint64_t{0} - ((par >> 0) & 1u));
    const std::uint64_t c2 = c1 ^ (std::uint64_t{0} - ((par >> 1) & 1u));
    const std::uint64_t c3 = c2 ^ (std::uint64_t{0} - ((par >> 2) & 1u));
    carry = c3 ^ (std::uint64_t{0} - ((par >> 3) & 1u));
    x = _mm256_xor_si256(
        x, _mm256_set_epi64x(static_cast<long long>(c3),
                             static_cast<long long>(c2),
                             static_cast<long long>(c1),
                             static_cast<long long>(c0)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + i), x);
  }
  for (; i < n; ++i) {
    std::uint64_t x = words[i];
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x ^= carry;
    carry = std::uint64_t{0} - (x >> 63);
    words[i] = x;
  }
}

}  // namespace sysrle::detail

#endif  // SYSRLE_AVX2_COMPILED
