#include "bitmap/bit_ops.hpp"

#include <bit>

#include "common/assert.hpp"

namespace sysrle {

namespace {
template <typename WordOp>
BitRow zip_words(const BitRow& a, const BitRow& b, WordOp op) {
  SYSRLE_REQUIRE(a.width() == b.width(), "bit_ops: width mismatch");
  BitRow out(a.width());
  auto& w = out.mutable_words();
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = op(a.words()[i], b.words()[i]);
  out.mask_tail();
  return out;
}
}  // namespace

BitRow xor_bitrows(const BitRow& a, const BitRow& b) {
  return zip_words(a, b, [](std::uint64_t x, std::uint64_t y) { return x ^ y; });
}

BitRow and_bitrows(const BitRow& a, const BitRow& b) {
  return zip_words(a, b, [](std::uint64_t x, std::uint64_t y) { return x & y; });
}

BitRow or_bitrows(const BitRow& a, const BitRow& b) {
  return zip_words(a, b, [](std::uint64_t x, std::uint64_t y) { return x | y; });
}

BitRow not_bitrow(const BitRow& a) {
  BitRow out(a.width());
  auto& w = out.mutable_words();
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = ~a.words()[i];
  out.mask_tail();
  return out;
}

len_t bit_hamming(const BitRow& a, const BitRow& b) {
  SYSRLE_REQUIRE(a.width() == b.width(), "bit_hamming: width mismatch");
  len_t total = 0;
  for (std::size_t i = 0; i < a.word_count(); ++i)
    total += std::popcount(a.words()[i] ^ b.words()[i]);
  return total;
}

BitmapImage xor_images(const BitmapImage& a, const BitmapImage& b) {
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "xor_images: dimension mismatch");
  BitmapImage out(a.width(), a.height());
  for (pos_t y = 0; y < a.height(); ++y)
    out.mutable_row(y) = xor_bitrows(a.row(y), b.row(y));
  return out;
}

len_t image_hamming(const BitmapImage& a, const BitmapImage& b) {
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "image_hamming: dimension mismatch");
  len_t total = 0;
  for (pos_t y = 0; y < a.height(); ++y) total += bit_hamming(a.row(y), b.row(y));
  return total;
}

}  // namespace sysrle
