#pragma once
// Word-parallel operations on packed bit rows and images.  These model the
// "pixel-parallel on uncompressed data" alternative the paper's conclusion
// discusses, and serve as the independent ground truth the compressed-domain
// engines are tested against.

#include "bitmap/bitmap_image.hpp"
#include "bitmap/bitrow.hpp"

namespace sysrle {

/// Word-parallel XOR of two equal-width rows.
BitRow xor_bitrows(const BitRow& a, const BitRow& b);

/// Word-parallel AND of two equal-width rows.
BitRow and_bitrows(const BitRow& a, const BitRow& b);

/// Word-parallel OR of two equal-width rows.
BitRow or_bitrows(const BitRow& a, const BitRow& b);

/// Complement of a row (within its width).
BitRow not_bitrow(const BitRow& a);

/// Number of differing pixels (popcount of XOR) without materialising it.
len_t bit_hamming(const BitRow& a, const BitRow& b);

/// Whole-image XOR; dimensions must match.
BitmapImage xor_images(const BitmapImage& a, const BitmapImage& b);

/// Whole-image differing-pixel count; dimensions must match.
len_t image_hamming(const BitmapImage& a, const BitmapImage& b);

}  // namespace sysrle
