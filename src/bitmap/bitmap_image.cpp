#include "bitmap/bitmap_image.hpp"

#include "common/assert.hpp"

namespace sysrle {

BitmapImage::BitmapImage(pos_t width, pos_t height) : width_(width) {
  SYSRLE_REQUIRE(width >= 0 && height >= 0, "BitmapImage: negative dimensions");
  rows_.assign(static_cast<std::size_t>(height), BitRow(width));
}

bool BitmapImage::get(pos_t x, pos_t y) const { return row(y).get(x); }

void BitmapImage::set(pos_t x, pos_t y, bool value) {
  mutable_row(y).set(x, value);
}

const BitRow& BitmapImage::row(pos_t y) const {
  SYSRLE_REQUIRE(y >= 0 && y < height(), "BitmapImage::row: out of range");
  return rows_[static_cast<std::size_t>(y)];
}

BitRow& BitmapImage::mutable_row(pos_t y) {
  SYSRLE_REQUIRE(y >= 0 && y < height(), "BitmapImage::mutable_row: out of range");
  return rows_[static_cast<std::size_t>(y)];
}

void BitmapImage::fill_rect(pos_t x, pos_t y, pos_t w, pos_t h, bool value) {
  SYSRLE_REQUIRE(w >= 0 && h >= 0, "BitmapImage::fill_rect: negative extent");
  if (w == 0 || h == 0) return;
  SYSRLE_REQUIRE(x >= 0 && y >= 0 && x + w <= width_ && y + h <= height(),
                 "BitmapImage::fill_rect: rectangle outside image");
  for (pos_t yy = y; yy < y + h; ++yy)
    rows_[static_cast<std::size_t>(yy)].fill(x, w, value);
}

len_t BitmapImage::popcount() const {
  len_t total = 0;
  for (const BitRow& r : rows_) total += r.popcount();
  return total;
}

std::string BitmapImage::to_string() const {
  std::string s;
  for (pos_t y = 0; y < height(); ++y) {
    s += rows_[static_cast<std::size_t>(y)].to_string();
    if (y + 1 < height()) s += '\n';
  }
  return s;
}

}  // namespace sysrle
