#pragma once
// A 2-D uncompressed binary image built from packed BitRows.

#include <string>
#include <vector>

#include "bitmap/bitrow.hpp"

namespace sysrle {

/// Row-major binary image with 64-bit-packed rows.
class BitmapImage {
 public:
  /// All-background image.
  BitmapImage(pos_t width, pos_t height);

  pos_t width() const { return width_; }
  pos_t height() const { return static_cast<pos_t>(rows_.size()); }

  bool get(pos_t x, pos_t y) const;
  void set(pos_t x, pos_t y, bool value);

  const BitRow& row(pos_t y) const;
  BitRow& mutable_row(pos_t y);

  /// Fills the axis-aligned rectangle [x, x+w) x [y, y+h).
  /// The rectangle must lie inside the image.
  void fill_rect(pos_t x, pos_t y, pos_t w, pos_t h, bool value);

  /// Total number of foreground pixels.
  len_t popcount() const;

  friend bool operator==(const BitmapImage&, const BitmapImage&) = default;

  /// Multi-line "0110..." rendering (tests/debugging only; O(w*h)).
  std::string to_string() const;

 private:
  pos_t width_;
  std::vector<BitRow> rows_;
};

}  // namespace sysrle
