#include "bitmap/bitrow.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"

namespace sysrle {

namespace {
constexpr pos_t kBits = 64;
}

BitRow::BitRow(pos_t width) : width_(width) {
  SYSRLE_REQUIRE(width >= 0, "BitRow: negative width");
  words_.assign(static_cast<std::size_t>((width + kBits - 1) / kBits), 0);
}

void BitRow::check_index(pos_t i) const {
  SYSRLE_REQUIRE(i >= 0 && i < width_, "BitRow: index out of range");
}

bool BitRow::get(pos_t i) const {
  check_index(i);
  return (words_[static_cast<std::size_t>(i / kBits)] >>
          static_cast<unsigned>(i % kBits)) & 1u;
}

void BitRow::set(pos_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = std::uint64_t{1} << static_cast<unsigned>(i % kBits);
  auto& w = words_[static_cast<std::size_t>(i / kBits)];
  if (value) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

void BitRow::flip(pos_t i) {
  check_index(i);
  words_[static_cast<std::size_t>(i / kBits)] ^=
      std::uint64_t{1} << static_cast<unsigned>(i % kBits);
}

void BitRow::fill(pos_t start, len_t length, bool value) {
  SYSRLE_REQUIRE(length >= 0, "BitRow::fill: negative length");
  if (length == 0) return;
  check_index(start);
  check_index(start + length - 1);
  // Process word by word with masks rather than bit by bit.
  pos_t i = start;
  const pos_t end = start + length;  // exclusive
  while (i < end) {
    const std::size_t wi = static_cast<std::size_t>(i / kBits);
    const pos_t word_base = static_cast<pos_t>(wi) * kBits;
    const unsigned lo = static_cast<unsigned>(i - word_base);
    const pos_t span_end = std::min(end, word_base + kBits);
    const unsigned n = static_cast<unsigned>(span_end - i);
    const std::uint64_t mask =
        (n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1)) << lo;
    if (value) {
      words_[wi] |= mask;
    } else {
      words_[wi] &= ~mask;
    }
    i = span_end;
  }
}

void BitRow::flip_range(pos_t start, len_t length) {
  SYSRLE_REQUIRE(length >= 0, "BitRow::flip_range: negative length");
  if (length == 0) return;
  check_index(start);
  check_index(start + length - 1);
  pos_t i = start;
  const pos_t end = start + length;
  while (i < end) {
    const std::size_t wi = static_cast<std::size_t>(i / kBits);
    const pos_t word_base = static_cast<pos_t>(wi) * kBits;
    const unsigned lo = static_cast<unsigned>(i - word_base);
    const pos_t span_end = std::min(end, word_base + kBits);
    const unsigned n = static_cast<unsigned>(span_end - i);
    const std::uint64_t mask =
        (n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1)) << lo;
    words_[wi] ^= mask;
    i = span_end;
  }
}

len_t BitRow::popcount() const {
  len_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

void BitRow::mask_tail() {
  if (words_.empty()) return;
  const unsigned used = static_cast<unsigned>(width_ % kBits);
  if (used != 0)
    words_.back() &= (std::uint64_t{1} << used) - 1;
}

std::string BitRow::to_string() const {
  std::string s(static_cast<std::size_t>(width_), '0');
  for (pos_t i = 0; i < width_; ++i)
    if (get(i)) s[static_cast<std::size_t>(i)] = '1';
  return s;
}

BitRow BitRow::from_string(const std::string& bits) {
  BitRow row(static_cast<pos_t>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    SYSRLE_REQUIRE(bits[i] == '0' || bits[i] == '1',
                   "BitRow::from_string: invalid character");
    if (bits[i] == '1') row.set(static_cast<pos_t>(i), true);
  }
  return row;
}

}  // namespace sysrle
