#pragma once
// A packed row of binary pixels, 64 per machine word.  This is the
// uncompressed representation the paper's introduction contrasts with RLE:
// word-parallel operations on it serve as both ground truth for tests and the
// "pixel-parallel" comparator discussed in the paper's conclusions.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sysrle {

/// Fixed-width packed bit row.  Bits beyond `width` inside the last word are
/// kept zero at all times (enforced by every mutator), so whole-word
/// operations never need end-of-row masking.
class BitRow {
 public:
  BitRow() = default;

  /// All-zero row of the given width.
  explicit BitRow(pos_t width);

  pos_t width() const { return width_; }

  bool get(pos_t i) const;
  void set(pos_t i, bool value);

  /// Flips bit i (the workload generator's "error" primitive).
  void flip(pos_t i);

  /// Sets [start, start+length) to `value`; the range must lie in the row.
  void fill(pos_t start, len_t length, bool value);

  /// Flips every bit in [start, start+length).
  void flip_range(pos_t start, len_t length);

  /// Number of set bits.
  len_t popcount() const;

  /// Word-level access for the word-parallel operators in bit_ops.
  std::size_t word_count() const { return words_.size(); }
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& mutable_words() { return words_; }

  /// Clears any stray bits at positions >= width in the last word.
  /// Called by bit_ops after raw word manipulation; idempotent.
  void mask_tail();

  friend bool operator==(const BitRow&, const BitRow&) = default;

  /// "0110..." rendering for tests and debugging.
  std::string to_string() const;

  /// Parses a "0110..." string.
  static BitRow from_string(const std::string& bits);

 private:
  void check_index(pos_t i) const;

  pos_t width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sysrle
