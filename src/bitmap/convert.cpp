#include "bitmap/convert.hpp"

#include <bit>

#include "common/assert.hpp"

namespace sysrle {

RleRow bitrow_to_rle(const BitRow& row) {
  RleRow out;
  // Scan word by word, extracting maximal 1-blocks with bit tricks rather
  // than per-pixel loops: countr_zero finds the next set bit, countr_one the
  // block length.
  const auto& words = row.words();
  const pos_t width = row.width();
  pos_t open_start = -1;  // start of a run that may continue across words
  pos_t pos = 0;
  for (std::size_t wi = 0; wi < words.size(); ++wi, pos += 64) {
    std::uint64_t w = words[wi];
    pos_t bit = 0;
    while (bit < 64) {
      if (open_start >= 0) {
        // Continue the open run: count ones from this bit upward.
        const std::uint64_t shifted = w >> static_cast<unsigned>(bit);
        const int ones = std::countr_one(shifted);
        bit += ones;
        if (bit < 64 || ones < 64) {
          if (pos + bit <= width) {
            out.push_back(Run::from_bounds(open_start, pos + bit - 1));
          }
          open_start = -1;
        }
        if (ones == 0) ++bit;  // defensive: cannot happen (open implies a 1)
      } else {
        const std::uint64_t shifted = w >> static_cast<unsigned>(bit);
        if (shifted == 0) break;
        const int zeros = std::countr_zero(shifted);
        bit += zeros;
        open_start = pos + bit;
        const int ones = std::countr_one(w >> static_cast<unsigned>(bit));
        bit += ones;
        if (bit < 64) {
          out.push_back(Run::from_bounds(open_start, pos + bit - 1));
          open_start = -1;
        }
        // else: run may continue into the next word; leave it open.
      }
    }
  }
  if (open_start >= 0) out.push_back(Run::from_bounds(open_start, width - 1));
  return out;
}

BitRow rle_to_bitrow(const RleRow& row, pos_t width) {
  SYSRLE_REQUIRE(row.fits_width(width), "rle_to_bitrow: row exceeds width");
  BitRow out(width);
  for (const Run& r : row) out.fill(r.start, r.length, true);
  return out;
}

RleImage bitmap_to_rle(const BitmapImage& img) {
  std::vector<RleRow> rows;
  rows.reserve(static_cast<std::size_t>(img.height()));
  for (pos_t y = 0; y < img.height(); ++y) rows.push_back(bitrow_to_rle(img.row(y)));
  return RleImage(img.width(), std::move(rows));
}

BitmapImage rle_to_bitmap(const RleImage& img) {
  BitmapImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y)
    out.mutable_row(y) = rle_to_bitrow(img.row(y), img.width());
  return out;
}

}  // namespace sysrle
