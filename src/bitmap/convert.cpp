#include "bitmap/convert.hpp"

#include <bit>
#include <vector>

#include "common/assert.hpp"

namespace sysrle {

void append_word_runs(const std::uint64_t* words, std::size_t word_count,
                      pos_t base, RleRow& out) {
  // Runs land in a flat scratch batch first; RleRow::append validates and
  // bulk-inserts once at the end.  Going through push_back per run costs
  // ~3x as much — per-run contract branches plus vector growth inside the
  // extraction loop — which is the difference between this path beating
  // the scalar merge and losing to it on fragmented rows.
  thread_local std::vector<Run> scratch;
  scratch.clear();
  // Per word, two transition masks: `starts` has a bit wherever a 1-block
  // begins (1 whose left neighbour is 0, the left neighbour of bit 0 being
  // the previous word's bit 63) and `ends` wherever one ends (1 whose right
  // neighbour is 0, the right neighbour of bit 63 being the next word's bit
  // 0).  Popping both masks lowest-bit-first pairs each start with its end
  // in one tzcnt + blsr each — no data-dependent shifts, and the only
  // per-run branch is the mask-drain loop itself.  The old scan walked the
  // word with variable shifts whose serial dependency chain plus
  // mispredicted `bit < 64` checks cost ~3x as much per run.
  //
  // A block ending exactly at bit 63 is the normal cross-word case, not a
  // defensive impossibility: the next word's bit 0 decides whether it
  // continues (carried via open_start) or closes at the boundary.
  pos_t open_start = -1;  // start of a 1-block still open across words
  pos_t pos = base;
  std::uint64_t prev_b63 = 0;  // bit 63 of the previous word
  for (std::size_t wi = 0; wi < word_count; ++wi, pos += 64) {
    const std::uint64_t w = words[wi];
    if (w == 0) {
      // A block can only stay open into a word whose bit 0 is set, so an
      // all-zero word never carries one.
      prev_b63 = 0;
      continue;
    }
    const std::uint64_t next_b0 =
        wi + 1 < word_count ? words[wi + 1] & 1 : 0;
    std::uint64_t starts = w & ~((w << 1) | prev_b63);
    std::uint64_t ends = w & ~((w >> 1) | (next_b0 << 63));
    prev_b63 = w >> 63;
    while (ends != 0) {
      const pos_t end_pos = pos + std::countr_zero(ends);
      ends &= ends - 1;
      pos_t start_pos;
      if (open_start >= 0) {
        start_pos = open_start;
        open_start = -1;
      } else {
        start_pos = pos + std::countr_zero(starts);
        starts &= starts - 1;
      }
      scratch.emplace_back(start_pos, end_pos - start_pos + 1);
    }
    // At most one start can remain: a block reaching past bit 63.
    if (starts != 0) open_start = pos + std::countr_zero(starts);
  }
  // The last word's `ends` mask treats "no next word" as a 0 neighbour, so
  // every block is closed by the time the scan finishes.
  out.append(scratch.data(), scratch.size());
}

RleRow bitrow_to_rle(const BitRow& row) {
  RleRow out;
  const auto& words = row.words();
  append_word_runs(words.data(), words.size(), 0, out);
  // BitRow keeps tail bits beyond the width zero, so the extractor cannot
  // emit a run past the row edge.  A violation means the packed-row
  // invariant was broken upstream — fail loudly rather than silently
  // dropping the run (the old `if (pos + bit <= width)` guard did exactly
  // that).
  SYSRLE_REQUIRE(out.empty() || out.last_pixel() < row.width(),
                 "bitrow_to_rle: run extends past row width (tail bits set)");
  return out;
}

BitRow rle_to_bitrow(const RleRow& row, pos_t width) {
  SYSRLE_REQUIRE(row.fits_width(width), "rle_to_bitrow: row exceeds width");
  BitRow out(width);
  for (const Run& r : row) out.fill(r.start, r.length, true);
  return out;
}

RleImage bitmap_to_rle(const BitmapImage& img) {
  std::vector<RleRow> rows;
  rows.reserve(static_cast<std::size_t>(img.height()));
  for (pos_t y = 0; y < img.height(); ++y) rows.push_back(bitrow_to_rle(img.row(y)));
  return RleImage(img.width(), std::move(rows));
}

BitmapImage rle_to_bitmap(const RleImage& img) {
  BitmapImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y)
    out.mutable_row(y) = rle_to_bitrow(img.row(y), img.width());
  return out;
}

}  // namespace sysrle
