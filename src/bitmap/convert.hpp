#pragma once
// Conversions between the compressed (RLE) and uncompressed (bitmap) worlds.
// The paper's pitch is that its systolic machine avoids these conversions at
// runtime; here they exist for I/O, ground truth, and the workload pipeline.

#include "bitmap/bitmap_image.hpp"
#include "bitmap/bitrow.hpp"
#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Encodes a packed bit row into a canonical RLE row.
RleRow bitrow_to_rle(const BitRow& row);

/// Decodes an RLE row into a packed bit row of the given width.
BitRow rle_to_bitrow(const RleRow& row, pos_t width);

/// Encodes every scanline of a bitmap image.
RleImage bitmap_to_rle(const BitmapImage& img);

/// Decodes an RLE image into a bitmap.
BitmapImage rle_to_bitmap(const RleImage& img);

}  // namespace sysrle
