#pragma once
// Conversions between the compressed (RLE) and uncompressed (bitmap) worlds.
// The paper's pitch is that its systolic machine avoids these conversions at
// runtime; here they exist for I/O, ground truth, and the workload pipeline —
// and the word-scanning extractor below is also the recompression half of
// the word-parallel sequential engine (baseline/word_diff).

#include <cstddef>
#include <cstdint>

#include "bitmap/bitmap_image.hpp"
#include "bitmap/bitrow.hpp"
#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Appends the maximal 1-blocks of `words[0..word_count)` to `out` as runs,
/// with bit 0 of words[0] at position `base`.  Scans word-at-a-time with
/// countr_zero/countr_one — no per-pixel loop — so the cost is
/// O(word_count + runs emitted).  Bits are taken at face value: the caller
/// is responsible for masking tail bits beyond its logical width (BitRow
/// maintains that invariant; word_diff masks its scratch rows).
void append_word_runs(const std::uint64_t* words, std::size_t word_count,
                      pos_t base, RleRow& out);

/// Encodes a packed bit row into a canonical RLE row.
RleRow bitrow_to_rle(const BitRow& row);

/// Decodes an RLE row into a packed bit row of the given width.
BitRow rle_to_bitrow(const RleRow& row, pos_t width);

/// Encodes every scanline of a bitmap image.
RleImage bitmap_to_rle(const BitmapImage& img);

/// Decodes an RLE image into a bitmap.
BitmapImage rle_to_bitmap(const RleImage& img);

}  // namespace sysrle
