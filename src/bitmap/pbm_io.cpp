#include "bitmap/pbm_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/assert.hpp"

namespace sysrle {
namespace {

/// Skips whitespace and '#' comments in a PBM header.
void skip_header_junk(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      in.get();
    } else {
      return;
    }
  }
}

pos_t read_header_int(std::istream& in) {
  skip_header_junk(in);
  long long v = -1;
  in >> v;
  SYSRLE_REQUIRE(in.good() && v >= 0, "PBM: malformed header integer");
  return static_cast<pos_t>(v);
}

}  // namespace

BitmapImage read_pbm(std::istream& in) {
  char p = 0, n = 0;
  in >> p >> n;
  SYSRLE_REQUIRE(in.good() && p == 'P' && (n == '1' || n == '4'),
                 "PBM: bad magic (expected P1 or P4)");
  const pos_t width = read_header_int(in);
  const pos_t height = read_header_int(in);
  BitmapImage img(width, height);

  if (n == '1') {
    for (pos_t y = 0; y < height; ++y) {
      for (pos_t x = 0; x < width; ++x) {
        skip_header_junk(in);
        const int c = in.get();
        SYSRLE_REQUIRE(c == '0' || c == '1', "PBM(P1): pixel is not 0/1");
        if (c == '1') img.set(x, y, true);
      }
    }
  } else {
    // P4: exactly one whitespace byte separates the header from pixel data.
    const int sep = in.get();
    SYSRLE_REQUIRE(sep == ' ' || sep == '\t' || sep == '\r' || sep == '\n',
                   "PBM(P4): missing header separator");
    const pos_t bytes_per_row = (width + 7) / 8;
    for (pos_t y = 0; y < height; ++y) {
      for (pos_t bx = 0; bx < bytes_per_row; ++bx) {
        const int byte = in.get();
        SYSRLE_REQUIRE(byte != EOF, "PBM(P4): truncated pixel data");
        for (int bit = 0; bit < 8; ++bit) {
          const pos_t x = bx * 8 + bit;
          if (x >= width) break;
          // PBM: 1 = black = foreground; MSB is the leftmost pixel.
          if (byte & (0x80 >> bit)) img.set(x, y, true);
        }
      }
    }
  }
  return img;
}

BitmapImage read_pbm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SYSRLE_REQUIRE(in.is_open(), "PBM: cannot open file: " + path);
  return read_pbm(in);
}

void write_pbm(std::ostream& out, const BitmapImage& img, PbmFormat format) {
  const pos_t width = img.width();
  const pos_t height = img.height();
  if (format == PbmFormat::kAscii) {
    out << "P1\n" << width << ' ' << height << '\n';
    for (pos_t y = 0; y < height; ++y) {
      for (pos_t x = 0; x < width; ++x) {
        out << (img.get(x, y) ? '1' : '0');
        // Keep P1 lines under the spec's 70-character limit.
        if ((x + 1) % 64 == 0 || x + 1 == width) {
          out << '\n';
        } else {
          out << ' ';
        }
      }
    }
  } else {
    out << "P4\n" << width << ' ' << height << '\n';
    const pos_t bytes_per_row = (width + 7) / 8;
    for (pos_t y = 0; y < height; ++y) {
      for (pos_t bx = 0; bx < bytes_per_row; ++bx) {
        unsigned char byte = 0;
        for (int bit = 0; bit < 8; ++bit) {
          const pos_t x = bx * 8 + bit;
          if (x < width && img.get(x, y)) byte |= static_cast<unsigned char>(0x80 >> bit);
        }
        out.put(static_cast<char>(byte));
      }
    }
  }
  SYSRLE_ENSURE(out.good(), "PBM: write failed");
}

void write_pbm_file(const std::string& path, const BitmapImage& img,
                    PbmFormat format) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(), "PBM: cannot open file for write: " + path);
  write_pbm(out, img, format);
}

}  // namespace sysrle
