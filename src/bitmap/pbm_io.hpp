#pragma once
// Reading and writing binary images as NetPBM PBM files (both the ASCII "P1"
// and raw "P4" variants).  This is the library's on-disk interchange format:
// reference CAD artwork and scanned board images in the examples travel as
// PBM and are converted to RLE at the edge.

#include <iosfwd>
#include <string>

#include "bitmap/bitmap_image.hpp"

namespace sysrle {

/// PBM flavour selector for writing.
enum class PbmFormat {
  kAscii,  ///< "P1": one character per pixel
  kRaw,    ///< "P4": 8 pixels per byte, MSB first, rows byte-padded
};

/// Parses a PBM stream (P1 or P4, auto-detected).  Throws contract_error on
/// malformed input.  Comments ('#' to end of line) in the header are skipped.
BitmapImage read_pbm(std::istream& in);

/// Reads a PBM file from disk.
BitmapImage read_pbm_file(const std::string& path);

/// Writes a PBM stream in the requested format.
void write_pbm(std::ostream& out, const BitmapImage& img,
               PbmFormat format = PbmFormat::kRaw);

/// Writes a PBM file to disk.
void write_pbm_file(const std::string& path, const BitmapImage& img,
                    PbmFormat format = PbmFormat::kRaw);

}  // namespace sysrle
