#include "cli/cli.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

#include "baseline/simd_dispatch.hpp"
#include "bitmap/convert.hpp"
#include "bitmap/pbm_io.hpp"
#include "common/assert.hpp"
#include "common/fixed_table.hpp"
#include "core/campaign.hpp"
#include "core/image_diff.hpp"
#include "core/stream_diff.hpp"
#include "core/systolic_diff.hpp"
#include "inspect/pipeline.hpp"
#include "inspect/report.hpp"
#include "rle/rle_stats.hpp"
#include "rle/serialize.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "store/durable_store.hpp"
#include "store/image_store.hpp"
#include "store/result_cache.hpp"
#include "systolic/verilog_gen.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/generator.hpp"
#include "workload/pcb.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

// ---------------------------------------------------------------- utilities

[[noreturn]] void usage_error(const std::string& message) {
  throw contract_error("usage: " + message);
}

/// Parses a whole string as a signed integer; anything else — garbage,
/// trailing junk, overflow — is a usage error, never a crash.
std::int64_t parse_i64(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(text, &used);
  } catch (const std::exception&) {
    usage_error(what + " expects an integer (got '" + text + "')");
  }
  if (used != text.size())
    usage_error(what + " expects an integer (got '" + text + "')");
  return v;
}

/// Same contract as parse_i64, for floating point values.
double parse_f64(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    usage_error(what + " expects a number (got '" + text + "')");
  }
  if (used != text.size())
    usage_error(what + " expects a number (got '" + text + "')");
  return v;
}

/// Loads an image file, auto-detecting PBM vs sysrle RLE by magic bytes.
RleImage load_image(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SYSRLE_REQUIRE(in.is_open(), "cannot open: " + path);
  char magic[2] = {};
  in.read(magic, 2);
  SYSRLE_REQUIRE(in.good(), "cannot read: " + path);
  in.seekg(0);
  if (magic[0] == 'P' && (magic[1] == '1' || magic[1] == '4'))
    return bitmap_to_rle(read_pbm(in));
  return read_rle(in);
}

/// Saves an image; format chosen by extension (.pbm / .srlt / default SRLB).
void save_image(const std::string& path, const RleImage& img) {
  auto ends_with = [&path](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".pbm")) {
    write_pbm_file(path, rle_to_bitmap(img));
  } else if (ends_with(".srlt")) {
    write_rle_file(path, img, RleFormat::kText);
  } else {
    write_rle_file(path, img, RleFormat::kBinary);
  }
}

/// Simple flag parser: positional arguments plus --key value / --key flags.
class ArgParser {
 public:
  explicit ArgParser(std::vector<std::string> args) : args_(std::move(args)) {}

  /// Splits into positionals and options.  `value_flags` lists options that
  /// consume a value; everything else starting with "--" is boolean.
  void parse(const std::vector<std::string>& value_flags) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& a = args_[i];
      if (a.rfind("--", 0) == 0) {
        const bool takes_value =
            std::find(value_flags.begin(), value_flags.end(), a) !=
            value_flags.end();
        if (takes_value) {
          SYSRLE_REQUIRE(i + 1 < args_.size(), "missing value for " + a);
          options_[a] = args_[++i];
        } else {
          options_[a] = "";
        }
      } else if (a == "-o") {
        SYSRLE_REQUIRE(i + 1 < args_.size(), "missing value for -o");
        options_["--output"] = args_[++i];
      } else {
        positional_.push_back(a);
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const { return options_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return parse_i64(it->second, key);
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    return parse_f64(it->second, key);
  }

 private:
  std::vector<std::string> args_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

// ------------------------------------------------------------ JSON helpers
//
// Shared serialisation between `stats --json`, `diff --stats --json` and
// `perf`, so the three subcommands cannot drift apart field by field.
// Schemas ("sysrle.stats.v1" etc.) follow the versioning policy in
// docs/OBSERVABILITY.md: additions are compatible, removals bump the suffix.

/// Emits the members of an image-statistics object (caller opens/closes it).
void write_image_stats_members(JsonWriter& w, const RleImage& img) {
  const RleImageStats s = img.stats();
  const CompressionStats c = compression_stats(img);
  w.member("width", static_cast<std::int64_t>(img.width()));
  w.member("height", static_cast<std::int64_t>(img.height()));
  w.member("foreground_pixels", static_cast<std::int64_t>(s.foreground_pixels));
  w.member("density", s.density);
  w.member("total_runs", static_cast<std::uint64_t>(s.total_runs));
  w.member("max_runs_per_row", static_cast<std::uint64_t>(s.max_runs_per_row));
  w.key("compression");
  w.begin_object();
  w.member("bitmap_bytes", c.bitmap_bytes);
  w.member("rle_bytes", c.rle_bytes);
  w.member("ratio", c.ratio());
  w.end_object();
}

/// Emits a SystolicCounters value as an object.
void write_counters_json(JsonWriter& w, const SystolicCounters& c) {
  w.begin_object();
  w.member("iterations", c.iterations);
  w.member("swaps", c.swaps);
  w.member("promotions", c.promotions);
  w.member("xors", c.xors);
  w.member("shifts", c.shifts);
  w.member("bus_moves", c.bus_moves);
  w.member("bus_cycles", c.bus_cycles);
  w.member("cells_used", c.cells_used);
  w.end_object();
}

/// Emits a {count,min,max,mean,p50,p95,p99} summary of a histogram, or null
/// when the metric never fired (e.g. a non-systolic engine was selected).
void write_hist_summary(JsonWriter& w, std::string_view key,
                        const Histogram* h) {
  w.key(key);
  if (h == nullptr || h->stat().count() == 0) {
    w.null();
    return;
  }
  const RunningStat& st = h->stat();
  w.begin_object();
  w.member("count", static_cast<std::uint64_t>(st.count()));
  w.member("min", st.min());
  w.member("max", st.max());
  w.member("mean", st.mean());
  w.member("p50", st.p50());
  w.member("p95", st.p95());
  w.member("p99", st.p99());
  w.end_object();
}

DiffEngine parse_engine(const std::string& name) {
  if (name == "systolic") return DiffEngine::kSystolic;
  if (name == "bus") return DiffEngine::kBusSystolic;
  if (name == "sequential") return DiffEngine::kSequentialMerge;
  if (name == "sweep") return DiffEngine::kParitySweep;
  if (name == "pixel") return DiffEngine::kPixelParallel;
  if (name == "adaptive") return DiffEngine::kAdaptive;
  usage_error("unknown engine '" + name +
              "' (systolic|bus|sequential|sweep|pixel|adaptive)");
}

/// Resolves --threads: absent = 0 (auto); present values must be >= 1 —
/// "--threads 0" is ambiguous enough to refuse rather than guess.
std::size_t parse_threads(const ArgParser& args) {
  if (!args.has("--threads")) return 0;
  const std::int64_t v = args.get_int("--threads", 0);
  if (v < 1) usage_error("--threads must be >= 1");
  return static_cast<std::size_t>(v);
}

/// Emits the effective-parallelism members shared by diff and perf JSON:
/// a serial fallback is visible as threads_used == 1 / parallel_rows == 0.
void write_parallelism_members(JsonWriter& w, const ImageDiffResult& r) {
  w.member("threads_used", r.threads_used);
  w.member("parallel_rows", r.parallel_rows);
  w.key("adaptive");
  w.begin_object();
  w.member("picked_systolic", r.adaptive_systolic_rows);
  w.member("picked_sequential", r.adaptive_sequential_rows);
  w.end_object();
}

// ------------------------------------------------------------- subcommands

int cmd_diff(ArgParser& args, std::ostream& out) {
  args.parse({"--engine", "--output", "--threads"});
  if (args.positional().size() != 2)
    usage_error(
        "diff <a> <b> [-o FILE] [--engine E] [--threads N] [--canonical] "
        "[--stats] [--json]");
  const RleImage a = load_image(args.positional()[0]);
  const RleImage b = load_image(args.positional()[1]);

  ImageDiffOptions options;
  options.engine = parse_engine(args.get("--engine", "systolic"));
  options.threads = parse_threads(args);
  options.canonicalize_output = args.has("--canonical");
  const ImageDiffResult result = image_diff(a, b, options);

  if (args.has("--output")) {
    save_image(args.get("--output", ""), result.diff);
    if (!args.has("--json"))
      out << "wrote " << args.get("--output", "") << '\n';
  }

  if (args.has("--json")) {
    JsonWriter w(out);
    w.begin_object();
    w.member("schema", "sysrle.diff.v1");
    w.member("engine", to_string(options.engine));
    w.member("simd", to_string(active_simd_level()));
    w.member("canonical", options.canonicalize_output);
    w.key("diff");
    w.begin_object();
    write_image_stats_members(w, result.diff);
    w.end_object();
    w.member("max_row_iterations", result.max_row_iterations);
    w.member("sequential_iterations", result.sequential_iterations);
    write_parallelism_members(w, result);
    w.key("counters");
    write_counters_json(w, result.counters);
    w.end_object();
    out << '\n';
    return 0;
  }

  const RleImageStats stats = result.diff.stats();
  out << "engine: " << to_string(options.engine) << '\n';
  out << "differing pixels: " << stats.foreground_pixels << '\n';
  out << "difference runs : " << stats.total_runs << '\n';
  if (args.has("--stats")) {
    if (result.counters.iterations > 0)
      out << "machine: " << result.counters.to_string() << '\n';
    if (result.sequential_iterations > 0)
      out << "sequential iterations: " << result.sequential_iterations << '\n';
    out << "worst-row iterations: " << result.max_row_iterations << '\n';
    out << "threads used: " << result.threads_used << "  (parallel rows "
        << result.parallel_rows << ")\n";
    if (options.engine == DiffEngine::kAdaptive)
      out << "adaptive mix: " << result.adaptive_systolic_rows
          << " systolic, " << result.adaptive_sequential_rows
          << " sequential\n";
  }
  return 0;
}

int cmd_inspect(ArgParser& args, std::ostream& out) {
  args.parse({"--engine", "--align", "--min-area", "--threads"});
  if (args.positional().size() != 2)
    usage_error(
        "inspect <ref> <scan> [--align R] [--min-area N] [--engine E] "
        "[--threads N]");
  const RleImage ref = load_image(args.positional()[0]);
  const RleImage scan = load_image(args.positional()[1]);

  InspectionOptions options;
  options.engine = parse_engine(args.get("--engine", "systolic"));
  options.threads = parse_threads(args);
  options.alignment_radius = args.get_int("--align", 0);
  options.min_defect_area = args.get_int("--min-area", 2);
  const InspectionReport report = inspect(ref, scan, options);
  out << format_report(report);
  return report.pass ? 0 : 1;
}

int cmd_gen(ArgParser& args, std::ostream& out) {
  args.parse({"--seed", "--width", "--height", "--density", "--defects",
              "--error"});
  if (args.positional().size() != 2)
    usage_error("gen pcb|random <out> [--seed N] [--width W] [--height H] "
                "[--density D] [--defects N]");
  const std::string& kind = args.positional()[0];
  const std::string& path = args.positional()[1];
  Rng rng(static_cast<std::uint64_t>(args.get_int("--seed", 42)));

  if (kind == "pcb") {
    PcbParams p;
    p.width = args.get_int("--width", 1024);
    p.height = args.get_int("--height", 256);
    BitmapImage board = generate_pcb_artwork(rng, p);
    const std::int64_t defects = args.get_int("--defects", 0);
    if (defects > 0) {
      DefectParams dp;
      dp.count = static_cast<std::size_t>(defects);
      const auto injected = inject_pcb_defects(rng, board, dp);
      for (const InjectedDefect& d : injected)
        out << "injected: " << d.to_string() << '\n';
    }
    save_image(path, bitmap_to_rle(board));
  } else if (kind == "random") {
    RowGenParams p;
    p.width = args.get_int("--width", 1024);
    p.density = args.get_double("--density", 0.3);
    const pos_t height = args.get_int("--height", 64);
    save_image(path, generate_image(rng, height, p));
  } else {
    usage_error("gen: unknown kind '" + kind + "' (pcb|random)");
  }
  out << "wrote " << path << '\n';
  return 0;
}

int cmd_convert(ArgParser& args, std::ostream& out) {
  args.parse({});
  if (args.positional().size() != 2) usage_error("convert <in> <out>");
  save_image(args.positional()[1], load_image(args.positional()[0]));
  out << "wrote " << args.positional()[1] << '\n';
  return 0;
}

int cmd_stats(ArgParser& args, std::ostream& out) {
  args.parse({});
  if (args.positional().size() != 1) usage_error("stats <file> [--json]");
  const RleImage img = load_image(args.positional()[0]);

  if (args.has("--json")) {
    const RunLengthHistogram h = run_length_histogram(img);
    JsonWriter w(out);
    w.begin_object();
    w.member("schema", "sysrle.stats.v1");
    w.member("file", args.positional()[0]);
    write_image_stats_members(w, img);
    w.key("run_lengths");
    w.begin_object();
    w.member("total_runs", h.total_runs);
    w.member("min_length", static_cast<std::int64_t>(h.min_length));
    w.member("max_length", static_cast<std::int64_t>(h.max_length));
    w.member("mean_length", h.mean_length);
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t b : h.buckets) w.value(b);
    w.end_array();
    w.end_object();
    w.end_object();
    out << '\n';
    return 0;
  }

  const RleImageStats s = img.stats();
  out << "size: " << img.width() << " x " << img.height() << '\n';
  out << "foreground pixels: " << s.foreground_pixels << '\n';
  out << "density: " << s.density << '\n';
  out << "total runs: " << s.total_runs << '\n';
  out << "max runs per row (k): " << s.max_runs_per_row << '\n';
  out << "compression: " << compression_stats(img).to_string() << '\n';
  out << "run lengths: " << run_length_histogram(img).to_string();
  return 0;
}

/// Parses a run list like "10,3 16,2 23,2" into an RleRow.
RleRow parse_run_list(const std::string& text) {
  std::vector<Run> runs;
  std::istringstream in(text);
  std::string item;
  while (in >> item) {
    const std::size_t comma = item.find(',');
    SYSRLE_REQUIRE(comma != std::string::npos,
                   "run list items must be start,length (got '" + item + "')");
    runs.emplace_back(parse_i64(item.substr(0, comma), "run start"),
                      parse_i64(item.substr(comma + 1), "run length"));
  }
  return RleRow(std::move(runs));
}

int cmd_trace(ArgParser& args, std::ostream& out) {
  args.parse({"--cells"});
  if (args.positional().size() != 2)
    usage_error("trace \"<s,l> <s,l> ...\" \"<s,l> ...\" [--cells N]");
  const RleRow a = parse_run_list(args.positional()[0]);
  const RleRow b = parse_run_list(args.positional()[1]);

  TraceRecorder trace;
  SystolicConfig cfg;
  cfg.capacity = static_cast<std::size_t>(
      args.get_int("--cells",
                   static_cast<std::int64_t>(a.run_count() + b.run_count() + 1)));
  cfg.trace = &trace;
  cfg.check_invariants = true;
  const SystolicResult r = systolic_xor(a, b, cfg);

  out << "row a : " << a.to_string() << '\n';
  out << "row b : " << b.to_string() << "\n\n";
  out << trace.render() << '\n';
  out << "difference : " << r.output.to_string() << '\n';
  out << "iterations : " << r.counters.iterations << "  (Theorem-1 bound "
      << a.run_count() + b.run_count() << ", Observation bound "
      << r.output.run_count() + 1 << ")\n";
  return 0;
}

FaultKind parse_fault_kind(const std::string& name) {
  if (name == "no-swap") return FaultKind::kNoSwap;
  if (name == "corrupt-xor-end") return FaultKind::kCorruptXorEnd;
  if (name == "drop-shift") return FaultKind::kDropShift;
  if (name == "stuck-complete-high") return FaultKind::kStuckCompleteHigh;
  usage_error("unknown fault kind '" + name +
              "' (no-swap|corrupt-xor-end|drop-shift|stuck-complete-high)");
}

FaultActivation parse_fault_activation(const std::string& name) {
  if (name == "permanent") return FaultActivation::kPermanent;
  if (name == "transient") return FaultActivation::kTransient;
  if (name == "intermittent") return FaultActivation::kIntermittent;
  usage_error("unknown fault model '" + name +
              "' (permanent|transient|intermittent)");
}

int cmd_campaign(ArgParser& args, std::ostream& out) {
  args.parse({"--rows", "--width", "--seed", "--error", "--kind", "--model",
              "--retries", "--cell-stride"});
  if (!args.positional().empty())
    usage_error("campaign [--rows N] [--width W] [--seed S] [--error F] "
                "[--kind K] [--model M] [--retries R] [--cell-stride N] "
                "[--no-fallback] [--csv]");
  const std::int64_t rows = args.get_int("--rows", 16);
  const std::int64_t width = args.get_int("--width", 512);
  if (rows < 1) usage_error("--rows must be >= 1");
  if (width < 1) usage_error("--width must be >= 1");
  const double error_fraction = args.get_double("--error", 0.02);
  if (error_fraction < 0.0 || error_fraction > 1.0)
    usage_error("--error must be in [0, 1]");
  const std::int64_t seed = args.get_int("--seed", 42);
  const std::int64_t retries = args.get_int("--retries", 2);
  if (retries < 0) usage_error("--retries must be >= 0");
  const std::int64_t stride = args.get_int("--cell-stride", 1);
  if (stride < 1) usage_error("--cell-stride must be >= 1");

  // Reference rows plus error-injected scans, like the paper's experiments.
  Rng rng(static_cast<std::uint64_t>(seed));
  RowGenParams gp;
  gp.width = width;
  RleImage a = generate_image(rng, rows, gp);
  RleImage b(width, rows);
  ErrorGenParams ep;
  ep.error_fraction = error_fraction;
  for (pos_t y = 0; y < rows; ++y)
    b.set_row(y, inject_errors(rng, a.row(y), width, ep));

  CampaignConfig cfg;
  if (args.has("--kind"))
    cfg.kinds.push_back(parse_fault_kind(args.get("--kind", "")));
  if (args.has("--model"))
    cfg.activations.push_back(
        parse_fault_activation(args.get("--model", "")));
  cfg.policy.max_retries = static_cast<int>(retries);
  cfg.policy.fallback_to_sequential = !args.has("--no-fallback");
  cfg.cell_stride = static_cast<std::size_t>(stride);
  cfg.seed = static_cast<std::uint64_t>(seed);
  const CampaignResult r = run_fault_campaign(a, b, cfg);

  FixedTable table;
  table.set_header({"fault", "model", "trials", "clean", "detected",
                    "retried", "fell-back", "unrecovered", "silent",
                    "wasted-cycles"});
  auto add = [&table](const std::string& fault, const std::string& model,
                      const CampaignCounts& c) {
    table.add_row({fault, model, FixedTable::num(c.trials),
                   FixedTable::num(c.clean), FixedTable::num(c.detected),
                   FixedTable::num(c.recovered_by_retry),
                   FixedTable::num(c.fell_back),
                   FixedTable::num(c.unrecovered),
                   FixedTable::num(c.silent_corruptions),
                   FixedTable::num(c.wasted_cycles)});
  };
  for (const CampaignResult::Group& g : r.groups)
    add(to_string(g.kind), to_string(g.activation), g.counts);
  add("total", "*", r.total);
  out << (args.has("--csv") ? table.csv() : table.str());
  out << "verdict: "
      << (r.all_recovered() ? "all faults contained"
                            : "RESILIENCE GAP (silent corruption or "
                              "unrecovered rows)")
      << '\n';
  return r.all_recovered() ? 0 : 1;
}

int cmd_perf(ArgParser& args, std::ostream& out) {
  args.parse({"--rows", "--width", "--seed", "--error", "--engine",
              "--threads"});
  if (!args.positional().empty())
    usage_error(
        "perf [--rows N] [--width W] [--seed S] [--error F] [--engine E] "
        "[--threads N]");
  const std::int64_t rows = args.get_int("--rows", 256);
  const std::int64_t width = args.get_int("--width", 4096);
  if (rows < 1) usage_error("--rows must be >= 1");
  if (width < 1) usage_error("--width must be >= 1");
  const double error_fraction = args.get_double("--error", 0.03);
  if (error_fraction < 0.0 || error_fraction > 1.0)
    usage_error("--error must be in [0, 1]");
  const std::int64_t seed = args.get_int("--seed", 42);
  const std::string engine_name = args.get("--engine", "systolic");

  ImageDiffOptions options;
  options.engine = parse_engine(engine_name);
  options.threads = parse_threads(args);
  // Raw (non-canonical) output keeps the Observation-bound telemetry armed:
  // canonicalisation shrinks k3, which would fake violations.
  options.canonicalize_output = false;

  Rng rng(static_cast<std::uint64_t>(seed));
  RowGenParams gp;
  gp.width = width;
  const RleImage a = generate_image(rng, rows, gp);
  RleImage b(width, rows);
  ErrorGenParams ep;
  ep.error_fraction = error_fraction;
  for (pos_t y = 0; y < rows; ++y)
    b.set_row(y, inject_errors(rng, a.row(y), width, ep));

  // perf measures the instrumented pipeline whether or not --metrics was
  // passed; restore the caller's enable state afterwards so a plain
  // `sysrle perf` leaves telemetry off.
  const bool was_enabled = telemetry_enabled();
  reset_telemetry();
  set_telemetry_enabled(true);

  StreamDiffer differ(options, [](pos_t, const RleRow&) {});
  const auto t0 = std::chrono::steady_clock::now();
  for (pos_t y = 0; y < rows; ++y) differ.push_row(a.row(y), b.row(y));
  const auto t1 = std::chrono::steady_clock::now();
  const StreamSummary& summary = differ.finish();

  // Second phase: the whole-image row-parallel path, on the same inputs and
  // engine.  This is where --threads takes effect.
  const auto t2 = std::chrono::steady_clock::now();
  const ImageDiffResult image_result = image_diff(a, b, options);
  const auto t3 = std::chrono::steady_clock::now();

  const MetricsSnapshot snap = global_metrics().snapshot();
  set_telemetry_enabled(was_enabled);

  const double wall_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  const double image_wall_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t3 - t2).count());

  JsonWriter w(out);
  w.begin_object();
  w.member("schema", "sysrle.perf.v1");
  w.key("params");
  w.begin_object();
  w.member("rows", rows);
  w.member("width", width);
  w.member("seed", seed);
  w.member("error_fraction", error_fraction);
  w.member("engine", engine_name);
  w.member("simd", to_string(active_simd_level()));
  w.end_object();
  w.member("wall_time_us", wall_us);
  w.member("rows_per_sec", wall_us > 0.0
                               ? static_cast<double>(summary.rows) * 1e6 /
                                     wall_us
                               : 0.0);
  w.key("summary");
  w.begin_object();
  w.member("rows", summary.rows);
  w.member("difference_pixels",
           static_cast<std::int64_t>(summary.difference_pixels));
  w.member("max_row_iterations", summary.max_row_iterations);
  w.member("sequential_iterations", summary.sequential_iterations);
  w.member("pipelined_cycles", summary.pipelined_cycles);
  w.member("fallback_rows", summary.fallback_rows);
  w.member("poisoned_rows", summary.poisoned_rows);
  w.end_object();
  w.key("image_diff");
  w.begin_object();
  w.member("wall_time_us", image_wall_us);
  w.member("rows_per_sec", image_wall_us > 0.0
                               ? static_cast<double>(rows) * 1e6 /
                                     image_wall_us
                               : 0.0);
  write_parallelism_members(w, image_result);
  w.end_object();
  w.key("counters");
  write_counters_json(w, summary.counters);
  write_hist_summary(w, "row_iterations",
                     snap.histogram("systolic.row_iterations"));
  write_hist_summary(w, "row_latency_us",
                     snap.histogram("stream.row_latency_us"));
  w.member("observation_bound_ok",
           snap.counter("systolic.obs_bound_violations") == 0);
  w.end_object();
  out << '\n';
  return 0;
}

// ----------------------------------------------------------------- serving

/// One parsed line of a `serve` request file.
struct ServeSpec {
  Priority priority = Priority::kBatch;
  std::int64_t rows = 64;
  std::int64_t width = 1024;
  double error_fraction = 0.02;
  std::int64_t deadline_ms = -1;  ///< -1: use the command-wide default
};

/// `register <name> <rows> <width> [density]`: generate an image and put it
/// in the session's ImageStore under <name> (store mode only).
struct RegisterSpec {
  std::string name;
  std::int64_t rows = 64;
  std::int64_t width = 1024;
  double density = 0.30;
};

/// `diff-handles <priority> <a> <b> [deadline_ms]`: diff two registered
/// images by handle (store mode only).
struct HandleDiffSpec {
  Priority priority = Priority::kBatch;
  std::string a;
  std::string b;
  std::int64_t deadline_ms = -1;
};

/// One line of a serve request file: a plain generated-pair spec, or (in
/// --store mode) a store verb.  `wait` blocks submission until every
/// previously submitted request has been delivered — it separates
/// concurrent identical diffs (coalesced) from sequential ones (cache
/// hits) deterministically.
struct ServeAction {
  enum class Kind { kSpec, kRegister, kDiffHandles, kWait };
  Kind kind = Kind::kSpec;
  ServeSpec spec;
  RegisterSpec reg;
  HandleDiffSpec diff;
};

Priority parse_priority(const std::string& prio, std::size_t lineno) {
  if (prio == "interactive") return Priority::kInteractive;
  if (prio == "batch") return Priority::kBatch;
  usage_error("serve: request line " + std::to_string(lineno) +
              ": unknown priority '" + prio + "' (interactive|batch)");
}

/// Parses a serve request file (# comments and blank lines skipped); errors
/// name the offending line.  Plain lines are
/// "priority rows width error [deadline_ms]"; with `store_mode` the verbs
/// "register <name> <rows> <width> [density]" and
/// "diff-handles <priority> <a> <b> [deadline_ms]" (trailing ':' on the
/// verb accepted) are also understood.  Without store mode the verbs are a
/// usage error naming the missing flag, not a silent misparse.
std::vector<ServeAction> parse_serve_actions(std::istream& in,
                                             bool store_mode) {
  std::vector<ServeAction> actions;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (!head.empty() && head.back() == ':') head.pop_back();
    if (head == "register" || head == "diff-handles" || head == "wait") {
      if (!store_mode)
        usage_error("serve: request line " + std::to_string(lineno) + ": '" +
                    head + "' requires --store");
      ServeAction a;
      if (head == "wait") {
        a.kind = ServeAction::Kind::kWait;
        std::string extra;
        if (ls >> extra)
          usage_error("serve: request line " + std::to_string(lineno) +
                      ": 'wait' takes no operands");
        actions.push_back(std::move(a));
        continue;
      }
      if (head == "register") {
        a.kind = ServeAction::Kind::kRegister;
        ls >> a.reg.name >> a.reg.rows >> a.reg.width;
        if (!ls || a.reg.name.empty())
          usage_error("serve: request line " + std::to_string(lineno) +
                      " must be 'register <name> <rows> <width> [density]'");
        if (!(ls >> a.reg.density)) a.reg.density = 0.30;
        if (a.reg.rows < 1 || a.reg.width < 1)
          usage_error("serve: request line " + std::to_string(lineno) +
                      ": rows and width must be >= 1");
        if (a.reg.density <= 0.0 || a.reg.density >= 1.0)
          usage_error("serve: request line " + std::to_string(lineno) +
                      ": density must be in (0, 1)");
      } else {
        a.kind = ServeAction::Kind::kDiffHandles;
        std::string prio;
        ls >> prio >> a.diff.a >> a.diff.b;
        if (!ls || a.diff.a.empty() || a.diff.b.empty())
          usage_error(
              "serve: request line " + std::to_string(lineno) +
              " must be 'diff-handles <priority> <a> <b> [deadline_ms]'");
        if (!(ls >> a.diff.deadline_ms)) a.diff.deadline_ms = -1;
        a.diff.priority = parse_priority(prio, lineno);
      }
      actions.push_back(std::move(a));
      continue;
    }
    ServeAction a;
    a.kind = ServeAction::Kind::kSpec;
    ServeSpec& s = a.spec;
    std::istringstream sl(line);
    std::string prio;
    sl >> prio >> s.rows >> s.width >> s.error_fraction;
    if (!sl)
      usage_error("serve: request line " + std::to_string(lineno) +
                  " must be 'priority rows width error [deadline_ms]'");
    if (!(sl >> s.deadline_ms)) s.deadline_ms = -1;
    s.priority = parse_priority(prio, lineno);
    if (s.rows < 1 || s.width < 1)
      usage_error("serve: request line " + std::to_string(lineno) +
                  ": rows and width must be >= 1");
    if (s.error_fraction < 0.0 || s.error_fraction > 1.0)
      usage_error("serve: request line " + std::to_string(lineno) +
                  ": error must be in [0, 1]");
    actions.push_back(std::move(a));
  }
  return actions;
}

/// Parsed --kill-replica S.R@K: kill shard S's replica R once K requests
/// have been submitted (a mid-run fault for exercising failover/hedging).
struct KillSpec {
  std::size_t shard = 0;
  std::size_t replica = 0;
  std::uint64_t after = 0;
};

KillSpec parse_kill_replica(const std::string& text) {
  const std::size_t dot = text.find('.');
  const std::size_t at = text.find('@');
  if (dot == std::string::npos || at == std::string::npos || at < dot)
    usage_error("--kill-replica expects S.R@K (shard.replica@after_requests)");
  KillSpec k;
  k.shard = static_cast<std::size_t>(
      parse_i64(text.substr(0, dot), "--kill-replica shard"));
  k.replica = static_cast<std::size_t>(
      parse_i64(text.substr(dot + 1, at - dot - 1), "--kill-replica replica"));
  k.after = static_cast<std::uint64_t>(
      parse_i64(text.substr(at + 1), "--kill-replica after"));
  return k;
}

int cmd_serve(ArgParser& args, std::ostream& out) {
  args.parse({"--requests", "--workers", "--queue-cap", "--deadline-ms",
              "--seed", "--engine", "--shards", "--replicas", "--hedge-ms",
              "--flight-recorder", "--flight-out", "--flight-trace",
              "--slo-p99-ms", "--kill-replica", "--store-cap-mb",
              "--cache-cap-mb", "--store-dir", "--snapshot-every"});
  if (!args.positional().empty() || !args.has("--requests"))
    usage_error(
        "serve --requests <file|-> [--workers N] [--queue-cap M] "
        "[--deadline-ms D] [--seed S] [--engine E] [--shards N] "
        "[--replicas R] [--hedge-ms H] [--flight-recorder N] "
        "[--flight-out FILE] [--flight-trace FILE] [--slo-p99-ms D] "
        "[--kill-replica S.R@K] [--store] [--store-dir DIR] "
        "[--snapshot-every N] [--store-cap-mb N] "
        "[--cache-cap-mb N] [--checked] [--json]");
  const std::string requests_path = args.get("--requests", "-");
  const std::int64_t workers = args.get_int("--workers", 2);
  const std::int64_t queue_cap = args.get_int("--queue-cap", 64);
  const std::int64_t default_deadline_ms = args.get_int("--deadline-ms", 0);
  const std::int64_t seed = args.get_int("--seed", 42);
  const std::int64_t shards = args.get_int("--shards", 1);
  const std::int64_t replicas = args.get_int("--replicas", 1);
  const std::int64_t hedge_ms = args.get_int("--hedge-ms", 0);
  const std::int64_t flight_cap = args.get_int("--flight-recorder", 0);
  const std::string flight_out = args.get("--flight-out", "");
  const std::string flight_trace = args.get("--flight-trace", "");
  const std::int64_t slo_p99_ms = args.get_int("--slo-p99-ms", 50);
  const std::string store_dir = args.get("--store-dir", "");
  // A durable directory implies store mode: recovery repopulates the session
  // store and every registration/eviction is journaled.
  const bool use_store = args.has("--store") || !store_dir.empty();
  const std::int64_t store_cap_mb = args.get_int("--store-cap-mb", 64);
  const std::int64_t cache_cap_mb = args.get_int("--cache-cap-mb", 16);
  const std::int64_t snapshot_every = args.get_int("--snapshot-every", 64);
  if (workers < 0) usage_error("--workers must be >= 0 (0 = auto)");
  if (queue_cap < 1) usage_error("--queue-cap must be >= 1");
  if (default_deadline_ms < 0) usage_error("--deadline-ms must be >= 0");
  if (shards < 1) usage_error("--shards must be >= 1");
  if (replicas < 1) usage_error("--replicas must be >= 1");
  if (hedge_ms < 0) usage_error("--hedge-ms must be >= 0 (0 = adaptive p99)");
  if (!use_store && args.has("--store-cap-mb"))
    usage_error("--store-cap-mb requires --store");
  if (!use_store && args.has("--cache-cap-mb"))
    usage_error("--cache-cap-mb requires --store");
  if (store_cap_mb < 1) usage_error("--store-cap-mb must be >= 1");
  if (cache_cap_mb < 1) usage_error("--cache-cap-mb must be >= 1");
  if (args.has("--snapshot-every") && store_dir.empty())
    usage_error("--snapshot-every requires --store-dir");
  if (snapshot_every < 0)
    usage_error("--snapshot-every must be >= 0 (0 = compact only on recovery)");
  if (flight_cap < 0)
    usage_error("--flight-recorder must be >= 0 (0 = off; N = ring slots)");
  if (flight_cap == 0 && (!flight_out.empty() || !flight_trace.empty()))
    usage_error("--flight-out/--flight-trace require --flight-recorder N");
  if (slo_p99_ms < 1) usage_error("--slo-p99-ms must be >= 1");
  std::optional<KillSpec> kill;
  if (args.has("--kill-replica")) {
    kill = parse_kill_replica(args.get("--kill-replica", ""));
    if (kill->shard >= static_cast<std::size_t>(shards) ||
        kill->replica >= static_cast<std::size_t>(replicas))
      usage_error("--kill-replica names a shard.replica outside the topology");
  }
  // Fail fast on unwritable flight destinations, same contract as the
  // global --metrics/--trace-out preflight.
  for (const std::string* path : {&flight_out, &flight_trace}) {
    if (path->empty()) continue;
    std::ofstream probe(*path, std::ios::app);
    if (!probe.is_open())
      throw contract_error("cannot open flight output for writing: " + *path);
  }
  // Same contract for the durable store directory: a serve session must not
  // discover at the first registration that its journal has nowhere to go.
  // The probe file exercises actual write permission, not just stat bits.
  if (!store_dir.empty()) {
    if (!std::filesystem::is_directory(store_dir))
      throw contract_error("--store-dir is not an existing directory: " +
                           store_dir);
    const std::string probe_path = store_dir + "/.sysrle-preflight";
    std::ofstream probe(probe_path, std::ios::app);
    if (!probe.is_open())
      throw contract_error("--store-dir is not writable: " + store_dir);
    probe.close();
    std::error_code ec;
    std::filesystem::remove(probe_path, ec);
  }

  std::vector<ServeAction> actions;
  if (requests_path == "-") {
    actions = parse_serve_actions(std::cin, use_store);
  } else {
    std::ifstream in(requests_path);
    SYSRLE_REQUIRE(in.is_open(), "cannot open: " + requests_path);
    actions = parse_serve_actions(in, use_store);
  }
  std::uint64_t n_requests = 0;
  for (const ServeAction& a : actions)
    if (a.kind == ServeAction::Kind::kSpec ||
        a.kind == ServeAction::Kind::kDiffHandles)
      ++n_requests;

  // Store-mode session state: the persistent image store and the
  // content-addressed result cache shared by every shard of the router.
  // With --store-dir the store is durable: the constructor recovers
  // snapshot + journal (re-verifying every fingerprint) and every later
  // registration/eviction is journaled before it is acknowledged.
  std::shared_ptr<ImageStore> store;
  std::shared_ptr<ResultCache> cache;
  std::unique_ptr<DurableStore> durable;
  if (use_store) {
    StoreConfig sc;
    sc.capacity_bytes =
        static_cast<std::size_t>(store_cap_mb) * (std::size_t{1} << 20);
    if (!store_dir.empty()) {
      DurableStoreConfig dc;
      dc.dir = store_dir;
      dc.store = sc;
      dc.snapshot_every = static_cast<std::uint64_t>(snapshot_every);
      durable = std::make_unique<DurableStore>(std::move(dc));
      store = durable->store_ptr();
    } else {
      store = std::make_shared<ImageStore>(sc);
    }
    CacheConfig cc;
    cc.capacity_bytes =
        static_cast<std::size_t>(cache_cap_mb) * (std::size_t{1} << 20);
    cache = std::make_shared<ResultCache>(cc);
  }

  RouterConfig rcfg;
  rcfg.shards = static_cast<std::size_t>(shards);
  rcfg.replicas = static_cast<std::size_t>(replicas);
  rcfg.seed = static_cast<std::uint64_t>(seed);
  rcfg.replica_service.workers = static_cast<std::size_t>(workers);
  rcfg.replica_service.admission.interactive_capacity =
      static_cast<std::size_t>(queue_cap);
  rcfg.replica_service.admission.batch_capacity =
      static_cast<std::size_t>(queue_cap);
  rcfg.replica_service.use_checked_engine = args.has("--checked");
  rcfg.replica_service.seed = static_cast<std::uint64_t>(seed);
  // A second dispatch needs a second place to land; with a single replica
  // every hedge would be unroutable noise.
  rcfg.hedge.enabled = rcfg.shards * rcfg.replicas > 1;
  rcfg.hedge.fixed_delay_us = static_cast<std::uint64_t>(hedge_ms) * 1000;
  rcfg.store = store;
  rcfg.cache = cache;

  ImageDiffOptions options;
  options.engine = parse_engine(args.get("--engine", "systolic"));

  // Flight recorder: installed for the router's whole lifetime, removed
  // before export (no writers can race the dump once drain() returned).
  std::optional<FlightRecorder> flight;
  if (flight_cap > 0) {
    flight.emplace(static_cast<std::size_t>(flight_cap));
    set_flight_recorder(&*flight);
  }

  // Interactive SLO: a request is good iff it completed within the target.
  // Rejected/failed interactive requests burn budget regardless of latency.
  SloTracker::Config slo_cfg;
  slo_cfg.target_us = static_cast<std::uint64_t>(slo_p99_ms) * 1000;
  SloTracker slo(slo_cfg);
  const auto serve_epoch = std::chrono::steady_clock::now();
  auto slo_now_us = [&serve_epoch] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - serve_epoch)
            .count());
  };

  // Per-request outcome of a `diff-handles` line, for the handle_diffs
  // report: the store-session smoke asserts the second identical diff is a
  // cache hit with a bit-identical payload via diff_fingerprint.
  struct HandleOutcome {
    std::string a;
    std::string b;
    std::string status = "pending";
    bool from_cache = false;
    std::uint64_t diff_fingerprint = 0;
    std::uint64_t rows_processed = 0;
  };

  // Per-class latency of delivered responses; the router and service
  // metrics cover the queue and shed sides.
  std::mutex mu;
  std::condition_variable delivered_cv;
  std::uint64_t delivered = 0;  ///< responses seen (for the `wait` verb)
  RunningStat latency_us[2];
  std::uint64_t rows_done = 0;
  std::map<std::uint64_t, HandleOutcome> handle_diffs;
  ShardRouter router(rcfg, [&](ServiceResponse r) {
    std::lock_guard<std::mutex> lk(mu);
    ++delivered;
    delivered_cv.notify_all();
    if (r.priority == Priority::kInteractive) {
      if (r.status == ServiceResponse::Status::kCompleted)
        slo.record(slo_now_us(), static_cast<std::uint64_t>(r.total_us));
      else
        slo.record_breach(slo_now_us());
    }
    if (r.status != ServiceResponse::Status::kRejected)
      latency_us[r.priority == Priority::kInteractive ? 0 : 1].add(r.total_us);
    rows_done += r.rows_processed;
    const auto it = handle_diffs.find(r.id);
    if (it != handle_diffs.end()) {
      HandleOutcome& h = it->second;
      switch (r.status) {
        case ServiceResponse::Status::kCompleted: h.status = "completed"; break;
        case ServiceResponse::Status::kFailed: h.status = "failed"; break;
        case ServiceResponse::Status::kRejected: h.status = "rejected"; break;
      }
      h.from_cache = r.from_cache;
      h.rows_processed = r.rows_processed;
      if (r.status == ServiceResponse::Status::kCompleted)
        h.diff_fingerprint = canonical_fingerprint(r.diff);
    }
  });

  Rng gen_rng(static_cast<std::uint64_t>(seed));
  std::uint64_t next_id = 0;
  std::uint64_t expected_responses = 0;
  std::map<std::string, ImageHandle> handles;  // register: latest wins
  // Recovered names resolve immediately: a pre-crash `register ref ...` can
  // be diffed by handle in the restarted session without re-registering.
  if (durable) handles = durable->labels();
  std::uint64_t registered_lines = 0;
  for (const ServeAction& action : actions) {
    if (action.kind == ServeAction::Kind::kWait) {
      std::unique_lock<std::mutex> lk(mu);
      delivered_cv.wait(lk, [&] { return delivered >= expected_responses; });
      continue;
    }
    if (action.kind == ServeAction::Kind::kRegister) {
      const RegisterSpec& g = action.reg;
      Rng rng = gen_rng.split();
      RowGenParams gp;
      gp.width = g.width;
      gp.density = g.density;
      const RleImage image = generate_image(rng, g.rows, gp);
      const ImageStore::RegisterResult rr =
          durable ? durable->register_image(image, g.name)
                  : store->register_image(image);
      if (!rr.ok)
        throw contract_error("serve: register '" + g.name +
                             "' refused by the store (fingerprint collision)");
      handles[g.name] = rr.handle;
      ++registered_lines;
      continue;
    }
    if (kill && next_id == kill->after)
      router.kill_replica(kill->shard, kill->replica);
    ServiceRequest req;
    req.id = next_id++;
    req.options = options;
    Priority prio = Priority::kBatch;
    if (action.kind == ServeAction::Kind::kDiffHandles) {
      const HandleDiffSpec& d = action.diff;
      prio = d.priority;
      req.priority = d.priority;
      const std::int64_t dl =
          d.deadline_ms >= 0 ? d.deadline_ms : default_deadline_ms;
      if (dl > 0) req.deadline = Deadline::after_ms(dl);
      const auto ia = handles.find(d.a);
      const auto ib = handles.find(d.b);
      if (ia == handles.end() || ib == handles.end())
        usage_error("serve: diff-handles names an unregistered image '" +
                    (ia == handles.end() ? d.a : d.b) + "'");
      req.ref_handle = ia->second;
      req.scan_handle = ib->second;
      req.keep_diff = true;
      {
        std::lock_guard<std::mutex> lk(mu);
        HandleOutcome h;
        h.a = d.a;
        h.b = d.b;
        handle_diffs.emplace(req.id, std::move(h));
      }
    } else {
      const ServeSpec& s = action.spec;
      prio = s.priority;
      req.priority = s.priority;
      const std::int64_t dl =
          s.deadline_ms >= 0 ? s.deadline_ms : default_deadline_ms;
      if (dl > 0) req.deadline = Deadline::after_ms(dl);
      req.keep_diff = false;
      Rng rng = gen_rng.split();
      RowGenParams gp;
      gp.width = s.width;
      req.reference = generate_image(rng, s.rows, gp);
      RleImage scan(s.width, s.rows);
      ErrorGenParams ep;
      ep.error_fraction = s.error_fraction;
      for (pos_t y = 0; y < s.rows; ++y)
        scan.set_row(y, inject_errors(rng, req.reference.row(y), s.width, ep));
      req.scan = std::move(scan);
    }
    const std::uint64_t req_id = req.id;
    // Synchronous sheds are interactive SLO breaches too: the client got a
    // refusal, not a result.  Counted here because no response follows.
    const std::optional<RejectReason> shed = router.try_submit(std::move(req));
    if (shed) {
      if (prio == Priority::kInteractive) slo.record_breach(slo_now_us());
      std::lock_guard<std::mutex> lk(mu);
      const auto it = handle_diffs.find(req_id);
      if (it != handle_diffs.end())
        it->second.status = std::string("shed_") + to_string(*shed);
    } else {
      ++expected_responses;
    }
  }
  router.drain();
  if (flight) set_flight_recorder(nullptr);
  const RouterStats rt = router.stats();
  const ServiceStats st = router.backend_stats();

  const std::uint64_t slo_now = slo_now_us();
  const SloTracker::Burn slo_short = slo.short_window(slo_now);
  const SloTracker::Burn slo_long = slo.long_window(slo_now);
  if (telemetry_enabled()) slo.export_gauges(global_metrics(), slo_now);

  if (flight) {
    if (!flight_out.empty()) write_flight_jsonl_file(*flight, flight_out);
    if (!flight_trace.empty())
      write_flight_chrome_trace_file(*flight, flight_trace);
  }

  if (args.has("--json")) {
    JsonWriter w(out);
    w.begin_object();
    w.member("schema", "sysrle.serve.v5");
    w.key("params");
    w.begin_object();
    w.member("requests", n_requests);
    w.member("registers", registered_lines);
    w.member("workers", workers);
    w.member("queue_cap", queue_cap);
    w.member("deadline_ms", default_deadline_ms);
    w.member("seed", seed);
    w.member("checked", args.has("--checked"));
    w.member("shards", shards);
    w.member("replicas", replicas);
    w.member("hedge_ms", hedge_ms);
    w.member("slo_p99_ms", slo_p99_ms);
    w.member("flight_recorder", flight_cap);
    w.member("store", use_store);
    w.member("store_dir", store_dir);
    w.member("snapshot_every", snapshot_every);
    w.member("store_cap_mb", store_cap_mb);
    w.member("cache_cap_mb", cache_cap_mb);
    if (kill)
      w.member("kill_replica",
               std::to_string(kill->shard) + "." +
                   std::to_string(kill->replica) + "@" +
                   std::to_string(kill->after));
    w.end_object();
    // Client-visible accounting: what the router offered, admitted, and
    // delivered (one outcome per request — the zero-silent-drops identity).
    w.member("offered", rt.offered);
    w.member("admitted", rt.admitted);
    w.member("completed", rt.completed);
    w.member("failed", rt.failed);
    w.member("rejected", rt.rejected);
    w.key("shed");
    w.begin_object();
    w.member("shutdown", rt.shed_shutdown);
    w.member("deadline_at_submit", rt.shed_deadline_at_submit);
    w.member("shard_down", rt.shed_shard_down);
    w.member("unknown_handle", rt.shed_unknown_handle);
    w.member("total", rt.shed_submit_total());
    w.end_object();
    w.key("router");
    w.begin_object();
    w.member("failovers", rt.failovers);
    w.member("cross_shard_failovers", rt.cross_shard_failovers);
    w.member("hedges_fired", rt.hedges_fired);
    w.member("hedges_won", rt.hedges_won);
    w.member("hedges_lost", rt.hedges_lost);
    w.member("hedges_suppressed", rt.hedges_suppressed);
    w.member("hedges_unroutable", rt.hedges_unroutable);
    w.member("coalesced", rt.coalesced);
    w.member("coalesce_promotions", rt.coalesce_promotions);
    w.member("coalesce_collisions", rt.coalesce_collisions);
    w.member("waiter_deadline_sheds", rt.waiter_deadline_sheds);
    w.member("cache_hits", rt.cache_hits);
    w.member("cache_misses", rt.cache_misses);
    w.member("cache_stores", rt.cache_stores);
    w.member("hedge_delay_us", router.current_hedge_delay_us());
    w.end_object();
    // Backend view, aggregated over every replica DiffService.
    w.key("backend");
    w.begin_object();
    w.member("offered", st.offered);
    w.member("admitted", st.admitted);
    w.member("completed", st.completed);
    w.member("failed", st.failed);
    w.key("shed");
    w.begin_object();
    w.member("queue_full", st.shed_queue_full);
    w.member("circuit_open", st.shed_circuit_open);
    w.member("shutdown", st.shed_shutdown);
    w.member("deadline_at_submit", st.shed_deadline_at_submit);
    w.member("deadline_after_admit", st.shed_deadline_after_admit);
    w.member("cancelled", st.cancelled);
    w.member("total", st.shed_total());
    w.end_object();
    w.member("deadline_misses", st.deadline_misses);
    w.member("retries", st.retries);
    w.member("retry_budget_exhausted", st.retry_budget_exhausted);
    w.member("fallback_rows", st.fallback_rows);
    w.member("engine_invocations", st.engine_invocations);
    w.end_object();
    // Store-session accounting (null without --store): the zero-leak
    // identities registered == resident + evicted and
    // lookups == hits + misses.
    w.key("store");
    if (store) {
      const StoreStats ss = store->stats();
      const SlabArena::Stats as = store->arena_stats();
      w.begin_object();
      w.member("registered", ss.registered);
      w.member("dedup_hits", ss.dedup_hits);
      w.member("collisions", ss.collisions);
      w.member("evicted", ss.evicted);
      w.member("evict_blocked_by_pin", ss.evict_blocked_by_pin);
      w.member("acquires", ss.acquires);
      w.member("lookup_misses", ss.lookup_misses);
      w.member("resident", static_cast<std::uint64_t>(ss.resident));
      w.member("resident_bytes",
               static_cast<std::uint64_t>(ss.resident_bytes));
      w.member("arena_live_bytes", static_cast<std::uint64_t>(as.live_bytes));
      w.member("arena_reserved_bytes",
               static_cast<std::uint64_t>(as.reserved_bytes));
      w.member("accounting_ok", ss.accounted());
      w.end_object();
    } else {
      w.null();
    }
    w.key("cache");
    if (cache) {
      const CacheStats cs = cache->stats();
      w.begin_object();
      w.member("lookups", cs.lookups);
      w.member("hits", cs.hits);
      w.member("misses", cs.misses);
      w.member("collisions", cs.collisions);
      w.member("insertions", cs.insertions);
      w.member("evictions", cs.evictions);
      w.member("resident", static_cast<std::uint64_t>(cs.resident));
      w.member("resident_bytes",
               static_cast<std::uint64_t>(cs.resident_bytes));
      w.member("hit_ratio", cs.lookups > 0
                                ? static_cast<double>(cs.hits) /
                                      static_cast<double>(cs.lookups)
                                : 0.0);
      w.member("accounting_ok", cs.accounted());
      w.end_object();
    } else {
      w.null();
    }
    // Durability accounting (null without --store-dir): the journal/snapshot
    // counters plus what this session's recovery found.  accounting_ok pins
    // the recovery identity — every register record seen on disk was either
    // replayed or dropped with a typed reason.
    w.key("durability");
    if (durable) {
      const DurabilityStats ds = durable->durability_stats();
      const RecoveryReport& rec = ds.recovery;
      const std::uint64_t evict_records =
          rec.replayed_evicts + rec.evicts_unmatched;
      const std::uint64_t register_records =
          rec.snapshot_entries + rec.journal_records - evict_records;
      w.begin_object();
      w.member("dir", store_dir);
      w.key("journal");
      w.begin_object();
      w.member("appends", ds.journal.appends);
      w.member("appended_bytes", ds.journal.appended_bytes);
      w.member("fsyncs", ds.journal.fsyncs);
      w.member("truncations", ds.journal.truncations);
      w.member("size_bytes", ds.journal_size_bytes);
      w.end_object();
      w.member("snapshots", ds.snapshots);
      w.member("last_snapshot_entries", ds.last_snapshot_entries);
      w.key("recovery");
      w.begin_object();
      w.member("snapshot_present", rec.snapshot_present);
      w.member("snapshot_entries", rec.snapshot_entries);
      w.member("journal_records", rec.journal_records);
      w.member("replayed_registers", rec.replayed_registers);
      w.member("replayed_evicts", rec.replayed_evicts);
      w.member("dropped_malformed", rec.dropped_malformed);
      w.member("dropped_fingerprint", rec.dropped_fingerprint);
      w.member("dropped_collision", rec.dropped_collision);
      w.member("evicts_unmatched", rec.evicts_unmatched);
      w.member("salvaged_bytes", rec.salvaged_bytes());
      w.member("journal_tail_reason", rec.journal_tail_reason);
      w.end_object();
      w.member("accounting_ok",
               rec.replayed_registers + rec.dropped() == register_records);
      w.end_object();
    } else {
      w.null();
    }
    // Per-request outcomes of diff-handles lines, in submission order.
    w.key("handle_diffs");
    w.begin_array();
    {
      std::lock_guard<std::mutex> lk(mu);
      for (const auto& [id, h] : handle_diffs) {
        w.begin_object();
        w.member("id", id);
        w.member("a", h.a);
        w.member("b", h.b);
        w.member("status", h.status);
        w.member("from_cache", h.from_cache);
        w.member("diff_fingerprint", h.diff_fingerprint);
        w.member("rows_processed", h.rows_processed);
        w.end_object();
      }
    }
    w.end_array();
    w.member("rows_processed", rows_done);
    w.key("breakers");
    w.begin_array();
    for (std::size_t s = 0; s < router.shards(); ++s)
      for (std::size_t r = 0; r < router.replicas(); ++r)
        w.value("shard" + std::to_string(s) + ".replica" + std::to_string(r) +
                "=" + to_string(router.replica_breaker_state(s, r)));
    w.end_array();
    w.member("healthy_replicas",
             static_cast<std::uint64_t>(router.healthy_replicas()));
    w.member("accounting_ok",
             rt.accounted() && st.responses() == st.admitted &&
                 (!store || store->stats().accounted()) &&
                 (!cache || cache->stats().accounted()));
    // Interactive SLO (sysrle.serve.v3): latency-objective burn rates over
    // the short/long rolling windows at drain time.
    w.key("slo");
    w.begin_object();
    w.member("target_p99_ms", slo_p99_ms);
    w.member("objective", slo.config().objective);
    w.member("good", slo.total() - slo.bad());
    w.member("bad", slo.bad());
    w.member("burn_rate_short", slo_short.burn_rate);
    w.member("burn_rate_long", slo_long.burn_rate);
    w.member("bad_fraction_long", slo_long.bad_fraction);
    w.end_object();
    // Flight recorder accounting (null when not enabled).
    w.key("flight");
    if (flight) {
      w.begin_object();
      w.member("capacity", static_cast<std::uint64_t>(flight->capacity()));
      w.member("recorded", flight->recorded());
      w.member("dropped", flight->dropped());
      w.member("retained",
               static_cast<std::uint64_t>(flight->retained().size()));
      w.member("retain_dropped", flight->retain_dropped());
      w.end_object();
    } else {
      w.null();
    }
    for (int c = 0; c < 2; ++c) {
      w.key(c == 0 ? "latency_us_interactive" : "latency_us_batch");
      const RunningStat& stc = latency_us[c];
      if (stc.count() == 0) {
        w.null();
        continue;
      }
      w.begin_object();
      w.member("count", static_cast<std::uint64_t>(stc.count()));
      w.member("mean", stc.mean());
      w.member("p50", stc.p50());
      w.member("p95", stc.p95());
      w.member("p99", stc.p99());
      w.end_object();
    }
    w.end_object();
    out << '\n';
  } else {
    FixedTable table;
    table.set_header({"outcome", "count"});
    table.add_row({"offered", FixedTable::num(rt.offered)});
    table.add_row({"admitted", FixedTable::num(rt.admitted)});
    table.add_row({"completed", FixedTable::num(rt.completed)});
    table.add_row({"failed", FixedTable::num(rt.failed)});
    table.add_row({"rejected", FixedTable::num(rt.rejected)});
    table.add_row({"shed shutdown", FixedTable::num(rt.shed_shutdown)});
    table.add_row(
        {"shed deadline", FixedTable::num(rt.shed_deadline_at_submit)});
    table.add_row({"shed shard_down", FixedTable::num(rt.shed_shard_down)});
    if (use_store)
      table.add_row(
          {"shed unknown_handle", FixedTable::num(rt.shed_unknown_handle)});
    table.add_row({"failovers", FixedTable::num(rt.failovers)});
    table.add_row({"hedges fired", FixedTable::num(rt.hedges_fired)});
    table.add_row({"coalesced", FixedTable::num(rt.coalesced)});
    if (use_store) {
      table.add_row({"cache hits", FixedTable::num(rt.cache_hits)});
      table.add_row({"cache misses", FixedTable::num(rt.cache_misses)});
    }
    table.add_row({"deadline misses", FixedTable::num(st.deadline_misses)});
    table.add_row({"retries", FixedTable::num(st.retries)});
    out << table.str();
    if (store) {
      const StoreStats ss = store->stats();
      out << "store: registered=" << ss.registered << " resident="
          << ss.resident << " evicted=" << ss.evicted << " resident_bytes="
          << ss.resident_bytes << " accounting_ok="
          << (ss.accounted() ? "true" : "false") << '\n';
    }
    if (cache) {
      const CacheStats cs = cache->stats();
      out << "cache: lookups=" << cs.lookups << " hits=" << cs.hits
          << " misses=" << cs.misses << " accounting_ok="
          << (cs.accounted() ? "true" : "false") << '\n';
    }
    if (durable) {
      const DurabilityStats ds = durable->durability_stats();
      out << "durability: journal_appends=" << ds.journal.appends
          << " fsyncs=" << ds.journal.fsyncs << " snapshots=" << ds.snapshots
          << " recovered=" << ds.recovery.replayed_registers
          << " dropped=" << ds.recovery.dropped()
          << " salvaged_bytes=" << ds.recovery.salvaged_bytes() << '\n';
    }
    out << "breakers:";
    for (std::size_t s = 0; s < router.shards(); ++s)
      for (std::size_t r = 0; r < router.replicas(); ++r)
        out << " shard" << s << ".replica" << r << "="
            << to_string(router.replica_breaker_state(s, r));
    out << '\n';
    for (int c = 0; c < 2; ++c) {
      const RunningStat& stc = latency_us[c];
      if (stc.count() == 0) continue;
      out << (c == 0 ? "interactive" : "batch") << " latency us: p50="
          << stc.p50() << " p95=" << stc.p95() << " p99=" << stc.p99()
          << '\n';
    }
    if (slo.total() > 0)
      out << "slo: target_p99_ms=" << slo_p99_ms << " good="
          << (slo.total() - slo.bad()) << " bad=" << slo.bad()
          << " burn_rate_long=" << slo_long.burn_rate << '\n';
    if (flight)
      out << "flight: recorded=" << flight->recorded() << " dropped="
          << flight->dropped() << " retained=" << flight->retained().size()
          << '\n';
  }
  // A failed request (unrecovered rows) is a serving error; shed load under
  // overload is the design working as intended and stays exit 0.
  return rt.failed == 0 ? 0 : 1;
}

/// `sysrle store fsck <dir> [--json]`: read-only integrity check of a
/// durable store directory.  Verifies file structure, record CRCs, SRLB
/// parseability, and every image's canonical fingerprint against its handle
/// without modifying a byte.  Exit 0 when the directory would recover with
/// nothing salvaged or dropped, 1 when fsck found issues (recovery would
/// still succeed — by salvaging/dropping what fsck flagged), 2 on usage.
int cmd_store(ArgParser& args, std::ostream& out) {
  args.parse({});
  const auto& pos = args.positional();
  if (pos.size() != 2 || pos[0] != "fsck")
    usage_error("store fsck <dir> [--json]");
  const std::string& dir = pos[1];
  if (!std::filesystem::is_directory(dir))
    throw contract_error("store fsck: not an existing directory: " + dir);

  const FsckReport report = fsck_store_dir(dir);
  if (args.has("--json")) {
    JsonWriter w(out);
    w.begin_object();
    w.member("schema", "sysrle.fsck.v1");
    w.member("dir", dir);
    w.key("snapshot");
    w.begin_object();
    w.member("present", report.snapshot_present);
    w.member("header_ok", report.snapshot_header_ok);
    w.member("entries", report.snapshot_entries);
    w.member("salvaged_tail_bytes", report.snapshot_salvaged_bytes);
    w.member("tail_reason", report.snapshot_tail_reason);
    w.end_object();
    w.key("journal");
    w.begin_object();
    w.member("present", report.journal_present);
    w.member("header_ok", report.journal_header_ok);
    w.member("registers", report.journal_registers);
    w.member("evicts", report.journal_evicts);
    w.member("salvaged_tail_bytes", report.journal_salvaged_bytes);
    w.member("tail_reason", report.journal_tail_reason);
    w.end_object();
    w.member("verified_images", report.verified_images);
    w.member("malformed_images", report.malformed_images);
    w.member("fingerprint_mismatches", report.fingerprint_mismatches);
    w.member("clean", report.clean());
    w.end_object();
    out << '\n';
  } else {
    out << "snapshot: present=" << (report.snapshot_present ? "true" : "false")
        << " header_ok=" << (report.snapshot_header_ok ? "true" : "false")
        << " entries=" << report.snapshot_entries
        << " salvaged_tail_bytes=" << report.snapshot_salvaged_bytes;
    if (!report.snapshot_tail_reason.empty())
      out << " tail_reason=" << report.snapshot_tail_reason;
    out << '\n';
    out << "journal: present=" << (report.journal_present ? "true" : "false")
        << " header_ok=" << (report.journal_header_ok ? "true" : "false")
        << " registers=" << report.journal_registers
        << " evicts=" << report.journal_evicts
        << " salvaged_tail_bytes=" << report.journal_salvaged_bytes;
    if (!report.journal_tail_reason.empty())
      out << " tail_reason=" << report.journal_tail_reason;
    out << '\n';
    out << "images: verified=" << report.verified_images
        << " malformed=" << report.malformed_images
        << " fingerprint_mismatches=" << report.fingerprint_mismatches << '\n';
    out << (report.clean() ? "clean" : "issues found") << '\n';
  }
  return report.clean() ? 0 : 1;
}

int cmd_verilog(ArgParser& args, std::ostream& out) {
  args.parse({"--bits", "--cells", "--prefix"});
  if (args.positional().size() != 1)
    usage_error("verilog <outdir> [--bits W] [--cells N] [--prefix P]");
  const std::string dir = args.positional()[0];
  VerilogOptions options;
  options.word_bits = static_cast<unsigned>(args.get_int("--bits", 20));
  options.module_prefix = args.get("--prefix", "sysrle");
  const std::size_t cells =
      static_cast<std::size_t>(args.get_int("--cells", 64));

  std::filesystem::create_directories(dir);
  auto emit = [&](const std::string& name, const std::string& text) {
    const std::string path = dir + "/" + options.module_prefix + name;
    std::ofstream f(path);
    SYSRLE_REQUIRE(f.is_open(), "cannot open for write: " + path);
    f << text;
    out << "wrote " << path << '\n';
  };
  emit("_cell.v", generate_cell_verilog(options));
  emit("_array.v", generate_array_verilog(options, cells));
  emit("_tb.v", generate_testbench_verilog(options, std::max<std::size_t>(cells, 6)));
  return 0;
}

void print_help(std::ostream& out) {
  out << "sysrle — compressed-domain binary image tool\n"
         "  (systolic RLE image difference; Ercal, Allen, Feng; IPPS 1999)\n\n"
         "usage: sysrle [--metrics FILE] [--trace-out FILE] [--simd LEVEL]\n"
         "              <command> [args]\n\n"
         "commands:\n"
         "  diff <a> <b> [-o FILE] [--engine E] [--threads N] [--canonical]\n"
         "      [--stats] [--json]   XOR two images in the compressed domain.\n"
         "  inspect <ref> <scan> [--align R] [--min-area N] [--engine E]\n"
         "      [--threads N]\n"
         "      reference-based inspection; exit 1 when defects are found.\n"
         "  gen pcb|random <out> [--seed N] [--width W] [--height H]\n"
         "      [--density D] [--defects N]   generate synthetic workloads.\n"
         "  convert <in> <out>   convert between PBM and sysrle RLE.\n"
         "  stats <file> [--json]   print image statistics.\n"
         "  perf [--rows N] [--width W] [--seed S] [--error F] [--engine E]\n"
         "      [--threads N]\n"
         "      run a synthetic workload through the streaming differ and\n"
         "      the row-parallel image differ; print a machine-readable\n"
         "      sysrle.perf.v1 JSON report.\n"
         "  verilog <outdir> [--bits W] [--cells N] [--prefix P]\n"
         "      emit synthesizable RTL for the Figure-2 machine.\n"
         "  trace \"<s,l> <s,l> ...\" \"<s,l> ...\" [--cells N]\n"
         "      print a Figure-3-style execution trace for two rows.\n"
         "  campaign [--rows N] [--width W] [--seed S] [--error F]\n"
         "      [--kind K] [--model M] [--retries R] [--cell-stride N]\n"
         "      [--no-fallback] [--csv]\n"
         "      fault-injection campaign through the checked engine;\n"
         "      exit 1 on silent corruption or unrecovered rows.\n"
         "  serve --requests <file|-> [--workers N] [--queue-cap M]\n"
         "      [--deadline-ms D] [--seed S] [--engine E] [--shards N]\n"
         "      [--replicas R] [--hedge-ms H] [--flight-recorder N]\n"
         "      [--flight-out FILE] [--flight-trace FILE] [--slo-p99-ms D]\n"
         "      [--kill-replica S.R@K] [--store] [--store-dir DIR]\n"
         "      [--snapshot-every N] [--store-cap-mb N]\n"
         "      [--cache-cap-mb N] [--checked] [--json]\n"
         "      run a request file through the overload-safe sharded service\n"
         "      (bounded admission, deadlines, retry budget, breakers,\n"
         "      hedging, coalescing); request lines: 'priority rows width\n"
         "      error [deadline_ms]'; --workers 0 sizes the pool from the\n"
         "      hardware.  --flight-recorder N keeps the last N per-request\n"
         "      events in a lock-free ring; --flight-out dumps them as\n"
         "      sysrle.flight.v1 JSONL, --flight-trace as a Chrome trace.\n"
         "      --kill-replica S.R@K kills shard S replica R after K\n"
         "      submissions (failover drill).  --store enables the session\n"
         "      image store + result cache and the request-file verbs\n"
         "      'register <name> <rows> <width> [density]' and\n"
         "      'diff-handles <priority> <a> <b> [deadline_ms]'; the second\n"
         "      identical by-handle diff is served from the cache without\n"
         "      invoking an engine.  --store-dir DIR (implies --store) makes\n"
         "      the store durable: registrations and evictions are journaled\n"
         "      (CRC-checksummed write-ahead log, fsync before ack), the\n"
         "      resident set is compacted into an atomic snapshot every\n"
         "      --snapshot-every records, and startup recovers the previous\n"
         "      session's images — re-verifying every canonical fingerprint,\n"
         "      so a corrupted at-rest byte is dropped, never served.\n"
         "  store fsck <dir> [--json]\n"
         "      read-only integrity check of a --store-dir directory\n"
         "      (structure, record CRCs, fingerprint match per image);\n"
         "      exit 0 clean, 1 issues found.\n"
         "  help                 this message.\n\n"
         "global options (any command):\n"
         "  --metrics FILE    write a sysrle.metrics.v1 JSON snapshot of all\n"
         "                    telemetry recorded during the command.\n"
         "  --trace-out FILE  write a Chrome trace_event file loadable by\n"
         "                    chrome://tracing and Perfetto.\n"
         "  --simd LEVEL      dispatch level of the word-parallel sequential\n"
         "                    engine: scalar | swar64 | avx2 | neon.  Default\n"
         "                    is the widest level this host supports; the\n"
         "                    SYSRLE_SIMD environment variable sets the same\n"
         "                    knob (--simd wins).  Unsupported levels are a\n"
         "                    usage error, never a silent downgrade.\n\n"
         "engines: systolic (default) | bus | sequential | sweep | pixel |\n"
         "         adaptive (per-row systolic/sequential by run-count shape)\n"
         "threads: --threads N forces N row workers (N >= 1); omitted or 0\n"
         "         sizes the pool from the hardware (1 when unknown)\n"
         "formats: auto-detected on read; chosen by extension on write\n"
         "         (.pbm, .srlt = text RLE, otherwise binary RLE)\n";
}

}  // namespace

int run_cli(const std::vector<std::string>& args_in, std::ostream& out,
            std::ostream& err) {
  // Global telemetry flags are stripped before subcommand dispatch so every
  // command accepts them uniformly; the export happens after the command
  // finishes, success or failure, so a crash-adjacent run still leaves data.
  std::vector<std::string> args;
  std::string metrics_path;
  std::string trace_path;
  std::string simd_name;
  args.reserve(args_in.size());
  for (std::size_t i = 0; i < args_in.size(); ++i) {
    const std::string& a = args_in[i];
    if (a == "--metrics" || a == "--trace-out" || a == "--simd") {
      if (i + 1 >= args_in.size()) {
        err << "sysrle: usage: missing value for " << a << '\n';
        return 2;
      }
      if (a == "--metrics") metrics_path = args_in[++i];
      else if (a == "--trace-out") trace_path = args_in[++i];
      else simd_name = args_in[++i];
    } else {
      args.push_back(a);
    }
  }
  // Resolve the sequential engine's dispatch level before any command runs.
  // --simd wins over the SYSRLE_SIMD environment variable; a typo or a
  // level this host/build cannot run is a usage error, not a silent
  // downgrade to a different engine than the operator asked for.
  if (!simd_name.empty()) {
    try {
      set_simd_level(parse_simd_level(simd_name));
    } catch (const std::exception& e) {
      err << "sysrle: --simd: " << e.what() << '\n';
      return 2;
    }
  }
  // Fail fast on an unwritable telemetry destination: a long run must not
  // discover at export time that its data has nowhere to go.  The append-
  // mode probe creates a missing file but never truncates an existing one.
  for (const std::string* path : {&metrics_path, &trace_path}) {
    if (path->empty()) continue;
    std::ofstream probe(*path, std::ios::app);
    if (!probe.is_open()) {
      err << "sysrle: cannot open telemetry output for writing: " << *path
          << '\n';
      return 2;
    }
  }
  const bool telemetry = !metrics_path.empty() || !trace_path.empty();
  if (telemetry) {
    reset_telemetry();
    set_telemetry_enabled(true);
  }

  int rc = 2;
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      print_help(out);
      rc = 0;
    } else {
      const std::string command = args[0];
      ArgParser rest(std::vector<std::string>(args.begin() + 1, args.end()));
      if (command == "diff") rc = cmd_diff(rest, out);
      else if (command == "inspect") rc = cmd_inspect(rest, out);
      else if (command == "gen") rc = cmd_gen(rest, out);
      else if (command == "convert") rc = cmd_convert(rest, out);
      else if (command == "stats") rc = cmd_stats(rest, out);
      else if (command == "perf") rc = cmd_perf(rest, out);
      else if (command == "verilog") rc = cmd_verilog(rest, out);
      else if (command == "trace") rc = cmd_trace(rest, out);
      else if (command == "campaign") rc = cmd_campaign(rest, out);
      else if (command == "serve") rc = cmd_serve(rest, out);
      else if (command == "store") rc = cmd_store(rest, out);
      else usage_error("unknown command '" + command + "' (try: sysrle help)");
    }
  } catch (const std::exception& e) {
    err << "sysrle: " << e.what() << '\n';
    rc = 2;
  } catch (...) {
    err << "sysrle: unknown error\n";
    rc = 2;
  }

  if (telemetry) {
    set_telemetry_enabled(false);
    try {
      if (!metrics_path.empty())
        write_metrics_json_file(global_metrics().snapshot(), metrics_path);
      if (!trace_path.empty())
        write_chrome_trace_file(global_tracer(), trace_path);
    } catch (const std::exception& e) {
      err << "sysrle: telemetry export failed: " << e.what() << '\n';
      rc = 2;
    }
  }
  return rc;
}

}  // namespace sysrle
