#pragma once
// The `sysrle` command-line tool, as a testable library function.  The thin
// main() in tools/sysrle.cpp forwards argv here; tests drive run_cli with
// string vectors and stream captures.
//
// Subcommands:
//   diff <a> <b> [-o FILE] [--engine E] [--canonical] [--stats]
//   inspect <ref> <scan> [--align R] [--min-area N] [--engine E]
//   gen pcb|random <out> [--seed N] [--width W] [--height H]
//                        [--density D] [--defects N]
//   convert <in> <out>
//   stats <file>
//   help
//
// Image files are auto-detected by magic: PBM ("P1"/"P4") or sysrle RLE
// ("SRLT"/"SRLB").  Output format follows the file extension: .pbm writes
// PBM, .srlt writes text RLE, anything else writes binary RLE.

#include <iosfwd>
#include <string>
#include <vector>

namespace sysrle {

/// Runs the CLI.  Returns the process exit code: 0 on success, 1 for an
/// inspection FAIL verdict, 2 for usage/runtime errors.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace sysrle
