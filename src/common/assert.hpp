#pragma once
// Contract checking for sysrle.
//
// The library is a simulator whose results back quantitative claims, so
// precondition violations must never be silently ignored: all checks are
// enabled in every build type and raise sysrle::contract_error.  Hot inner
// loops use SYSRLE_DCHECK, which compiles away in NDEBUG builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sysrle {

/// Thrown when a SYSRLE_REQUIRE / SYSRLE_ENSURE / SYSRLE_CHECK fails.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}

}  // namespace detail
}  // namespace sysrle

/// Precondition check, always on.
#define SYSRLE_REQUIRE(cond, msg)                                              \
  do {                                                                         \
    if (!(cond))                                                               \
      ::sysrle::detail::contract_fail("precondition", #cond, __FILE__,         \
                                      __LINE__, (msg));                        \
  } while (false)

/// Postcondition check, always on.
#define SYSRLE_ENSURE(cond, msg)                                               \
  do {                                                                         \
    if (!(cond))                                                               \
      ::sysrle::detail::contract_fail("postcondition", #cond, __FILE__,        \
                                      __LINE__, (msg));                        \
  } while (false)

/// Internal invariant check, always on.
#define SYSRLE_CHECK(cond, msg)                                                \
  do {                                                                         \
    if (!(cond))                                                               \
      ::sysrle::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,  \
                                      (msg));                                  \
  } while (false)

/// Debug-only invariant check for hot paths; vanishes under NDEBUG.
#ifdef NDEBUG
#define SYSRLE_DCHECK(cond, msg) static_cast<void>(0)
#else
#define SYSRLE_DCHECK(cond, msg) SYSRLE_CHECK(cond, msg)
#endif
