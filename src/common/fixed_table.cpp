#include "common/fixed_table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace sysrle {

void FixedTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void FixedTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string FixedTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell;
      if (c + 1 < cols) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string FixedTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string FixedTable::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string FixedTable::num(std::int64_t v) { return std::to_string(v); }
std::string FixedTable::num(std::uint64_t v) { return std::to_string(v); }

}  // namespace sysrle
