#pragma once
// Minimal aligned-text / CSV table printer used by the benchmark harnesses to
// regenerate the paper's tables and figure data series.

#include <string>
#include <vector>

namespace sysrle {

/// Collects rows of string cells and renders them either as an aligned,
/// human-readable text table (like the paper's Table 1) or as CSV suitable
/// for re-plotting Figure 5.
class FixedTable {
 public:
  /// Sets the column headers; resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Appends one data row.  Rows may be ragged; missing cells print empty.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders an aligned text table with a header underline.
  std::string str() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline quoted).
  std::string csv() const;

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);

  /// Formats an integral value.
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sysrle
