#include "common/stats.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace sysrle {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double pearson(std::span<const double> x, std::span<const double> y) {
  SYSRLE_REQUIRE(x.size() == y.size(), "pearson: series length mismatch");
  const std::size_t n = x.size();
  if (n == 0) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double v : xs) s += v;
  return s / static_cast<double>(xs.size());
}

}  // namespace sysrle
