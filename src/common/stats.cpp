#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sysrle {

QuantileReservoir::QuantileReservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void QuantileReservoir::add(double x) {
  ++n_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Algorithm R: the new observation replaces a random slot with probability
  // capacity/n.  splitmix64 keeps the decision sequence deterministic.
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::uint64_t slot = z % n_;
  if (slot < capacity_) sample_[static_cast<std::size_t>(slot)] = x;
}

double QuantileReservoir::quantile(double q) const {
  SYSRLE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted(sample_);
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  reservoir_.add(x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double pearson(std::span<const double> x, std::span<const double> y) {
  SYSRLE_REQUIRE(x.size() == y.size(), "pearson: series length mismatch");
  const std::size_t n = x.size();
  if (n == 0) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double v : xs) s += v;
  return s / static_cast<double>(xs.size());
}

}  // namespace sysrle
