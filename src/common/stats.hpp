#pragma once
// Small statistics helpers used by the experiment harnesses and the
// telemetry layer: running moments (Welford), order statistics via a bounded
// reservoir (p50/p95/p99), Pearson correlation (the paper's Figure-5 claim
// is a correlation statement), and simple min/max tracking.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sysrle {

/// Bounded sample of an observation stream for quantile estimation.
///
/// Exact while the stream fits in `capacity` samples; beyond that, classic
/// reservoir sampling (Algorithm R) keeps a uniform subsample.  The
/// replacement decisions come from an internal fixed-seed generator, so a
/// given insertion sequence always yields the same reservoir — results are
/// reproducible across runs and machines.
class QuantileReservoir {
 public:
  explicit QuantileReservoir(std::size_t capacity = kDefaultCapacity);

  /// Admits one observation.
  void add(double x);

  /// Total observations offered (not the retained sample size).
  std::uint64_t count() const { return n_; }

  /// Retained sample size (== count() until the reservoir saturates).
  std::size_t sample_size() const { return sample_.size(); }

  /// Quantile q in [0, 1] with linear interpolation between order
  /// statistics.  Returns 0 when empty; exact below `capacity` samples and
  /// a uniform-subsample estimate beyond.
  double quantile(double q) const;

  static constexpr std::size_t kDefaultCapacity = 512;

 private:
  std::size_t capacity_;
  std::uint64_t n_ = 0;
  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;  // splitmix64 state
  std::vector<double> sample_;
};

/// Numerically stable running mean/variance accumulator (Welford's method)
/// with an attached QuantileReservoir for p50/p95/p99.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Mean of the observations (0 if empty).
  double mean() const { return mean_; }

  /// Unbiased sample variance (0 if fewer than two observations).
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest / largest observation (0 if empty).
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Quantile q in [0, 1] from the attached reservoir (see
  /// QuantileReservoir::quantile for exactness).  0 if empty.
  double quantile(double q) const { return reservoir_.quantile(q); }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  QuantileReservoir reservoir_;
};

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or the series are empty.
double pearson(std::span<const double> x, std::span<const double> y);

/// Arithmetic mean of a series (0 if empty).
double mean_of(std::span<const double> xs);

}  // namespace sysrle
