#pragma once
// Small statistics helpers used by the experiment harnesses: running moments
// (Welford), Pearson correlation (the paper's Figure-5 claim is a correlation
// statement), and simple min/max tracking.

#include <cstddef>
#include <span>

namespace sysrle {

/// Numerically stable running mean/variance accumulator (Welford's method).
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Mean of the observations (0 if empty).
  double mean() const { return mean_; }

  /// Unbiased sample variance (0 if fewer than two observations).
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest / largest observation (0 if empty).
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or the series are empty.
double pearson(std::span<const double> x, std::span<const double> y);

/// Arithmetic mean of a series (0 if empty).
double mean_of(std::span<const double> xs);

}  // namespace sysrle
