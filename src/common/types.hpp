#pragma once
// Fundamental scalar types shared across sysrle modules.

#include <cstddef>
#include <cstdint>

namespace sysrle {

/// Pixel position within a row.  Signed 64-bit so that closed-interval cell
/// arithmetic (end + 1, start - 1) can never overflow or wrap for any
/// realistic image width, and so that "one before position 0" is expressible.
using pos_t = std::int64_t;

/// Length of a run in pixels (always > 0 for a stored run).
using len_t = std::int64_t;

/// Index of a cell in the systolic array.
using cell_index_t = std::size_t;

/// Iteration / cycle counter for the simulator.
using cycle_t = std::uint64_t;

}  // namespace sysrle
