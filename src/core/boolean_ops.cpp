#include "core/boolean_ops.hpp"

#include "core/systolic_diff.hpp"
#include "core/union_variant.hpp"

namespace sysrle {

BooleanOpResult systolic_and(const RleRow& a, const RleRow& b) {
  BooleanOpResult result;

  // Pass 1: A XOR B on the paper's machine.
  SystolicConfig cfg;
  cfg.canonicalize_output = true;
  SystolicResult x = systolic_xor(a, b, cfg);
  result.counters += x.counters;
  ++result.passes;

  // Pass 2: A OR B on the union machine.
  UnionResult u = systolic_or(a, b);
  result.counters += u.counters;
  ++result.passes;

  // Pass 3: (A XOR B) XOR (A OR B) = A AND B.
  SystolicResult final_pass =
      systolic_xor(x.output, u.output.canonical(), cfg);
  result.counters += final_pass.counters;
  ++result.passes;

  result.output = std::move(final_pass.output);
  return result;
}

BooleanOpResult systolic_subtract(const RleRow& a, const RleRow& b) {
  // A \ B = A XOR (A AND B).
  BooleanOpResult inner = systolic_and(a, b);
  SystolicConfig cfg;
  cfg.canonicalize_output = true;
  SystolicResult final_pass = systolic_xor(a, inner.output, cfg);
  BooleanOpResult result;
  result.output = std::move(final_pass.output);
  result.counters = inner.counters;
  result.counters += final_pass.counters;
  result.passes = inner.passes + 1;
  return result;
}

}  // namespace sysrle
