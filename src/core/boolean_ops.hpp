#pragma once
// A complete Boolean algebra on the systolic array — our extension.
//
// The XOR machine (the paper) and the union machine (our OR variant) are
// the only ops directly computable on the provenance-free cell state; AND
// is not multiset-definable.  But AND decomposes into the two machine ops:
//
//     A AND B  =  (A XOR B) XOR (A OR B)
//
// (truth-table check: 1,1 -> 0^1 = 1; 1,0 -> 1^1 = 0; 0,0 -> 0), and set
// difference follows as
//
//     A \ B    =  A XOR (A AND B).
//
// So three machine passes compute AND and four compute difference, all on
// unmodified Figure-2 hardware.  Pass counters are summed so the cost of
// the composition is visible.

#include "rle/rle_row.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// Result of a composed multi-pass Boolean operation.
struct BooleanOpResult {
  RleRow output;              ///< canonical result row
  SystolicCounters counters;  ///< summed over all machine passes
  std::size_t passes = 0;     ///< machine passes executed
};

/// A AND B via (A XOR B) XOR (A OR B): three passes on the array.
BooleanOpResult systolic_and(const RleRow& a, const RleRow& b);

/// A \ B (pixels of A not in B) via A XOR (A AND B): four passes.
BooleanOpResult systolic_subtract(const RleRow& a, const RleRow& b);

}  // namespace sysrle
