#include "core/bus_variant.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "systolic/linear_array.hpp"

namespace sysrle {
namespace {

/// True when the travelling run `r` would pass straight through cell `c` in
/// the pure machine: the cell's settled run lies entirely before `r`, so
/// step 1 does not swap and step 2 is the identity.
bool pass_through(const DiffCell& c, const Run& r) {
  return c.reg_small().has_value() && c.reg_small()->end() < r.start;
}

}  // namespace

BusResult bus_systolic_xor(const RleRow& a, const RleRow& b,
                           const BusConfig& config) {
  const std::size_t k1 = a.run_count();
  const std::size_t k2 = b.run_count();
  const std::size_t n =
      config.capacity ? config.capacity : std::max<std::size_t>(k1 + k2 + 1, 1);
  SYSRLE_REQUIRE(n >= std::max(k1, k2),
                 "bus_systolic_xor: capacity below input run count");

  LinearArray<DiffCell> array(n);
  for (std::size_t i = 0; i < k1; ++i) array.cell(i).load_small(a[i]);
  for (std::size_t i = 0; i < k2; ++i) array.cell(i).load_big(b[i]);

  SystolicCounters counters;
  const cycle_t bound = k1 + k2;

  while (!array.all_of([](const DiffCell& c) { return c.complete(); })) {
    ++counters.iterations;
    SYSRLE_CHECK(counters.iterations <= bound,
                 "bus variant ran past the Theorem-1 bound");

    // Steps 1 and 2 exactly as in the pure machine.
    array.for_each([&counters](DiffCell& c) {
      switch (c.order()) {
        case OrderAction::kSwapped:
          ++counters.swaps;
          break;
        case OrderAction::kPromoted:
          ++counters.promotions;
          break;
        case OrderAction::kNone:
          break;
      }
    });
    array.for_each([&counters](DiffCell& c) {
      if (c.xor_step()) ++counters.xors;
    });

    // Routing phase: collect every travelling run, then deliver each to the
    // first unclaimed non-pass-through cell to its right.  Destinations are
    // assigned left to right and kept strictly increasing, which preserves
    // the RegBig lane ordering (Theorem 2).
    std::vector<std::pair<cell_index_t, Run>> travelling;
    for (cell_index_t i = 0; i < n; ++i) {
      std::optional<Run> v = array.cell(i).take_big();
      if (v) travelling.emplace_back(i, *v);
    }

    std::uint64_t long_hops = 0;
    std::size_t prev_dest = 0;
    bool have_prev = false;
    for (const auto& [from, run] : travelling) {
      cell_index_t j = have_prev ? std::max(from, prev_dest) + 1 : from + 1;
      while (j < n && pass_through(array.cell(j), run)) ++j;
      SYSRLE_CHECK(j < n, "bus variant: no destination cell for a run");
      array.cell(j).load_big(run);
      prev_dest = j;
      have_prev = true;
      ++counters.shifts;
      if (j - from > 1) {
        ++long_hops;
        ++counters.bus_moves;
      }
    }

    // A finite bus of width w serialises the long hops: the first batch
    // rides the iteration's own cycle, each further batch costs one extra.
    if (config.bus_width > 0 && long_hops > 0) {
      const std::uint64_t batches =
          (long_hops + config.bus_width - 1) / config.bus_width;
      counters.bus_cycles += batches - 1;
    }
  }

  // Gather the RegSmall lane.
  std::vector<Run> runs;
  for (cell_index_t i = 0; i < n; ++i)
    if (array.cell(i).reg_small()) runs.push_back(*array.cell(i).reg_small());

  BusResult result;
  result.output = RleRow(std::move(runs));
  if (config.canonicalize_output) result.output.canonicalize();
  result.counters = counters;
  return result;
}

}  // namespace sysrle
