#pragma once
// Broadcast-bus accelerated variant of the systolic machine — the paper's
// section-6 future-work proposal: "If a broadcast bus existed which could run
// at the same frequency as the rest of the systolic system, it might be
// possible to perform these shifts more efficiently."
//
// Model (documented in DESIGN.md): steps 1 and 2 are unchanged.  Step 3 is
// replaced by *routing*: every travelling run (non-empty RegBig) is delivered
// directly to the first cell to its right where the pure machine would do
// real work with it — a cell whose RegSmall is empty (the run settles there
// next iteration) or whose RegSmall run interacts with it (swap or non-trivial
// XOR).  Cells whose RegSmall run lies entirely before the travelling run are
// pure pass-throughs in the original algorithm (step 2 is the identity
// there), so skipping them preserves semantics; the property tests verify the
// output is bit-identical to the sequential XOR.  When two displaced runs
// contend for the same destination, the later (right) one is placed one cell
// beyond it — lane ordering is preserved, at the cost of one extra iteration
// in rare inputs; on average the variant is at least as fast as the pure
// machine and usually much faster.
//
// Costing: a delivery of distance 1 is an ordinary systolic shift (free —
// it happens inside the iteration's cycle).  A longer hop is a bus
// transaction; a bus of width `bus_width` completes ceil(moves / width)
// transactions per cycle, serialised after the compute step.  `bus_width = 0`
// means an infinitely wide bus (all hops in the iteration's own cycle).

#include <cstddef>

#include "core/systolic_diff.hpp"
#include "rle/rle_row.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// Configuration for the bus-assisted machine.
struct BusConfig {
  /// Cells; 0 = automatic (k1 + k2 + 1), as in SystolicConfig.
  std::size_t capacity = 0;

  /// Runs delivered per bus cycle; 0 = unbounded bus.
  std::size_t bus_width = 0;

  /// Canonicalize the gathered output.
  bool canonicalize_output = false;
};

/// Result of a bus-assisted run.  counters.iterations counts main-loop
/// iterations; counters.bus_cycles counts the extra serialisation cycles a
/// finite bus needs; total_cycles() is the end-to-end time in cycles.
struct BusResult {
  RleRow output;
  SystolicCounters counters;

  cycle_t total_cycles() const {
    return counters.iterations + counters.bus_cycles;
  }
};

/// Runs the bus-assisted systolic XOR of two RLE rows.
BusResult bus_systolic_xor(const RleRow& a, const RleRow& b,
                           const BusConfig& config = {});

}  // namespace sysrle
