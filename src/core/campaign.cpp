#include "core/campaign.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "workload/rng.hpp"

namespace sysrle {

CampaignCounts& CampaignCounts::operator+=(const CampaignCounts& o) {
  trials += o.trials;
  clean += o.clean;
  detected += o.detected;
  recovered_by_retry += o.recovered_by_retry;
  fell_back += o.fell_back;
  unrecovered += o.unrecovered;
  silent_corruptions += o.silent_corruptions;
  wasted_cycles += o.wasted_cycles;
  return *this;
}

namespace {

/// Runs one trial and folds its outcome into `counts`.
void run_trial(const RleRow& ra, const RleRow& rb, const RleRow& truth,
               const FaultSpec& spec, const RecoveryPolicy& policy,
               CampaignCounts& counts) {
  FaultArbiter arbiter(spec);
  FaultInjection injection{&spec, &arbiter};
  const CheckedRowResult r = checked_xor(ra, rb, policy, injection);

  ++counts.trials;
  if (r.record.faulty()) ++counts.detected;
  switch (r.record.outcome) {
    case RecoveryOutcome::kCleanFirstTry:
      if (!r.record.faulty()) ++counts.clean;
      break;
    case RecoveryOutcome::kRecoveredByRetry:
      ++counts.recovered_by_retry;
      break;
    case RecoveryOutcome::kFellBack:
      ++counts.fell_back;
      break;
    case RecoveryOutcome::kUnrecovered:
      ++counts.unrecovered;
      break;
  }
  if (r.record.ok() && r.output.canonical() != truth.canonical())
    ++counts.silent_corruptions;
  // Cycles beyond the accepted attempt were the price of recovery.
  if (!r.record.attempts.empty()) {
    const cycle_t useful = r.record.outcome == RecoveryOutcome::kFellBack ||
                                   r.record.outcome ==
                                       RecoveryOutcome::kUnrecovered
                               ? 0
                               : r.record.attempts.back().iterations;
    counts.wasted_cycles += r.record.total_cycles - useful;
  }
}

}  // namespace

CampaignResult run_fault_campaign(const RleImage& a, const RleImage& b,
                                  const CampaignConfig& config) {
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "run_fault_campaign: image dimensions differ");
  SYSRLE_REQUIRE(config.cell_stride >= 1,
                 "run_fault_campaign: cell_stride must be >= 1");

  const std::vector<FaultKind> kinds =
      config.kinds.empty()
          ? std::vector<FaultKind>{FaultKind::kNoSwap,
                                   FaultKind::kCorruptXorEnd,
                                   FaultKind::kDropShift,
                                   FaultKind::kStuckCompleteHigh}
          : config.kinds;
  const std::vector<FaultActivation> activations =
      config.activations.empty()
          ? std::vector<FaultActivation>{FaultActivation::kPermanent,
                                         FaultActivation::kTransient,
                                         FaultActivation::kIntermittent}
          : config.activations;

  CampaignResult result;
  for (const FaultKind kind : kinds)
    for (const FaultActivation activation : activations)
      result.groups.push_back({kind, activation, {}});

  Rng rng(config.seed);
  for (pos_t y = 0; y < a.height(); ++y) {
    const RleRow& ra = a.row(y);
    const RleRow& rb = b.row(y);
    const RleRow truth = xor_rows(ra, rb);  // independent ground truth
    const std::size_t cells = ra.run_count() + rb.run_count() + 1;
    const cycle_t budget =
        static_cast<cycle_t>(ra.run_count() + rb.run_count());

    std::size_t group = 0;
    for (const FaultKind kind : kinds) {
      for (const FaultActivation activation : activations) {
        CampaignCounts& counts = result.groups[group++].counts;
        for (cell_index_t cell = 0; cell < cells;
             cell += config.cell_stride) {
          FaultSpec spec;
          spec.kind = kind;
          spec.cell = cell;
          spec.activation = activation;
          // Transient glitches land somewhere inside the Theorem-1 budget;
          // intermittent contacts flip a fair-ish coin with its own seed.
          spec.window_start = static_cast<cycle_t>(
              rng.uniform(1, std::max<std::int64_t>(
                                 1, static_cast<std::int64_t>(budget))));
          spec.window_length = static_cast<cycle_t>(rng.uniform(1, 3));
          spec.probability = 0.25 + 0.5 * rng.uniform01();
          spec.seed = rng.next_u64();
          run_trial(ra, rb, truth, spec, config.policy, counts);
        }
      }
    }
  }

  for (const CampaignResult::Group& g : result.groups)
    result.total += g.counts;
  return result;
}

}  // namespace sysrle
