#pragma once
// Fault-injection campaign harness: sweeps FaultKind × activation × cell ×
// row over a workload, runs every trial through the checked engine
// (core/checked_diff), and aggregates what the resilience layer achieved —
// how many faults were detected, recovered by retry, absorbed by fallback,
// and, the number that must be zero, how many corrupted a row silently or
// left it uncomputed.  This is the experiment that certifies the combination
// "section-4 checkers + watchdog + retry + sequential fallback" as a
// fault-tolerant execution layer; `sysrle campaign` is its CLI face.

#include <cstdint>
#include <vector>

#include "core/checked_diff.hpp"
#include "core/faults.hpp"
#include "rle/rle_image.hpp"

namespace sysrle {

/// Campaign sweep configuration.
struct CampaignConfig {
  /// Fault kinds to inject (empty = all four).
  std::vector<FaultKind> kinds;

  /// Activation regimes to sweep (empty = all three).
  std::vector<FaultActivation> activations;

  /// Recovery policy handed to the checked engine for every trial.
  RecoveryPolicy policy;

  /// Inject into every cell_stride-th cell of each row's array (1 = every
  /// cell).  Raising the stride thins the sweep for quick smoke runs.
  std::size_t cell_stride = 1;

  /// Seeds the transient windows and intermittent coin flips.
  std::uint64_t seed = 1;
};

/// Aggregated trial outcomes.
struct CampaignCounts {
  std::uint64_t trials = 0;
  /// The fault never fired observably; first attempt accepted.
  std::uint64_t clean = 0;
  /// At least one attempt saw a checker detection or watchdog timeout.
  std::uint64_t detected = 0;
  /// Accepted on a retry after a detection.
  std::uint64_t recovered_by_retry = 0;
  /// Computed by the sequential fallback engine.
  std::uint64_t fell_back = 0;
  /// No engine produced the row (possible only with fallback disabled).
  std::uint64_t unrecovered = 0;
  /// Accepted output differed from ground truth — a checker gap.  The
  /// acceptance bar for the resilience layer is zero.
  std::uint64_t silent_corruptions = 0;
  /// Extra systolic cycles burned on failed attempts (the recovery tax).
  cycle_t wasted_cycles = 0;

  CampaignCounts& operator+=(const CampaignCounts& o);
};

/// Campaign outcome: totals plus a per-(kind, activation) breakdown.
struct CampaignResult {
  CampaignCounts total;

  struct Group {
    FaultKind kind;
    FaultActivation activation;
    CampaignCounts counts;
  };
  std::vector<Group> groups;

  /// True when every injected fault was either harmless, retried away, or
  /// absorbed by fallback — and nothing was silently wrong.
  bool all_recovered() const {
    return total.silent_corruptions == 0 && total.unrecovered == 0;
  }
};

/// Runs the sweep over every row pair of the two images (dimensions must
/// match).  For each (row, kind, activation) the fault is planted in every
/// cell_stride-th cell of that row's array; each trial's accepted output is
/// judged against the ground-truth XOR computed independently.
CampaignResult run_fault_campaign(const RleImage& a, const RleImage& b,
                                  const CampaignConfig& config = {});

}  // namespace sysrle
