#include "core/checked_diff.hpp"

#include <optional>
#include <utility>

#include "baseline/sequential_diff.hpp"
#include "baseline/word_diff.hpp"
#include "common/assert.hpp"
#include "core/invariants.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

const char* to_string(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kCleanFirstTry:
      return "clean";
    case RecoveryOutcome::kRecoveredByRetry:
      return "recovered-by-retry";
    case RecoveryOutcome::kFellBack:
      return "fell-back";
    case RecoveryOutcome::kUnrecovered:
      return "unrecovered";
  }
  return "unknown";
}

bool RecoveryRecord::faulty() const {
  for (const AttemptRecord& a : attempts)
    if (a.detected || a.timed_out) return true;
  return false;
}

namespace {

/// Runs one systolic attempt to completion, watchdog and checkers armed.
/// Returns the gathered output when the attempt is accepted.
std::optional<RleRow> run_attempt(const RleRow& a, const RleRow& b,
                                  const FaultSpec& fault,
                                  FaultArbiter* arbiter,
                                  const InvariantContext& ctx,
                                  cycle_t watchdog, AttemptRecord& rec) {
  FaultyDiffMachine machine(a, b, fault);
  while (true) {
    const bool active = arbiter ? arbiter->next() : false;
    if (machine.terminated(active)) break;
    if (machine.iterations() >= watchdog) {
      rec.timed_out = true;
      rec.diagnostic = "watchdog: no termination within 2*(k1+k2)+slack";
      rec.iterations = machine.iterations();
      return std::nullopt;
    }
    machine.step(active);
    rec.iterations = machine.iterations();
    try {
      check_end_of_iteration(machine.array(), ctx, machine.iterations());
    } catch (const contract_error& e) {
      rec.detected = true;
      rec.diagnostic = e.what();
      return std::nullopt;
    }
  }

  // Termination reached: validate the final state and the gathered row.  A
  // stuck-high completion line can stop the machine early with live RegBig
  // runs — check_final_state catches exactly that.
  try {
    check_final_state(machine.array(), ctx);
    return machine.gather_output();
  } catch (const contract_error& e) {
    rec.detected = true;
    rec.diagnostic = e.what();
    return std::nullopt;
  }
}

/// Folds one finished row's recovery record into the global registry.
void record_checked_telemetry(const CheckedRowResult& result) {
  MetricsRegistry& m = global_metrics();
  m.add("checked.rows");
  const std::size_t attempts = result.record.attempts.size();
  if (attempts > 1) m.add("checked.retries", attempts - 1);
  for (const AttemptRecord& rec : result.record.attempts) {
    if (rec.detected) m.add("checked.detections");
    if (rec.timed_out) m.add("checked.watchdog_trips");
  }
  if (result.record.outcome == RecoveryOutcome::kFellBack)
    m.add("checked.fallbacks");
  if (result.record.outcome == RecoveryOutcome::kUnrecovered)
    m.add("checked.unrecovered");
  m.observe("checked.row_total_cycles",
            static_cast<double>(result.record.total_cycles));
}

CheckedRowResult checked_xor_impl(const RleRow& a, const RleRow& b,
                                  const RecoveryPolicy& policy,
                                  const FaultInjection& injection) {
  SYSRLE_REQUIRE(policy.max_retries >= 0,
                 "checked_xor: negative retry budget");
  const InvariantContext ctx = make_invariant_context(a, b);
  const cycle_t watchdog =
      2 * static_cast<cycle_t>(a.run_count() + b.run_count()) +
      policy.watchdog_slack;

  // The arbiter's global cycle clock must span all attempts so a transient
  // window fires once, not once per retry.
  const FaultSpec benign{};
  const FaultSpec& fault = injection.spec ? *injection.spec : benign;
  std::optional<FaultArbiter> local;
  FaultArbiter* arbiter = injection.arbiter;
  if (injection.spec && !arbiter) {
    local.emplace(*injection.spec);
    arbiter = &*local;
  }

  CheckedRowResult result;
  const int attempts_allowed = 1 + policy.max_retries;
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    if (attempt > 0 && policy.retry_gate != nullptr &&
        !policy.retry_gate->allow_retry()) {
      // The budget (or the request deadline) vetoed the retry: stop burning
      // cycles on the array and let the fallback produce the row.
      if (telemetry_enabled()) global_metrics().add("checked.retries_denied");
      break;
    }
    AttemptRecord rec;
    std::optional<RleRow> out =
        run_attempt(a, b, fault, injection.spec ? arbiter : nullptr, ctx,
                    watchdog, rec);
    result.record.total_cycles += rec.iterations;
    result.record.attempts.push_back(std::move(rec));
    if (out) {
      result.output = std::move(*out);
      if (policy.canonicalize_output) result.output.canonicalize();
      result.record.outcome = attempt == 0
                                  ? RecoveryOutcome::kCleanFirstTry
                                  : RecoveryOutcome::kRecoveredByRetry;
      return result;
    }
  }

  if (policy.fallback_to_sequential) {
    // The sequential comparator shares no datapath with the array; a cell
    // defect cannot reach it.  The word-parallel engine serves the
    // canonical form; raw piecewise output only exists on the scalar merge.
    SequentialDiffResult seq = policy.canonicalize_output
                                   ? sequential_engine_xor(a, b)
                                   : sequential_xor(a, b);
    result.output = std::move(seq.output);
    result.record.fallback_iterations = seq.iterations;
    result.record.outcome = RecoveryOutcome::kFellBack;
    return result;
  }

  result.record.outcome = RecoveryOutcome::kUnrecovered;
  return result;
}

}  // namespace

CheckedRowResult checked_xor(const RleRow& a, const RleRow& b,
                             const RecoveryPolicy& policy,
                             const FaultInjection& injection) {
  TELEMETRY_SPAN("checked.row", "checked");
  CheckedRowResult result = checked_xor_impl(a, b, policy, injection);
  if (telemetry_enabled()) record_checked_telemetry(result);
  return result;
}

}  // namespace sysrle
