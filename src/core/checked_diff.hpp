#pragma once
// Fault-tolerant execution wrapper around the systolic row engine.
//
// core/faults turns the paper's correctness theorems into detectors; this
// module adds recovery.  checked_xor runs the row on the systolic machine
// with the section-4 invariant checkers armed every iteration and a watchdog
// at 2*(k1+k2)+4 cycles (double the Theorem-1 budget, plus slack).  On a
// detected fault or a watchdog timeout it retries up to N times — a
// transient fault clears, an intermittent one gets fresh coin flips — and
// finally falls back to the paper's sequential merge comparator, which
// shares no datapath with the array.  Every row's journey is recorded in a
// RecoveryRecord so a fleet operator can see what the machine survived.
//
// Note on checking cost: the Theorem-3 conservation checker needs the
// expected XOR, which a hardware controller would fold from the load-time
// array state in O(k); the simulator computes it the same way (sequentially
// from the inputs).  bench_resilience quantifies the total overhead.

#include <string>
#include <vector>

#include "core/faults.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Caller-supplied veto over each retry of the checked engine.  The service
/// layer implements this with a token-bucket budget (service/retry_budget)
/// plus the request deadline, so a fleet under overload stops burning cycles
/// on retries it cannot afford; when no gate is installed every retry within
/// max_retries is allowed, as before.
class RetryGate {
 public:
  virtual ~RetryGate() = default;
  /// Called before each retry (never before the first attempt).  Returning
  /// false skips all remaining retries and proceeds straight to the
  /// fallback.  May block (e.g. to apply backoff) before returning true.
  virtual bool allow_retry() = 0;
};

/// Retry/fallback policy of the checked engine.
struct RecoveryPolicy {
  /// Re-runs of the systolic machine after a detected fault or timeout.
  int max_retries = 2;

  /// Optional retry veto (non-owning; must outlive the call).  Consulted in
  /// addition to max_retries: a retry happens only when both allow it.
  RetryGate* retry_gate = nullptr;

  /// When every systolic attempt fails, compute the row on the sequential
  /// merge engine instead of giving up.
  bool fallback_to_sequential = true;

  /// Watchdog bound is 2*(k1+k2) + watchdog_slack cycles per attempt.
  cycle_t watchdog_slack = 4;

  /// Merge adjacent runs in the accepted output.
  bool canonicalize_output = false;
};

/// How a row ultimately got computed.
enum class RecoveryOutcome {
  kCleanFirstTry,     ///< first systolic attempt accepted
  kRecoveredByRetry,  ///< a retry succeeded after a detection
  kFellBack,          ///< the sequential merge engine produced the row
  kUnrecovered,       ///< everything failed (fallback disabled)
};

/// Human-readable outcome name.
const char* to_string(RecoveryOutcome outcome);

/// One systolic attempt's fate.
struct AttemptRecord {
  bool detected = false;   ///< an invariant checker threw
  bool timed_out = false;  ///< the watchdog expired
  cycle_t iterations = 0;  ///< cycles this attempt ran
  std::string diagnostic;  ///< first checker message, empty when clean
};

/// Per-row account of detection and recovery.
struct RecoveryRecord {
  RecoveryOutcome outcome = RecoveryOutcome::kCleanFirstTry;
  std::vector<AttemptRecord> attempts;
  /// Systolic cycles burned across all attempts, including failed ones.
  cycle_t total_cycles = 0;
  /// Merge iterations of the fallback engine (0 unless kFellBack).
  std::uint64_t fallback_iterations = 0;

  /// True when the row was computed by someone.
  bool ok() const { return outcome != RecoveryOutcome::kUnrecovered; }
  /// True when any attempt saw a detection or timeout.
  bool faulty() const;
  /// Retries actually taken (attempts beyond the first).
  std::size_t retries() const {
    return attempts.empty() ? 0 : attempts.size() - 1;
  }
};

/// Output of the checked engine for one row.
struct CheckedRowResult {
  /// The XOR of the two input rows; empty when record.ok() is false.
  RleRow output;
  RecoveryRecord record;
};

/// Test/campaign hook: wires one fault into every systolic attempt.  The
/// arbiter owns the global cycle clock shared by all attempts; when null, a
/// private one is created per call (so a transient window still only fires
/// once across that call's retries).
struct FaultInjection {
  const FaultSpec* spec = nullptr;
  FaultArbiter* arbiter = nullptr;
};

/// Runs the systolic XOR with checkers armed, watchdog set, and the
/// RecoveryPolicy applied.  Never throws on a detected machine fault — that
/// is the point — but still throws contract_error on caller errors
/// (e.g. a negative retry budget).
CheckedRowResult checked_xor(const RleRow& a, const RleRow& b,
                             const RecoveryPolicy& policy = {},
                             const FaultInjection& injection = {});

}  // namespace sysrle
