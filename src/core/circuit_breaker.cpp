#include "core/circuit_breaker.hpp"

#include <utility>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerPolicy policy, std::string metric_name)
    : policy_(policy), metric_name_(std::move(metric_name)) {
  SYSRLE_REQUIRE(policy_.failure_threshold >= 1,
                 "CircuitBreaker: failure_threshold must be >= 1");
  SYSRLE_REQUIRE(policy_.probe_successes_to_close >= 1,
                 "CircuitBreaker: probe_successes_to_close must be >= 1");
  publish();
}

void CircuitBreaker::publish() const {
  if (metric_name_.empty() || !telemetry_enabled()) return;
  global_metrics().set_gauge("service.breaker_state." + metric_name_,
                             static_cast<double>(static_cast<int>(state_)));
}

void CircuitBreaker::transition(BreakerState next) {
  if (next == state_) return;
  state_ = next;
  ++transitions_;
  if (next == BreakerState::kClosed) consecutive_failures_ = 0;
  if (next == BreakerState::kHalfOpen) {
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  if (!metric_name_.empty() && telemetry_enabled())
    global_metrics().add("service.breaker_transitions");
  publish();
}

bool CircuitBreaker::allow(std::uint64_t now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < opened_at_ + policy_.open_duration) return false;
      transition(BreakerState::kHalfOpen);
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= policy_.probe_successes_to_close) return false;
      ++probes_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(std::uint64_t) {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kOpen:
      // A straggler finishing after the trip; the breaker stays open.
      break;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= policy_.probe_successes_to_close)
        transition(BreakerState::kClosed);
      break;
  }
}

void CircuitBreaker::release_probe() {
  if (state_ == BreakerState::kHalfOpen && probes_in_flight_ > 0)
    --probes_in_flight_;
}

void CircuitBreaker::record_failure(std::uint64_t now) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        opened_at_ = now;
        transition(BreakerState::kOpen);
      }
      break;
    case BreakerState::kOpen:
      break;
    case BreakerState::kHalfOpen:
      opened_at_ = now;
      transition(BreakerState::kOpen);
      break;
  }
}

}  // namespace sysrle
