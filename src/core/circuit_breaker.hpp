#pragma once
// Circuit breaker: stop sending work to a backend that keeps failing.
//
// The farm re-dispatches a failed row to another machine, which is the right
// call for a one-off glitch — but a machine with a permanent defect fails
// every row it touches, and re-dispatch alone turns it into a cycle sink
// that keeps burning a full service time per row before each failure is
// detected.  The breaker is the classic three-state answer: after
// `failure_threshold` consecutive failures the machine is *open* (receives
// nothing), after `open_duration` time units one *half-open* probe is
// admitted, and only a run of probe successes closes it again.
//
// Time is a caller-supplied monotonic counter so the same state machine
// serves both the farm simulation (systolic cycles) and the real-time
// serving layer (microseconds since service start).  Transitions are
// published to the PR 2 metrics registry under
// "service.breaker_state.<name>" when the breaker is named and telemetry is
// enabled; docs/ROBUSTNESS.md has the state diagram.

#include <cstdint>
#include <string>

namespace sysrle {

/// Breaker position.  Numeric values are the published gauge encoding.
enum class BreakerState : int {
  kClosed = 0,    ///< healthy: all work admitted
  kOpen = 1,      ///< tripped: nothing admitted until the open window ends
  kHalfOpen = 2,  ///< probing: a limited number of trial jobs admitted
};

/// Human-readable state name.
const char* to_string(BreakerState state);

/// When to trip and how to re-admit.
struct BreakerPolicy {
  /// Consecutive failures that open a closed breaker.
  int failure_threshold = 3;

  /// Time units (caller's clock) the breaker stays open before it admits a
  /// half-open probe.
  std::uint64_t open_duration = 256;

  /// Consecutive probe successes needed to close from half-open.  One probe
  /// failure re-opens immediately.
  int probe_successes_to_close = 1;
};

/// Three-state breaker driven by an external monotonic clock.  Not
/// thread-safe; callers that share one (the serving layer) hold their own
/// lock around the whole admit/record sequence.
class CircuitBreaker {
 public:
  /// `metric_name` (optional) keys the published gauge
  /// "service.breaker_state.<metric_name>"; empty disables publishing.
  explicit CircuitBreaker(BreakerPolicy policy = {},
                          std::string metric_name = {});

  /// True when a job may be sent now.  An open breaker whose window has
  /// elapsed transitions to half-open and admits up to
  /// `probe_successes_to_close` concurrent probes.
  bool allow(std::uint64_t now);

  /// Reports a job outcome observed at time `now`.  Success in half-open
  /// counts toward closing; failure anywhere re-arms the breaker (closed:
  /// counts toward the threshold; half-open: re-opens).
  void record_success(std::uint64_t now);
  void record_failure(std::uint64_t now);

  /// Returns a probe slot taken by allow() when the job produced *no*
  /// outcome — it was shed at the queue, or its deadline expired before the
  /// backend ran.  Without this, an abandoned half-open probe pins
  /// probes_in_flight at its cap and allow() refuses everything forever.
  /// Tells the breaker nothing about backend health: no state change, no
  /// success/failure accounting.
  void release_probe();

  BreakerState state() const { return state_; }
  /// Earliest time a probe can be admitted (only meaningful while open);
  /// schedulers use it to know when a tripped backend is worth revisiting.
  std::uint64_t reopen_at() const { return opened_at_ + policy_.open_duration; }
  /// Total state changes (closed->open, open->half-open, ...).
  std::uint64_t transitions() const { return transitions_; }
  /// Consecutive failures seen while closed.
  int consecutive_failures() const { return consecutive_failures_; }
  const std::string& name() const { return metric_name_; }

 private:
  void transition(BreakerState next);
  void publish() const;

  BreakerPolicy policy_;
  std::string metric_name_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint64_t opened_at_ = 0;
  std::uint64_t transitions_ = 0;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
};

}  // namespace sysrle
