#include "core/compaction.hpp"

namespace sysrle {

CompactionResult compact_row(const RleRow& raw) {
  CompactionResult result;
  result.row = raw;
  result.merges = result.row.canonicalize();
  return result;
}

CompactionCost compaction_cost(std::size_t array_cells,
                               std::size_t occupied_cells) {
  CompactionCost cost;
  cost.sequential_cycles = array_cells;
  cost.bus_cycles = occupied_cells;
  return cost;
}

}  // namespace sysrle
