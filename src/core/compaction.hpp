#pragma once
// Output compaction — the paper's second future-work item (section 6): "the
// task of combining the adjacent runs in different cells at the end of the
// algorithm is left as future research.  This task also is not fast on a pure
// systolic system, but could be performed quickly with the help of a
// broadcast bus."
//
// The functional operation is RleRow::canonicalize; this module adds the cost
// accounting for performing it on the machine:
//   * pure systolic: a left-to-right sweep over the array — one cycle per
//     cell, including the empty ones the answer is scattered across;
//   * bus-assisted: each cell broadcasts its run once; a comparator merges
//     adjacency on the fly — one bus transaction per *occupied* cell.

#include <cstddef>

#include "common/types.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Result of compacting a machine output row.
struct CompactionResult {
  RleRow row;                ///< canonical row (no adjacent runs)
  std::size_t merges = 0;    ///< adjacent pairs merged
};

/// Merges adjacent runs of a (valid, ordered) machine output row.
CompactionResult compact_row(const RleRow& raw);

/// Modelled cost of the compaction pass on the machine.
struct CompactionCost {
  cycle_t sequential_cycles = 0;  ///< pure systolic sweep: one per array cell
  cycle_t bus_cycles = 0;         ///< bus-assisted: one per occupied cell
};

/// Builds the cost model.  `array_cells` is the machine length (the sweep
/// must visit every cell because the output is scattered), `occupied_cells`
/// the number of cells holding an output run.
CompactionCost compaction_cost(std::size_t array_cells,
                               std::size_t occupied_cells);

}  // namespace sysrle
