#include "core/cost_model.hpp"

#include "baseline/sequential_diff.hpp"

namespace sysrle {

DiffCostPrediction predict_costs(const RleRow& a, const RleRow& b) {
  DiffCostPrediction p;
  p.k1 = a.run_count();
  p.k2 = b.run_count();
  const SequentialDiffResult seq = sequential_xor(a, b);
  p.k3_raw = seq.output.run_count();
  p.k3_canonical = seq.output.canonical().run_count();
  return p;
}

}  // namespace sysrle
