#include "core/cost_model.hpp"

#include "baseline/sequential_diff.hpp"

namespace sysrle {

DiffCostEstimate estimate_costs(const RleRow& a, const RleRow& b) {
  DiffCostEstimate e;
  e.k1 = a.run_count();
  e.k2 = b.run_count();
  return e;
}

DiffCostMeasurement measure_costs(const RleRow& a, const RleRow& b) {
  DiffCostMeasurement m;
  m.k1 = a.run_count();
  m.k2 = b.run_count();
  const SequentialDiffResult seq = sequential_xor(a, b);
  m.k3_raw = seq.output.run_count();
  m.k3_canonical = seq.output.canonical().run_count();
  return m;
}

AdaptiveRoute choose_adaptive_route(std::uint64_t k1, std::uint64_t k2,
                                    double similarity_threshold) {
  const std::uint64_t difference = k1 > k2 ? k1 - k2 : k2 - k1;
  const std::uint64_t total = k1 + k2;
  return static_cast<double>(difference) <=
                 similarity_threshold * static_cast<double>(total)
             ? AdaptiveRoute::kSystolic
             : AdaptiveRoute::kSequential;
}

}  // namespace sysrle
