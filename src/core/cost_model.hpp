#pragma once
// The analytic cost model of section 5: predictors for how long the systolic
// machine and the sequential merge will take on a given input pair, plus the
// bound/correlation bookkeeping the experiments report.
//
//   * sequential cost        ~ k1 + k2        (best = worst = average)
//   * systolic upper bound   = k1 + k2        (Theorem 1)
//   * observation bound      = k3_raw + 1     (unproven Observation, where
//                              k3_raw counts runs in the *machine's* output,
//                              which may contain adjacent runs)
//   * similar-image estimate ~ |k1 - k2|      (the Figure-5 correlation)
//
// The model has two tiers.  estimate_costs() is O(1) off the run counts and
// is the only tier a hot path may call.  measure_costs() additionally
// reports k3 — which requires computing the XOR itself — and exists for
// analysis, experiments and tests only.

#include <cstdint>

#include "rle/rle_row.hpp"

namespace sysrle {

/// The adaptive dispatcher's default similarity threshold θ, re-calibrated
/// against the word-parallel sequential engine (bench_scaling
/// --dispatch-json; evidence in BENCH_pr10.json, method in
/// docs/PERFORMANCE.md).  θ prices a systolic cycle against sequential
/// work: the machine costs ~|k1-k2| cycles on similar rows (the Figure-5
/// correlation, re-verified by the sweep), the sequential side Θ(k1+k2)
/// steps, and the previous θ = 0.5 encoded the scalar merge's per-step
/// cost.  The word engine cut that per-step cost ~3.2x on run-dense rows
/// (the regime where sequential work actually hurts), so the break-even
/// dissimilarity shrinks by the same factor: θ = 0.5 / 3.2 ≈ 0.15.  The
/// sweep also shows the *simulator* never beats the engine in host
/// wall-clock (it pays O(k) cell setup per row) — θ is a hardware-model
/// knob, and the sweep's wall-clock series documents that honestly.
inline constexpr double kDefaultSimilarityThreshold = 0.15;

/// The O(1) tier: everything the model can say from the run counts alone.
/// Safe on the hot path — never touches pixel data, never computes an XOR.
struct DiffCostEstimate {
  std::uint64_t k1 = 0;  ///< runs in row a
  std::uint64_t k2 = 0;  ///< runs in row b

  std::uint64_t sequential_cost() const { return k1 + k2; }
  std::uint64_t theorem1_bound() const { return k1 + k2; }
  std::uint64_t run_count_difference() const {
    return k1 > k2 ? k1 - k2 : k2 - k1;
  }
};

/// Builds the cheap estimate for one row pair in O(1).
DiffCostEstimate estimate_costs(const RleRow& a, const RleRow& b);

/// The measured tier: the estimate plus the k3 counts, which require
/// performing the entire sequential diff.  NOT a prediction in the cheap
/// sense and never safe on a hot path — callers wanting a routing decision
/// use estimate_costs()/choose_adaptive_route() instead.  Deliberately kept
/// on the scalar merge: its piecewise (possibly adjacent-run) output
/// mirrors the systolic machine's, which is what the Observation's k3_raw
/// counts; the word-parallel engine's canonical output would undercount it.
struct DiffCostMeasurement {
  std::uint64_t k1 = 0;  ///< runs in row a
  std::uint64_t k2 = 0;  ///< runs in row b
  /// Runs in the raw (uncompacted) XOR — the Observation's k3.  Measured
  /// with the sequential merge, whose piecewise output mirrors the machine's.
  std::uint64_t k3_raw = 0;
  /// Runs in the fully compacted XOR.
  std::uint64_t k3_canonical = 0;

  std::uint64_t sequential_cost() const { return k1 + k2; }
  std::uint64_t theorem1_bound() const { return k1 + k2; }
  std::uint64_t observation_bound() const { return k3_raw + 1; }
  std::uint64_t run_count_difference() const {
    return k1 > k2 ? k1 - k2 : k2 - k1;
  }
};

/// Builds the measurement for one row pair by running the sequential merge.
DiffCostMeasurement measure_costs(const RleRow& a, const RleRow& b);

/// Which engine the adaptive dispatcher picked for one row.
enum class AdaptiveRoute {
  kSystolic,    ///< similar rows: the machine finishes in ~|k1 - k2| cycles
  kSequential,  ///< dissimilar rows: the merge's k1 + k2 is the better deal
};

/// The *cheap* half of the model, usable per row on the hot path: it needs
/// only k1, k2 and |k1 - k2| — no k3, which would require computing the XOR
/// itself.  The Figure-5 correlation says systolic iterations track
/// |k1 - k2| when the rows are similar, while the sequential merge always
/// pays Θ(k1 + k2); a row is routed to the machine when
///
///     |k1 - k2| <= similarity_threshold * (k1 + k2)
///
/// (boundary inclusive), and to the merge otherwise.  Two empty rows are
/// trivially similar.  The default threshold sends a row sequential once
/// the run counts diverge past the measured engine-crossover ratio — see
/// kDefaultSimilarityThreshold above.
AdaptiveRoute choose_adaptive_route(
    std::uint64_t k1, std::uint64_t k2,
    double similarity_threshold = kDefaultSimilarityThreshold);

}  // namespace sysrle
