#pragma once
// The analytic cost model of section 5: predictors for how long the systolic
// machine and the sequential merge will take on a given input pair, plus the
// bound/correlation bookkeeping the experiments report.
//
//   * sequential cost        ~ k1 + k2        (best = worst = average)
//   * systolic upper bound   = k1 + k2        (Theorem 1)
//   * observation bound      = k3_raw + 1     (unproven Observation, where
//                              k3_raw counts runs in the *machine's* output,
//                              which may contain adjacent runs)
//   * similar-image estimate ~ |k1 - k2|      (the Figure-5 correlation)

#include <cstdint>

#include "rle/rle_row.hpp"

namespace sysrle {

/// Everything the model can say about one input pair without running the
/// systolic machine.  (Computing k3 requires an XOR, done sequentially here;
/// the model is an analysis tool, not a fast path.)
struct DiffCostPrediction {
  std::uint64_t k1 = 0;  ///< runs in row a
  std::uint64_t k2 = 0;  ///< runs in row b
  /// Runs in the raw (uncompacted) XOR — the Observation's k3.  Predicted
  /// with the sequential merge, whose piecewise output mirrors the machine's.
  std::uint64_t k3_raw = 0;
  /// Runs in the fully compacted XOR.
  std::uint64_t k3_canonical = 0;

  std::uint64_t sequential_cost() const { return k1 + k2; }
  std::uint64_t theorem1_bound() const { return k1 + k2; }
  std::uint64_t observation_bound() const { return k3_raw + 1; }
  std::uint64_t run_count_difference() const {
    return k1 > k2 ? k1 - k2 : k2 - k1;
  }
};

/// Builds the prediction for one row pair.
DiffCostPrediction predict_costs(const RleRow& a, const RleRow& b);

/// Which engine the adaptive dispatcher picked for one row.
enum class AdaptiveRoute {
  kSystolic,    ///< similar rows: the machine finishes in ~|k1 - k2| cycles
  kSequential,  ///< dissimilar rows: the merge's k1 + k2 is the better deal
};

/// The *cheap* half of the model, usable per row on the hot path: it needs
/// only k1, k2 and |k1 - k2| — no k3, which would require computing the XOR
/// itself.  The Figure-5 correlation says systolic iterations track
/// |k1 - k2| when the rows are similar, while the sequential merge always
/// pays Θ(k1 + k2); a row is routed to the machine when
///
///     |k1 - k2| <= similarity_threshold * (k1 + k2)
///
/// (boundary inclusive), and to the merge otherwise.  Two empty rows are
/// trivially similar.  The default threshold of 0.5 sends a row sequential
/// once one input carries over three times the runs of the other.
AdaptiveRoute choose_adaptive_route(std::uint64_t k1, std::uint64_t k2,
                                    double similarity_threshold = 0.5);

}  // namespace sysrle
