#include "core/diff_cell.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sysrle {

std::optional<Run> DiffCell::take_big() {
  std::optional<Run> out = reg_big_;
  reg_big_.reset();
  return out;
}

OrderAction DiffCell::order() {
  if (reg_small_ && reg_big_) {
    // Swap when RegSmall's run is lexicographically larger:
    //   small.start > big.start, or equal starts and small.end > big.end.
    const bool out_of_order =
        reg_small_->start > reg_big_->start ||
        (reg_small_->start == reg_big_->start &&
         reg_small_->end() > reg_big_->end());
    if (out_of_order) {
      std::swap(reg_small_, reg_big_);
      return OrderAction::kSwapped;
    }
    return OrderAction::kNone;
  }
  if (!reg_small_ && reg_big_) {
    reg_small_ = reg_big_;
    reg_big_.reset();
    return OrderAction::kPromoted;
  }
  return OrderAction::kNone;
}

bool DiffCell::xor_step() {
  if (!reg_small_ || !reg_big_) return false;

  const pos_t small_start = reg_small_->start;
  const pos_t big_start = reg_big_->start;
  const pos_t big_end = reg_big_->end();

  // Step 1 must have ordered the registers.
  SYSRLE_DCHECK(small_start < big_start ||
                    (small_start == big_start && reg_small_->end() <= big_end),
                "DiffCell::xor_step: registers not ordered");

  // The paper's four assignments, on closed intervals.  (The published text
  // prints the first min's second argument as "RegBig.start,1" — a scanning
  // artefact for "RegBig.start - 1"; see DESIGN.md.)
  const pos_t old_small_end = reg_small_->end();
  const pos_t new_small_end = std::min(old_small_end, big_start - 1);
  const pos_t new_big_start =
      std::min(big_end + 1, std::max(old_small_end + 1, big_start));
  const pos_t new_big_end = std::max(old_small_end, big_end);

  // An interval with end < start is the empty-register encoding.
  if (new_small_end >= small_start) {
    reg_small_ = Run::from_bounds(small_start, new_small_end);
  } else {
    reg_small_.reset();
  }
  if (new_big_end >= new_big_start) {
    reg_big_ = Run::from_bounds(new_big_start, new_big_end);
  } else {
    reg_big_.reset();
  }
  return true;
}

}  // namespace sysrle
