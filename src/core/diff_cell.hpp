#pragma once
// One cell of the paper's systolic image-difference machine (Figure 2).
//
// A cell holds two run registers.  RegSmall accumulates settled output runs;
// RegBig carries runs that are still travelling right.  Each iteration the
// cell executes:
//   step 1 (order)  — smaller run into RegSmall (swap or promote),
//   step 2 (xor)    — in-cell XOR of the two runs via four min/max updates,
//   step 3 (shift)  — handled by the array: RegBig moves one cell right.
//
// Runs are manipulated as closed intervals [start, end]; an interval with
// end < start is the hardware's encoding of an empty register, surfaced here
// as std::nullopt.

#include <optional>

#include "rle/run.hpp"
#include "systolic/trace.hpp"

namespace sysrle {

/// What step 1 did in a given cell this iteration (for activity counters).
enum class OrderAction {
  kNone,      ///< registers already ordered (or too empty to matter)
  kSwapped,   ///< RegSmall and RegBig exchanged
  kPromoted,  ///< lone RegBig run moved into RegSmall
};

/// One systolic cell.  Default-constructed cells are empty.
class DiffCell {
 public:
  const std::optional<Run>& reg_small() const { return reg_small_; }
  const std::optional<Run>& reg_big() const { return reg_big_; }

  /// Loads registers directly (array initialisation / shift lane access).
  void load_small(std::optional<Run> r) { reg_small_ = r; }
  void load_big(std::optional<Run> r) { reg_big_ = r; }

  /// Takes the outgoing RegBig value, leaving the register empty
  /// (step 3 read side).
  std::optional<Run> take_big();

  /// Step 1: put the smaller run (lexicographic (start, end) order) into
  /// RegSmall.  If only RegBig holds a run, promote it.
  OrderAction order();

  /// Step 2: XOR the two registers.  Requires the cell to be ordered (step 1
  /// must run first in the same iteration).  Returns true iff both registers
  /// held runs, i.e. an XOR was actually computed.
  bool xor_step();

  /// The cell's C (complete) line: high when RegBig is empty.
  bool complete() const { return !reg_big_.has_value(); }

  /// True when both registers are empty.
  bool empty() const { return !reg_small_ && !reg_big_; }

  /// Register snapshot for tracing.
  CellSnapshot snapshot() const { return {reg_small_, reg_big_}; }

  friend bool operator==(const DiffCell&, const DiffCell&) = default;

 private:
  std::optional<Run> reg_small_;
  std::optional<Run> reg_big_;
};

}  // namespace sysrle
