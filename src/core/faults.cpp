#include "core/faults.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "core/invariants.hpp"
#include "rle/ops.hpp"

namespace sysrle {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNoSwap:
      return "no-swap";
    case FaultKind::kCorruptXorEnd:
      return "corrupt-xor-end";
    case FaultKind::kDropShift:
      return "drop-shift";
    case FaultKind::kStuckCompleteHigh:
      return "stuck-complete-high";
  }
  return "unknown";
}

const char* to_string(FaultActivation activation) {
  switch (activation) {
    case FaultActivation::kPermanent:
      return "permanent";
    case FaultActivation::kTransient:
      return "transient";
    case FaultActivation::kIntermittent:
      return "intermittent";
  }
  return "unknown";
}

FaultArbiter::FaultArbiter(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.activation == FaultActivation::kIntermittent)
    SYSRLE_REQUIRE(spec_.probability >= 0.0 && spec_.probability <= 1.0,
                   "FaultArbiter: intermittent probability outside [0, 1]");
}

bool FaultArbiter::next() {
  ++cycle_;
  switch (spec_.activation) {
    case FaultActivation::kPermanent:
      return true;
    case FaultActivation::kTransient:
      return cycle_ >= spec_.window_start &&
             cycle_ < spec_.window_start + spec_.window_length;
    case FaultActivation::kIntermittent:
      return rng_.bernoulli(spec_.probability);
  }
  return false;
}

FaultyDiffMachine::FaultyDiffMachine(const RleRow& a, const RleRow& b,
                                     const FaultSpec& fault)
    : fault_(fault),
      array_(std::max<std::size_t>(a.run_count() + b.run_count() + 1, 1)) {
  SYSRLE_REQUIRE(fault_.cell < array_.size(),
                 "FaultyDiffMachine: fault cell out of range");
  for (std::size_t i = 0; i < a.run_count(); ++i)
    array_.cell(i).load_small(a[i]);
  for (std::size_t i = 0; i < b.run_count(); ++i)
    array_.cell(i).load_big(b[i]);
}

bool FaultyDiffMachine::terminated(bool fault_active) const {
  const bool stuck =
      fault_active && fault_.kind == FaultKind::kStuckCompleteHigh;
  for (cell_index_t i = 0; i < array_.size(); ++i) {
    if (stuck && i == fault_.cell) continue;  // the stuck line reports done
    if (!array_.cell(i).complete()) return false;
  }
  return true;
}

void FaultyDiffMachine::step(bool fault_active) {
  ++iterations_;
  const std::size_t n = array_.size();
  auto hit = [&](FaultKind kind, cell_index_t i) {
    return fault_active && fault_.kind == kind && i == fault_.cell;
  };

  // Step 1 — order, with the comparator fault suppressing the swap (the
  // promotion path is a separate datapath and still works).
  for (cell_index_t i = 0; i < n; ++i) {
    DiffCell& c = array_.cell(i);
    if (hit(FaultKind::kNoSwap, i)) {
      if (!c.reg_small() && c.reg_big()) {
        c.load_small(c.take_big());
      }
      continue;  // swap suppressed
    }
    c.order();
  }

  // Step 2 — XOR, with the min-unit fault stretching RegSmall by one.
  for (cell_index_t i = 0; i < n; ++i) {
    DiffCell& c = array_.cell(i);
    const bool both = c.reg_small() && c.reg_big();
    if (hit(FaultKind::kNoSwap, i) && both) {
      // Run the datapath even on unordered registers, as the broken
      // hardware would: emulate by applying the step-2 formulas manually.
      const Run s = *c.reg_small();
      const Run g = *c.reg_big();
      const pos_t old_small_end = s.end();
      const pos_t new_small_end = std::min(old_small_end, g.start - 1);
      const pos_t new_big_start =
          std::min(g.end() + 1, std::max(old_small_end + 1, g.start));
      const pos_t new_big_end = std::max(old_small_end, g.end());
      c.load_small(new_small_end >= s.start
                       ? std::optional<Run>(Run::from_bounds(s.start, new_small_end))
                       : std::nullopt);
      c.load_big(new_big_end >= new_big_start
                     ? std::optional<Run>(Run::from_bounds(new_big_start, new_big_end))
                     : std::nullopt);
      continue;
    }
    c.xor_step();
    if (hit(FaultKind::kCorruptXorEnd, i) && c.reg_small()) {
      const Run s = *c.reg_small();
      c.load_small(Run{s.start, s.length + 1});
    }
  }

  // Step 3 — shift right, with the dead output register dropping its run.
  std::optional<Run> carry;
  for (cell_index_t i = 0; i < n; ++i) {
    std::optional<Run> outgoing = array_.cell(i).take_big();
    if (hit(FaultKind::kDropShift, i)) outgoing.reset();
    array_.cell(i).load_big(carry);
    carry = outgoing;
  }
  // carry leaving the last cell is discarded (would be checked in the
  // healthy machine; a faulty machine gets no such courtesy).
}

RleRow FaultyDiffMachine::gather_output() const {
  std::vector<Run> runs;
  for (cell_index_t i = 0; i < array_.size(); ++i)
    if (array_.cell(i).reg_small()) runs.push_back(*array_.cell(i).reg_small());
  return RleRow(std::move(runs));  // validates ordering/overlap
}

FaultOutcome run_with_fault(const RleRow& a, const RleRow& b,
                            const FaultSpec& fault) {
  const std::size_t k1 = a.run_count();
  const std::size_t k2 = b.run_count();

  FaultyDiffMachine machine(a, b, fault);
  FaultArbiter arbiter(fault);
  const InvariantContext ctx = make_invariant_context(a, b);
  FaultOutcome outcome;
  const cycle_t limit = 2 * static_cast<cycle_t>(k1 + k2) + 4;

  while (true) {
    const bool active = arbiter.next();
    if (machine.terminated(active)) break;
    if (machine.iterations() >= limit) {
      outcome.timed_out = true;
      break;
    }
    machine.step(active);
    outcome.iterations = machine.iterations();

    // Online self-test: the section-4 checkers.
    if (!outcome.detected_by_invariants) {
      try {
        check_end_of_iteration(machine.array(), ctx, machine.iterations());
      } catch (const contract_error&) {
        outcome.detected_by_invariants = true;
      }
    }
  }

  // Judge the final answer (gather may itself be malformed — that counts as
  // wrong output AND detection, since a real controller validates).
  try {
    std::vector<Run> runs;
    for (cell_index_t i = 0; i < machine.array().size(); ++i)
      if (machine.array().cell(i).reg_small())
        runs.push_back(*machine.array().cell(i).reg_small());
    const RleRow out = xor_run_multiset(std::move(runs));
    outcome.wrong_output = out != ctx.expected_xor.canonical();
  } catch (const contract_error&) {
    outcome.wrong_output = true;
    outcome.detected_by_invariants = true;
  }
  if (!outcome.detected_by_invariants) {
    try {
      check_final_state(machine.array(), ctx);
    } catch (const contract_error&) {
      outcome.detected_by_invariants = true;
    }
  }
  return outcome;
}

}  // namespace sysrle
