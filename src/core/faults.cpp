#include "core/faults.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "core/invariants.hpp"
#include "rle/ops.hpp"
#include "systolic/linear_array.hpp"

namespace sysrle {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNoSwap:
      return "no-swap";
    case FaultKind::kCorruptXorEnd:
      return "corrupt-xor-end";
    case FaultKind::kDropShift:
      return "drop-shift";
    case FaultKind::kStuckCompleteHigh:
      return "stuck-complete-high";
  }
  return "unknown";
}

FaultOutcome run_with_fault(const RleRow& a, const RleRow& b,
                            const FaultSpec& fault) {
  const std::size_t k1 = a.run_count();
  const std::size_t k2 = b.run_count();
  const std::size_t n = std::max<std::size_t>(k1 + k2 + 1, 1);
  SYSRLE_REQUIRE(fault.cell < n, "run_with_fault: fault cell out of range");

  LinearArray<DiffCell> array(n);
  for (std::size_t i = 0; i < k1; ++i) array.cell(i).load_small(a[i]);
  for (std::size_t i = 0; i < k2; ++i) array.cell(i).load_big(b[i]);

  const InvariantContext ctx = make_invariant_context(a, b);
  FaultOutcome outcome;
  const cycle_t limit = 2 * static_cast<cycle_t>(k1 + k2) + 4;

  auto cell_complete = [&](cell_index_t i) {
    if (fault.kind == FaultKind::kStuckCompleteHigh && i == fault.cell)
      return true;  // the stuck line always reports done
    return array.cell(i).complete();
  };
  auto terminated = [&] {
    for (cell_index_t i = 0; i < n; ++i)
      if (!cell_complete(i)) return false;
    return true;
  };

  while (!terminated()) {
    if (outcome.iterations >= limit) {
      outcome.timed_out = true;
      break;
    }
    ++outcome.iterations;

    // Step 1 — order, with the comparator fault suppressing the swap (the
    // promotion path is a separate datapath and still works).
    for (cell_index_t i = 0; i < n; ++i) {
      DiffCell& c = array.cell(i);
      if (fault.kind == FaultKind::kNoSwap && i == fault.cell) {
        if (!c.reg_small() && c.reg_big()) {
          c.load_small(c.take_big());
        }
        continue;  // swap suppressed
      }
      c.order();
    }

    // Step 2 — XOR, with the min-unit fault stretching RegSmall by one.
    for (cell_index_t i = 0; i < n; ++i) {
      DiffCell& c = array.cell(i);
      const bool both = c.reg_small() && c.reg_big();
      if (fault.kind == FaultKind::kNoSwap && i == fault.cell && both) {
        // Run the datapath even on unordered registers, as the broken
        // hardware would: emulate by applying the step-2 formulas manually.
        const Run s = *c.reg_small();
        const Run g = *c.reg_big();
        const pos_t old_small_end = s.end();
        const pos_t new_small_end = std::min(old_small_end, g.start - 1);
        const pos_t new_big_start =
            std::min(g.end() + 1, std::max(old_small_end + 1, g.start));
        const pos_t new_big_end = std::max(old_small_end, g.end());
        c.load_small(new_small_end >= s.start
                         ? std::optional<Run>(Run::from_bounds(s.start, new_small_end))
                         : std::nullopt);
        c.load_big(new_big_end >= new_big_start
                       ? std::optional<Run>(Run::from_bounds(new_big_start, new_big_end))
                       : std::nullopt);
        continue;
      }
      c.xor_step();
      if (fault.kind == FaultKind::kCorruptXorEnd && i == fault.cell &&
          c.reg_small()) {
        const Run s = *c.reg_small();
        c.load_small(Run{s.start, s.length + 1});
      }
    }

    // Step 3 — shift right, with the dead output register dropping its run.
    std::optional<Run> carry;
    for (cell_index_t i = 0; i < n; ++i) {
      std::optional<Run> outgoing = array.cell(i).take_big();
      if (fault.kind == FaultKind::kDropShift && i == fault.cell)
        outgoing.reset();
      array.cell(i).load_big(carry);
      carry = outgoing;
    }
    // carry leaving the last cell is discarded (would be checked in the
    // healthy machine; a faulty machine gets no such courtesy).

    // Online self-test: the section-4 checkers.
    if (!outcome.detected_by_invariants) {
      try {
        check_end_of_iteration(array, ctx, outcome.iterations);
      } catch (const contract_error&) {
        outcome.detected_by_invariants = true;
      }
    }
  }

  // Judge the final answer (gather may itself be malformed — that counts as
  // wrong output AND detection, since a real controller validates).
  try {
    std::vector<Run> runs;
    for (cell_index_t i = 0; i < n; ++i)
      if (array.cell(i).reg_small()) runs.push_back(*array.cell(i).reg_small());
    const RleRow out = xor_run_multiset(std::move(runs));
    outcome.wrong_output = out != ctx.expected_xor.canonical();
  } catch (const contract_error&) {
    outcome.wrong_output = true;
    outcome.detected_by_invariants = true;
  }
  if (!outcome.detected_by_invariants) {
    try {
      check_final_state(array, ctx);
    } catch (const contract_error&) {
      outcome.detected_by_invariants = true;
    }
  }
  return outcome;
}

}  // namespace sysrle
