#pragma once
// Hardware fault injection for the systolic machine.
//
// A real array of this design would be built from thousands of identical
// cells; single-cell defects (a stuck comparator, a dead shift register, a
// stuck completion line) are the realistic failure mode.  This module models
// those defects under three activation regimes — permanent (manufacturing
// defect), transient (particle strike / supply glitch: a window of cycles),
// and intermittent (marginal contact: each cycle with probability p) — and
// runs the algorithm with one injected fault, reporting whether the
// section-4 invariant checkers catch it.  That turns the paper's correctness
// theorems into an online self-test and doubles as mutation testing for the
// checkers themselves; core/checked_diff builds the recovery story
// (retry / fallback) on top of the same machinery.

#include "core/diff_cell.hpp"
#include "rle/rle_row.hpp"
#include "systolic/linear_array.hpp"
#include "workload/rng.hpp"

namespace sysrle {

/// Single-cell fault models.
enum class FaultKind {
  kNoSwap,            ///< step-1 comparator stuck: the cell never swaps
  kCorruptXorEnd,     ///< step-2 min unit off by one: RegSmall.end grows +1
  kDropShift,         ///< step-3 output register dead: the run vanishes
  kStuckCompleteHigh, ///< completion line stuck high: premature termination
};

/// Human-readable fault name.
const char* to_string(FaultKind kind);

/// When the injected fault is active.
enum class FaultActivation {
  kPermanent,     ///< every cycle — a manufacturing defect
  kTransient,     ///< a window of consecutive cycles — an SEU or glitch
  kIntermittent,  ///< each cycle independently with probability p
};

/// Human-readable activation name.
const char* to_string(FaultActivation activation);

/// Which fault to inject where, and when it is active.
struct FaultSpec {
  FaultKind kind = FaultKind::kNoSwap;
  cell_index_t cell = 0;
  FaultActivation activation = FaultActivation::kPermanent;

  /// kTransient: active for global cycles
  /// [window_start, window_start + window_length) — cycle numbers are
  /// 1-based and count across machine restarts, so a retried row can
  /// observe the glitch having cleared.
  cycle_t window_start = 1;
  cycle_t window_length = 2;

  /// kIntermittent: per-cycle activation probability and RNG seed
  /// (deterministic via workload/rng, like every experiment here).
  double probability = 0.5;
  std::uint64_t seed = 1;
};

/// Decides, cycle by cycle, whether a fault is active.  The cycle counter is
/// global: it keeps advancing across machine restarts, which is what lets a
/// retry recover from a transient fault (the window has passed) and gives an
/// intermittent fault a fresh coin flip every cycle of every attempt.
class FaultArbiter {
 public:
  explicit FaultArbiter(const FaultSpec& spec);

  /// Consumes one global cycle; returns whether the fault is active in it.
  bool next();

  /// Global cycles consumed so far.
  cycle_t cycles() const { return cycle_; }

 private:
  FaultSpec spec_;
  cycle_t cycle_ = 0;
  Rng rng_;
};

/// The systolic diff machine with one fault wired into its datapath.  Each
/// step takes the fault's activity for that cycle; with `fault_active` false
/// everywhere the machine is exactly the healthy one.  Exposed so
/// core/checked_diff can drive it step by step with checkers and a watchdog.
class FaultyDiffMachine {
 public:
  /// Loads the rows exactly like SystolicDiffMachine (capacity k1 + k2 + 1).
  FaultyDiffMachine(const RleRow& a, const RleRow& b, const FaultSpec& fault);

  /// Wired-AND of the completion lines; a stuck-high C line lies when the
  /// fault is active this cycle.
  bool terminated(bool fault_active) const;

  /// One order/xor/shift iteration with the fault active or dormant.
  void step(bool fault_active);

  /// Gathers the RegSmall lane; throws contract_error if the gathered runs
  /// are not a valid row (a real controller validates its DMA-out).
  RleRow gather_output() const;

  const LinearArray<DiffCell>& array() const { return array_; }
  cycle_t iterations() const { return iterations_; }
  std::size_t capacity() const { return array_.size(); }

 private:
  FaultSpec fault_;
  LinearArray<DiffCell> array_;
  cycle_t iterations_ = 0;
};

/// What happened when running with the fault.
struct FaultOutcome {
  /// A section-4 invariant checker threw during or after the run.
  bool detected_by_invariants = false;
  /// The machine terminated and produced an incorrect XOR.
  bool wrong_output = false;
  /// The machine failed to terminate within 2*(k1+k2)+4 iterations.
  bool timed_out = false;
  /// Iterations executed.
  cycle_t iterations = 0;

  /// True when the fault had any observable effect at all.
  bool any_effect() const {
    return detected_by_invariants || wrong_output || timed_out;
  }
  /// True when the run was both wrong and silent — a checker gap.
  bool silent_corruption() const {
    return wrong_output && !detected_by_invariants;
  }
};

/// Runs the systolic XOR with the given fault injected, invariant checkers
/// armed.  The checkers are run every iteration; a throw is recorded (not
/// propagated) and the simulation continues so the final output can also be
/// judged.
FaultOutcome run_with_fault(const RleRow& a, const RleRow& b,
                            const FaultSpec& fault);

}  // namespace sysrle
