#pragma once
// Hardware fault injection for the systolic machine.
//
// A real array of this design would be built from thousands of identical
// cells; single-cell defects (a stuck comparator, a dead shift register, a
// stuck completion line) are the realistic failure mode.  This module runs
// the algorithm with one injected fault and reports whether the section-4
// invariant checkers catch it — turning the paper's correctness theorems
// into an online self-test, and doubling as mutation testing for the
// checkers themselves.

#include "core/diff_cell.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Single-cell fault models.
enum class FaultKind {
  kNoSwap,            ///< step-1 comparator stuck: the cell never swaps
  kCorruptXorEnd,     ///< step-2 min unit off by one: RegSmall.end grows +1
  kDropShift,         ///< step-3 output register dead: the run vanishes
  kStuckCompleteHigh, ///< completion line stuck high: premature termination
};

/// Human-readable fault name.
const char* to_string(FaultKind kind);

/// Which fault to inject where.
struct FaultSpec {
  FaultKind kind = FaultKind::kNoSwap;
  cell_index_t cell = 0;
};

/// What happened when running with the fault.
struct FaultOutcome {
  /// A section-4 invariant checker threw during or after the run.
  bool detected_by_invariants = false;
  /// The machine terminated and produced an incorrect XOR.
  bool wrong_output = false;
  /// The machine failed to terminate within 2*(k1+k2)+4 iterations.
  bool timed_out = false;
  /// Iterations executed.
  cycle_t iterations = 0;

  /// True when the fault had any observable effect at all.
  bool any_effect() const {
    return detected_by_invariants || wrong_output || timed_out;
  }
  /// True when the run was both wrong and silent — a checker gap.
  bool silent_corruption() const {
    return wrong_output && !detected_by_invariants;
  }
};

/// Runs the systolic XOR with the given fault injected, invariant checkers
/// armed.  The checkers are run every iteration; a throw is recorded (not
/// propagated) and the simulation continues so the final output can also be
/// judged.
FaultOutcome run_with_fault(const RleRow& a, const RleRow& b,
                            const FaultSpec& fault);

}  // namespace sysrle
