#include "core/image_diff.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "baseline/word_diff.hpp"
#include "common/assert.hpp"
#include "core/bus_variant.hpp"
#include "core/cost_model.hpp"
#include "core/row_executor.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"

#ifdef SYSRLE_HAVE_OPENMP
#include <omp.h>
#endif

namespace sysrle {

const char* to_string(DiffEngine engine) {
  switch (engine) {
    case DiffEngine::kSystolic:
      return "systolic";
    case DiffEngine::kBusSystolic:
      return "bus-systolic";
    case DiffEngine::kSequentialMerge:
      return "sequential-merge";
    case DiffEngine::kParitySweep:
      return "parity-sweep";
    case DiffEngine::kPixelParallel:
      return "pixel-parallel";
    case DiffEngine::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

namespace {

/// The scheduling grain, matching the old `schedule(dynamic, 16)`.
constexpr std::size_t kRowChunk = 16;

/// Per-row spans contend on the shared trace buffer at high thread counts,
/// so only every kRowSpanStride-th row opens one.  Sampling by row index is
/// deterministic: the same rows are sampled at any thread count.
constexpr std::size_t kRowSpanStride = 64;

/// Which engine actually ran a row (kAdaptive resolves to one of the two).
enum class RowRoute { kFixed, kSystolic, kSequential };

/// Per-row outcome gathered before serial aggregation (keeps the parallel
/// loop free of shared mutable state).
struct RowOutcome {
  RleRow output;
  SystolicCounters counters;
  std::uint64_t sequential_iterations = 0;
  RowRoute route = RowRoute::kFixed;
};

/// Per-participant scratch: one machine whose cell storage is recycled
/// across every row this worker processes, instead of reallocated per row.
struct RowScratch {
  SystolicDiffMachine machine;
};

RowOutcome diff_row_body(const RleRow& ra, const RleRow& rb, pos_t width,
                         const ImageDiffOptions& options, RowScratch& scratch) {
  RowOutcome out;
  switch (options.engine) {
    case DiffEngine::kSystolic: {
      SystolicConfig cfg;
      cfg.check_invariants = options.check_invariants;
      cfg.canonicalize_output = options.canonicalize_output;
      SystolicResult r = systolic_xor(ra, rb, cfg, scratch.machine);
      out.output = std::move(r.output);
      out.counters = r.counters;
      break;
    }
    case DiffEngine::kBusSystolic: {
      BusConfig cfg;
      cfg.bus_width = options.bus_width;
      cfg.canonicalize_output = options.canonicalize_output;
      BusResult r = bus_systolic_xor(ra, rb, cfg);
      out.output = std::move(r.output);
      out.counters = r.counters;
      break;
    }
    case DiffEngine::kSequentialMerge: {
      // The word-parallel engine serves the (default) canonical form
      // directly; raw piecewise output — which the Observation-bound
      // telemetry needs — is only defined by the scalar merge.
      SequentialDiffResult r = options.canonicalize_output
                                   ? sequential_engine_xor(ra, rb)
                                   : sequential_xor(ra, rb);
      out.output = std::move(r.output);
      out.sequential_iterations = r.iterations;
      break;
    }
    case DiffEngine::kParitySweep: {
      out.output = xor_rows(ra, rb);  // canonical by construction
      break;
    }
    case DiffEngine::kPixelParallel: {
      PixelParallelResult r = pixel_parallel_xor(ra, rb, width);
      out.output = std::move(r.output);  // canonical by construction
      break;
    }
    case DiffEngine::kAdaptive: {
      // Route on the cheap half of the cost model only (k1, k2, |k1 - k2|);
      // the decision depends on nothing but the input rows, so the mix is
      // identical at every thread count.
      const AdaptiveRoute route =
          choose_adaptive_route(ra.run_count(), rb.run_count(),
                                options.adaptive_similarity_threshold);
      if (route == AdaptiveRoute::kSystolic) {
        SystolicConfig cfg;
        cfg.check_invariants = options.check_invariants;
        cfg.canonicalize_output = options.canonicalize_output;
        SystolicResult r = systolic_xor(ra, rb, cfg, scratch.machine);
        out.output = std::move(r.output);
        out.counters = r.counters;
        out.route = RowRoute::kSystolic;
      } else {
        SequentialDiffResult r = options.canonicalize_output
                                     ? sequential_engine_xor(ra, rb)
                                     : sequential_xor(ra, rb);
        out.output = std::move(r.output);
        out.sequential_iterations = r.iterations;
        out.route = RowRoute::kSequential;
      }
      break;
    }
  }
  return out;
}

RowOutcome diff_one_row(std::size_t y, const RleRow& ra, const RleRow& rb,
                        pos_t width, const ImageDiffOptions& options,
                        RowScratch& scratch) {
  if (y % kRowSpanStride == 0) {
    TELEMETRY_SPAN("row_diff", "image");
    return diff_row_body(ra, rb, width, options, scratch);
  }
  return diff_row_body(ra, rb, width, options, scratch);
}

RowRunStats run_rows_native(const RleImage& a, const RleImage& b,
                            const ImageDiffOptions& options,
                            std::vector<RowOutcome>& outcomes) {
  RowExecutor& executor = RowExecutor::global();
  const std::size_t n = outcomes.size();
  std::vector<RowScratch> scratch(
      std::max<std::size_t>(1, executor.plan_slots(n, options.threads,
                                                   kRowChunk)));
  return executor.run(
      n,
      [&](std::size_t i, std::size_t slot) {
        const pos_t y = static_cast<pos_t>(i);
        outcomes[i] =
            diff_one_row(i, a.row(y), b.row(y), a.width(), options,
                         scratch[slot]);
      },
      options.threads, kRowChunk);
}

#ifdef SYSRLE_HAVE_OPENMP
RowRunStats run_rows_openmp(const RleImage& a, const RleImage& b,
                            const ImageDiffOptions& options,
                            std::vector<RowOutcome>& outcomes) {
  const std::size_t slots = RowExecutor::resolve_threads(options.threads);
  std::vector<RowScratch> scratch(slots);
  RowRunStats stats;
  stats.rows_per_slot.assign(slots, 0);
  const pos_t height = static_cast<pos_t>(outcomes.size());
#pragma omp parallel for schedule(dynamic, 16) \
    num_threads(static_cast<int>(slots))
  for (pos_t y = 0; y < height; ++y) {
    const std::size_t slot = static_cast<std::size_t>(omp_get_thread_num());
    outcomes[static_cast<std::size_t>(y)] =
        diff_one_row(static_cast<std::size_t>(y), a.row(y), b.row(y),
                     a.width(), options, scratch[slot]);
    ++stats.rows_per_slot[slot];  // slots are per-thread: no race
  }
  return stats;
}
#endif

}  // namespace

ImageDiffResult image_diff(const RleImage& a, const RleImage& b,
                           const ImageDiffOptions& options) {
  TELEMETRY_SPAN("image_diff", "image");
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "image_diff: image dimensions differ");
  const pos_t height = a.height();
  std::vector<RowOutcome> outcomes(static_cast<std::size_t>(height));

  RowRunStats stats;
#ifdef SYSRLE_HAVE_OPENMP
  if (options.backend == ParallelBackend::kOpenMP)
    stats = run_rows_openmp(a, b, options, outcomes);
  else
    stats = run_rows_native(a, b, options, outcomes);
#else
  // Without OpenMP in the build, kOpenMP degrades to the native executor —
  // still parallel, never silently serial.
  stats = run_rows_native(a, b, options, outcomes);
#endif

  ImageDiffResult result;
  result.diff = RleImage(a.width(), height);
  for (pos_t y = 0; y < height; ++y) {
    RowOutcome& o = outcomes[static_cast<std::size_t>(y)];
    result.max_row_iterations =
        std::max(result.max_row_iterations, o.counters.iterations);
    result.counters += o.counters;
    result.sequential_iterations += o.sequential_iterations;
    if (o.route == RowRoute::kSystolic) ++result.adaptive_systolic_rows;
    if (o.route == RowRoute::kSequential) ++result.adaptive_sequential_rows;
    result.diff.set_row(y, std::move(o.output));
  }
  result.threads_used = std::max<std::uint64_t>(stats.threads_used(), 1);
  result.parallel_rows = stats.parallel_rows();

  if (telemetry_enabled()) {
    MetricsRegistry& m = global_metrics();
    m.observe("image.threads_used",
              static_cast<double>(result.threads_used));
    for (const std::uint64_t rows : stats.rows_per_slot)
      if (rows > 0)
        m.observe("image.rows_per_thread", static_cast<double>(rows));
    m.add("image.parallel_rows", result.parallel_rows);
    if (options.engine == DiffEngine::kAdaptive) {
      m.add("adaptive.picked_systolic", result.adaptive_systolic_rows);
      m.add("adaptive.picked_sequential", result.adaptive_sequential_rows);
    }
  }
  return result;
}

}  // namespace sysrle
