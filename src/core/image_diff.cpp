#include "core/image_diff.hpp"

#include <algorithm>
#include <vector>

#include "baseline/pixel_parallel.hpp"
#include "baseline/sequential_diff.hpp"
#include "common/assert.hpp"
#include "core/bus_variant.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

const char* to_string(DiffEngine engine) {
  switch (engine) {
    case DiffEngine::kSystolic:
      return "systolic";
    case DiffEngine::kBusSystolic:
      return "bus-systolic";
    case DiffEngine::kSequentialMerge:
      return "sequential-merge";
    case DiffEngine::kParitySweep:
      return "parity-sweep";
    case DiffEngine::kPixelParallel:
      return "pixel-parallel";
  }
  return "unknown";
}

namespace {

/// Per-row outcome gathered before serial aggregation (keeps the parallel
/// loop free of shared mutable state).
struct RowOutcome {
  RleRow output;
  SystolicCounters counters;
  std::uint64_t sequential_iterations = 0;
};

RowOutcome diff_one_row(const RleRow& ra, const RleRow& rb, pos_t width,
                        const ImageDiffOptions& options) {
  TELEMETRY_SPAN("row_diff", "image");
  RowOutcome out;
  switch (options.engine) {
    case DiffEngine::kSystolic: {
      SystolicConfig cfg;
      cfg.check_invariants = options.check_invariants;
      cfg.canonicalize_output = options.canonicalize_output;
      SystolicResult r = systolic_xor(ra, rb, cfg);
      out.output = std::move(r.output);
      out.counters = r.counters;
      break;
    }
    case DiffEngine::kBusSystolic: {
      BusConfig cfg;
      cfg.bus_width = options.bus_width;
      cfg.canonicalize_output = options.canonicalize_output;
      BusResult r = bus_systolic_xor(ra, rb, cfg);
      out.output = std::move(r.output);
      out.counters = r.counters;
      break;
    }
    case DiffEngine::kSequentialMerge: {
      SequentialDiffResult r = sequential_xor(ra, rb);
      out.output = std::move(r.output);
      out.sequential_iterations = r.iterations;
      if (options.canonicalize_output) out.output.canonicalize();
      break;
    }
    case DiffEngine::kParitySweep: {
      out.output = xor_rows(ra, rb);  // canonical by construction
      break;
    }
    case DiffEngine::kPixelParallel: {
      PixelParallelResult r = pixel_parallel_xor(ra, rb, width);
      out.output = std::move(r.output);  // canonical by construction
      break;
    }
  }
  return out;
}

}  // namespace

ImageDiffResult image_diff(const RleImage& a, const RleImage& b,
                           const ImageDiffOptions& options) {
  TELEMETRY_SPAN("image_diff", "image");
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "image_diff: image dimensions differ");
  const pos_t height = a.height();
  std::vector<RowOutcome> outcomes(static_cast<std::size_t>(height));

#ifdef SYSRLE_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 16)
#endif
  for (pos_t y = 0; y < height; ++y)
    outcomes[static_cast<std::size_t>(y)] =
        diff_one_row(a.row(y), b.row(y), a.width(), options);

  ImageDiffResult result{RleImage(a.width(), height), {}, 0, 0};
  for (pos_t y = 0; y < height; ++y) {
    RowOutcome& o = outcomes[static_cast<std::size_t>(y)];
    result.max_row_iterations =
        std::max(result.max_row_iterations, o.counters.iterations);
    result.counters += o.counters;
    result.sequential_iterations += o.sequential_iterations;
    result.diff.set_row(y, std::move(o.output));
  }
  return result;
}

}  // namespace sysrle
