#pragma once
// Image-level difference API: applies a row-diff engine to every scanline of
// two RLE images.  This is the operation a PCB inspection system performs per
// acquired board image (reference CAD artwork vs scan), and the natural unit
// for which the paper's per-row machine would be replicated or time-shared.
//
// Rows are independent (the whole premise of the paper's systolic array), so
// the row loop always runs on the native RowExecutor pool — parallelism is
// unconditional, not a configure-time accident of finding OpenMP.  OpenMP
// remains available as an optional backend.  The result is bit-identical to
// a serial run regardless of thread count: scheduling decides who computes a
// row, never what, and aggregation is serial in row order.

#include <cstdint>

#include "core/cost_model.hpp"
#include "rle/rle_image.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// Which row-diff engine to run.
enum class DiffEngine {
  kSystolic,         ///< the paper's machine (cycle-level simulation)
  kBusSystolic,      ///< section-6 broadcast-bus variant
  kSequentialMerge,  ///< the paper's sequential comparator
  kParitySweep,      ///< library fast path (rle/ops.hpp xor_rows)
  kPixelParallel,    ///< decompress + word-parallel XOR + recompress
  kAdaptive,         ///< per-row systolic/sequential dispatch on the cheap
                     ///< half of the §5 cost model (see core/cost_model.hpp)
};

/// Human-readable engine name (for bench output).
const char* to_string(DiffEngine engine);

/// Which runtime drives the parallel row loop.
enum class ParallelBackend {
  kNative,  ///< core/row_executor.hpp — always available
  kOpenMP,  ///< the OpenMP runtime; falls back to kNative when the build
            ///< has no OpenMP (SYSRLE_WITH_OPENMP=OFF or not found)
};

/// Options for image_diff.
struct ImageDiffOptions {
  DiffEngine engine = DiffEngine::kSystolic;
  /// Merge adjacent runs in every output row.
  bool canonicalize_output = true;
  /// Run the section-4 invariant checkers on every systolic row (slow).
  bool check_invariants = false;
  /// Bus width for kBusSystolic (0 = unbounded).
  std::size_t bus_width = 0;

  /// Worker threads for the row loop: 0 = auto (everything the shared pool
  /// offers), 1 = serial in the calling thread, N = exactly N participants
  /// (growing the pool on demand, capped at RowExecutor::kMaxThreads).
  std::size_t threads = 0;

  /// Row-loop runtime (see ParallelBackend).
  ParallelBackend backend = ParallelBackend::kNative;

  /// kAdaptive routing knob: a row goes systolic when
  /// |k1 - k2| <= threshold * (k1 + k2), sequential otherwise.  The default
  /// is the θ re-calibrated against the word-parallel sequential engine
  /// (see cost_model.hpp).
  double adaptive_similarity_threshold = kDefaultSimilarityThreshold;
};

/// Aggregated result of an image-level diff.
struct ImageDiffResult {
  RleImage diff{0, 0};             ///< per-row XOR of the two images
  SystolicCounters counters;       ///< summed machine activity (systolic/bus)
  std::uint64_t sequential_iterations = 0;  ///< summed merge iterations
  cycle_t max_row_iterations = 0;  ///< worst row (array latency if machines
                                   ///< process rows in parallel)

  /// kAdaptive dispatch mix (both zero for fixed engines).
  std::uint64_t adaptive_systolic_rows = 0;
  std::uint64_t adaptive_sequential_rows = 0;

  /// Effective parallelism of this call: participants that processed at
  /// least one row, and rows processed off the calling thread.  A silently
  /// serial run is detectable as threads_used == 1 / parallel_rows == 0.
  std::uint64_t threads_used = 1;
  std::uint64_t parallel_rows = 0;
};

/// Computes the per-row XOR of two equal-sized RLE images with the selected
/// engine.  Rows are processed in parallel on the native executor (or the
/// OpenMP backend when requested and compiled in); output and aggregated
/// counters are bit-identical to a serial run for any thread count.
ImageDiffResult image_diff(const RleImage& a, const RleImage& b,
                           const ImageDiffOptions& options = {});

}  // namespace sysrle
