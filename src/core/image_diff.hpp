#pragma once
// Image-level difference API: applies a row-diff engine to every scanline of
// two RLE images.  This is the operation a PCB inspection system performs per
// acquired board image (reference CAD artwork vs scan), and the natural unit
// for which the paper's per-row machine would be replicated or time-shared.

#include <cstdint>

#include "rle/rle_image.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// Which row-diff engine to run.
enum class DiffEngine {
  kSystolic,         ///< the paper's machine (cycle-level simulation)
  kBusSystolic,      ///< section-6 broadcast-bus variant
  kSequentialMerge,  ///< the paper's sequential comparator
  kParitySweep,      ///< library fast path (rle/ops.hpp xor_rows)
  kPixelParallel,    ///< decompress + word-parallel XOR + recompress
};

/// Human-readable engine name (for bench output).
const char* to_string(DiffEngine engine);

/// Options for image_diff.
struct ImageDiffOptions {
  DiffEngine engine = DiffEngine::kSystolic;
  /// Merge adjacent runs in every output row.
  bool canonicalize_output = true;
  /// Run the section-4 invariant checkers on every systolic row (slow).
  bool check_invariants = false;
  /// Bus width for kBusSystolic (0 = unbounded).
  std::size_t bus_width = 0;
};

/// Aggregated result of an image-level diff.
struct ImageDiffResult {
  RleImage diff;                   ///< per-row XOR of the two images
  SystolicCounters counters;       ///< summed machine activity (systolic/bus)
  std::uint64_t sequential_iterations = 0;  ///< summed merge iterations
  cycle_t max_row_iterations = 0;  ///< worst row (array latency if machines
                                   ///< process rows in parallel)
};

/// Computes the per-row XOR of two equal-sized RLE images with the selected
/// engine.  Rows are independent; when OpenMP is available they are processed
/// in parallel (the result is deterministic regardless).
ImageDiffResult image_diff(const RleImage& a, const RleImage& b,
                           const ImageDiffOptions& options = {});

}  // namespace sysrle
