#include "core/invariants.hpp"

#include <vector>

#include "common/assert.hpp"
#include "rle/ops.hpp"

namespace sysrle {
namespace {

/// Checks that the non-empty values of one register lane are strictly
/// ordered and non-overlapping (prev.end < next.start).
template <typename GetReg>
void check_lane_ordered(const LinearArray<DiffCell>& array, GetReg get,
                        const char* lane) {
  const Run* prev = nullptr;
  for (cell_index_t i = 0; i < array.size(); ++i) {
    const std::optional<Run>& r = get(array.cell(i));
    if (!r) continue;
    if (prev)
      SYSRLE_CHECK(prev->end() < r->start,
                   std::string(lane) + " lane out of order/overlapping");
    prev = &*r;
  }
}

}  // namespace

InvariantContext make_invariant_context(const RleRow& a, const RleRow& b) {
  InvariantContext ctx;
  ctx.expected_xor = xor_rows(a, b);
  ctx.k1 = a.run_count();
  ctx.k2 = b.run_count();
  return ctx;
}

void check_corollary21_after_xor(const LinearArray<DiffCell>& array) {
  // Parts 1 and 2: each lane ordered.
  check_lane_ordered(array, [](const DiffCell& c) -> const std::optional<Run>& {
    return c.reg_small();
  }, "Cor2.1(1) RegSmall");
  check_lane_ordered(array, [](const DiffCell& c) -> const std::optional<Run>& {
    return c.reg_big();
  }, "Cor2.1(2) RegBig");

  // Parts 3 and 4 combined: for every cell j holding a RegBig run, every
  // RegSmall run at index i <= j must end before it starts.  A prefix
  // maximum over RegSmall ends makes this O(n).
  pos_t max_small_end = -1;
  bool any_small = false;
  for (cell_index_t j = 0; j < array.size(); ++j) {
    const DiffCell& c = array.cell(j);
    if (c.reg_small()) {
      any_small = true;
      max_small_end = std::max(max_small_end, c.reg_small()->end());
    }
    if (c.reg_big() && any_small)
      SYSRLE_CHECK(max_small_end < c.reg_big()->start,
                   "Cor2.1(3/4): a RegSmall run reaches into a RegBig run");
  }
}

void check_corollary21_part5_after_shift(const LinearArray<DiffCell>& array) {
  // For each cell j with a RegSmall run: among cells i <= E(j) — where E(j)
  // is the last index < j whose RegSmall is empty — every RegBig must end
  // before RegSmall(j) starts.  Prefix maxima make this O(n).
  pos_t max_big_end_upto_empty = -1;  // max RegBig.end over i <= last empty
  pos_t max_big_end_prefix = -1;      // max RegBig.end over all i < j
  bool seen_empty = false;
  for (cell_index_t j = 0; j < array.size(); ++j) {
    const DiffCell& c = array.cell(j);
    if (c.reg_small() && seen_empty)
      SYSRLE_CHECK(max_big_end_upto_empty < c.reg_small()->start,
                   "Cor2.1(5): RegBig run not before RegSmall run past a gap");
    if (c.reg_big())
      max_big_end_prefix = std::max(max_big_end_prefix, c.reg_big()->end());
    if (!c.reg_small()) {
      seen_empty = true;
      // Cells i <= j qualify, including j itself ("including i itself" with
      // k == i requires only small(i) empty... the clause allows k == i).
      max_big_end_upto_empty = max_big_end_prefix;
    }
  }
}

void check_theorem2(const LinearArray<DiffCell>& array) {
  check_lane_ordered(array, [](const DiffCell& c) -> const std::optional<Run>& {
    return c.reg_small();
  }, "Thm2(1) RegSmall");
  check_lane_ordered(array, [](const DiffCell& c) -> const std::optional<Run>& {
    return c.reg_big();
  }, "Thm2(2) RegBig");
}

void check_theorem3_conservation(const LinearArray<DiffCell>& array,
                                 const InvariantContext& ctx) {
  std::vector<Run> held;
  for (cell_index_t i = 0; i < array.size(); ++i) {
    const DiffCell& c = array.cell(i);
    if (c.reg_small()) held.push_back(*c.reg_small());
    if (c.reg_big()) held.push_back(*c.reg_big());
  }
  const RleRow folded = xor_run_multiset(std::move(held));
  SYSRLE_CHECK(folded == ctx.expected_xor.canonical(),
               "Thm3: multiset XOR of held runs drifted from the input XOR");
}

void check_corollary11(const LinearArray<DiffCell>& array,
                       const InvariantContext& ctx, cycle_t iteration) {
  (void)ctx;
  const cell_index_t limit =
      std::min(static_cast<cell_index_t>(iteration), array.size());
  for (cell_index_t i = 0; i < limit; ++i)
    SYSRLE_CHECK(!array.cell(i).reg_big(),
                 "Cor1.1: RegBig still occupied in an early cell");
}

void check_end_of_iteration(const LinearArray<DiffCell>& array,
                            const InvariantContext& ctx, cycle_t iteration) {
  check_theorem2(array);
  check_corollary21_part5_after_shift(array);
  check_corollary11(array, ctx, iteration);
  check_theorem3_conservation(array, ctx);
}

void check_final_state(const LinearArray<DiffCell>& array,
                       const InvariantContext& ctx) {
  for (cell_index_t i = 0; i < array.size(); ++i)
    SYSRLE_CHECK(array.cell(i).complete(),
                 "final state: a RegBig register is still occupied");
  check_theorem2(array);

  std::vector<Run> held;
  for (cell_index_t i = 0; i < array.size(); ++i)
    if (array.cell(i).reg_small()) held.push_back(*array.cell(i).reg_small());
  RleRow out(std::move(held));
  SYSRLE_CHECK(out.canonical() == ctx.expected_xor.canonical(),
               "final state: gathered output is not the XOR of the inputs");
}

}  // namespace sysrle
