#pragma once
// Executable versions of the paper's correctness results (section 4).  The
// simulator can run these after every iteration; the property tests always
// do.  Each checker throws contract_error with a description on violation —
// a violation would falsify the paper (or our transcription of it).

#include "core/diff_cell.hpp"
#include "rle/rle_row.hpp"
#include "systolic/linear_array.hpp"

namespace sysrle {

/// Per-run context the checkers compare against.
struct InvariantContext {
  RleRow expected_xor;  ///< ground-truth XOR of the two input rows
  cycle_t k1 = 0;       ///< runs in input row a
  cycle_t k2 = 0;       ///< runs in input row b
};

/// Builds the context (computes the ground-truth XOR once, sequentially).
InvariantContext make_invariant_context(const RleRow& a, const RleRow& b);

/// Corollary 2.1 parts 1–4, checked after step 2 of an iteration:
///   (1) RegSmall lane strictly ordered and non-overlapping,
///   (2) RegBig lane strictly ordered and non-overlapping,
///   (3) within a cell, RegSmall.end < RegBig.start,
///   (4) RegSmall of cell i ends before RegBig of any cell j >= i starts.
void check_corollary21_after_xor(const LinearArray<DiffCell>& array);

/// Corollary 2.1 part 5, checked after step 3: if cell i holds a RegBig run,
/// cell j > i holds a RegSmall run, and some cell in [i, j) has an empty
/// RegSmall, then RegBig(i).end < RegSmall(j).start.
void check_corollary21_part5_after_shift(const LinearArray<DiffCell>& array);

/// Theorem 2 (end-of-iteration ordering): both register lanes are ordered
/// and non-overlapping.
void check_theorem2(const LinearArray<DiffCell>& array);

/// Theorem 3 conservation: the XOR over every run currently held in the
/// array (both lanes) equals the ground-truth XOR of the inputs.
void check_theorem3_conservation(const LinearArray<DiffCell>& array,
                                 const InvariantContext& ctx);

/// Corollary 1.1: after iteration `iteration` (1-based), the first
/// `iteration` cells hold no RegBig run.
void check_corollary11(const LinearArray<DiffCell>& array,
                       const InvariantContext& ctx, cycle_t iteration);

/// Runs every per-iteration check that applies at end of iteration
/// (Theorem 2, Theorem 3 conservation, Corollaries 1.1 and 2.1 part 5).
void check_end_of_iteration(const LinearArray<DiffCell>& array,
                            const InvariantContext& ctx, cycle_t iteration);

/// Final-state checks: machine terminated (all RegBig empty), output ordered
/// and equal (as a bitstring) to the expected XOR.
void check_final_state(const LinearArray<DiffCell>& array,
                       const InvariantContext& ctx);

}  // namespace sysrle
