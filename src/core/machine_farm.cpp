#include "core/machine_farm.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/rng.hpp"

namespace sysrle {

namespace {

/// Sentinel death time for machines that never fail.
constexpr cycle_t kNever = std::numeric_limits<cycle_t>::max();

/// Sentinel for "no machine".
constexpr std::size_t kNoMachine = std::numeric_limits<std::size_t>::max();

}  // namespace

FarmResult simulate_row_farm(const RleImage& a, const RleImage& b,
                             const FarmConfig& config) {
  TELEMETRY_SPAN("farm.simulate", "farm");
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "simulate_row_farm: image dimensions differ");
  SYSRLE_REQUIRE(config.machines >= 1, "simulate_row_farm: need >= 1 machine");

  std::vector<cycle_t> death(config.machines, kNever);
  for (const MachineFailure& f : config.failures) {
    SYSRLE_REQUIRE(f.machine < config.machines,
                   "simulate_row_farm: failure names an unknown machine");
    death[f.machine] = std::min(death[f.machine], f.at_cycle);
  }
  std::vector<double> flaky_p(config.machines, 0.0);
  for (const FlakyMachine& f : config.flaky) {
    SYSRLE_REQUIRE(f.machine < config.machines,
                   "simulate_row_farm: flaky names an unknown machine");
    SYSRLE_REQUIRE(
        f.failure_probability >= 0.0 && f.failure_probability <= 1.0,
        "simulate_row_farm: flaky probability must be in [0, 1]");
    flaky_p[f.machine] = std::max(flaky_p[f.machine], f.failure_probability);
  }

  // Measure per-row service times with the real simulator, and keep the
  // outputs: a re-dispatched row is recomputed from its unchanged inputs, so
  // the image-level result is failure-independent.
  FarmResult result;
  std::vector<cycle_t> service;
  std::vector<RleRow> diff_rows;
  service.reserve(static_cast<std::size_t>(a.height()));
  diff_rows.reserve(static_cast<std::size_t>(a.height()));
  for (pos_t y = 0; y < a.height(); ++y) {
    SystolicResult r = systolic_xor(a.row(y), b.row(y));
    service.push_back(r.counters.iterations + config.per_row_overhead);
    r.output.canonicalize();
    diff_rows.push_back(std::move(r.output));
  }
  result.diff = RleImage(a.width(), std::move(diff_rows));

  if (config.policy == FarmConfig::Policy::kLongestFirst)
    std::sort(service.begin(), service.end(), std::greater<>());

  // List scheduling with failover.  Jobs are dispatched to the machine that
  // can start them earliest; a job interrupted by its machine's death, or
  // failed by a flaky machine, is appended back onto the queue, startable no
  // earlier than the failure and excluded from the machine that just burned
  // it.
  struct Job {
    cycle_t service = 0;
    cycle_t earliest = 0;
    std::size_t exclude = kNoMachine;  ///< machine that just failed this job
    std::uint64_t attempts = 0;
  };
  std::vector<Job> queue;
  queue.reserve(service.size());
  for (const cycle_t s : service) queue.push_back({s, 0, kNoMachine, 0});

  std::vector<cycle_t> free_at(config.machines, 0);
  std::vector<bool> dead(config.machines, false);
  // Cycles each machine spent productively computing rows (burned cycles on
  // an interrupted or failed row count as lost, not busy).
  std::vector<cycle_t> busy(config.machines, 0);
  std::vector<CircuitBreaker> breakers;
  if (config.enable_breakers) {
    breakers.reserve(config.machines);
    for (std::size_t m = 0; m < config.machines; ++m)
      breakers.emplace_back(config.breaker, "machine." + std::to_string(m));
  }
  result.dispatches.assign(config.machines, 0);
  Rng coin(config.seed);
  // Re-dispatch loops cannot run forever: a board where every machine keeps
  // failing every row is reported as a contract violation, not a hang.
  const std::uint64_t max_attempts = 8 * (config.machines + 1);

  for (std::size_t j = 0; j < queue.size(); ++j) {  // grows on re-dispatch
    const Job job = queue[j];
    while (true) {
      // Earliest-start machine among the candidates.  A tripped breaker
      // pushes its machine's candidate start to the end of the open window
      // (where allow() will admit it as a half-open probe).
      std::size_t best = kNoMachine;
      cycle_t best_start = kNever;
      bool alternatives = false;  // any alive machine besides job.exclude?
      for (std::size_t m = 0; m < config.machines; ++m)
        if (!dead[m] && m != job.exclude) alternatives = true;
      for (std::size_t m = 0; m < config.machines; ++m) {
        if (dead[m]) continue;
        if (m == job.exclude && alternatives) continue;
        cycle_t start = std::max(free_at[m], job.earliest);
        if (config.enable_breakers &&
            breakers[m].state() == BreakerState::kOpen)
          start = std::max(start, breakers[m].reopen_at());
        if (start < best_start) {
          best_start = start;
          best = m;
        }
      }
      SYSRLE_CHECK(
          best < config.machines,
          "simulate_row_farm: every machine died before the board finished");
      if (death[best] <= best_start) {
        dead[best] = true;  // died while idle; pick another machine
        continue;
      }
      if (config.enable_breakers) {
        const bool was_half_open =
            breakers[best].state() == BreakerState::kOpen ||
            breakers[best].state() == BreakerState::kHalfOpen;
        if (!breakers[best].allow(best_start)) {
          // Half-open probe slots are taken; the machine is unavailable
          // until its probes resolve.  Model that as busy-until-reopen, and
          // always advance the candidate start so the search terminates.
          free_at[best] = std::max({free_at[best], best_start + 1,
                                    breakers[best].reopen_at()});
          continue;
        }
        if (was_half_open) ++result.probe_dispatches;
      }
      ++result.dispatches[best];
      const cycle_t done = best_start + job.service;
      if (death[best] < done) {
        // Interrupted mid-row: the cycles are burned, the machine is gone,
        // and a survivor re-runs the row once the failure is known.
        result.lost_cycles += death[best] - best_start;
        ++result.redispatched_rows;
        dead[best] = true;
        queue.push_back({job.service, death[best], kNoMachine, 0});
        break;
      }
      if (flaky_p[best] > 0.0 && coin.bernoulli(flaky_p[best])) {
        // Flaky failure, detected at row completion: the full service time
        // is burned and the row is re-dispatched away from this machine.
        free_at[best] = done;
        result.faulty_cycles += job.service;
        ++result.faulty_dispatches;
        if (config.enable_breakers) {
          const BreakerState before = breakers[best].state();
          breakers[best].record_failure(done);
          if (before != BreakerState::kOpen &&
              breakers[best].state() == BreakerState::kOpen)
            ++result.breaker_opens;
        }
        SYSRLE_CHECK(job.attempts + 1 < max_attempts,
                     "simulate_row_farm: no progress — every machine keeps "
                     "failing this row");
        queue.push_back({job.service, done, best, job.attempts + 1});
        break;
      }
      if (config.enable_breakers) breakers[best].record_success(done);
      free_at[best] = done;
      busy[best] += job.service;
      result.makespan = std::max(result.makespan, done);
      result.total_work += job.service;
      result.critical_row = std::max(result.critical_row, job.service);
      break;
    }
  }

  // A machine whose death precedes the end of the board died during the run
  // even if it was idle at the time.
  for (std::size_t m = 0; m < config.machines; ++m)
    if (death[m] < result.makespan) dead[m] = true;
  result.failed_machines = static_cast<std::size_t>(
      std::count(dead.begin(), dead.end(), true));
  result.degraded = result.failed_machines > 0 ||
                    result.redispatched_rows > 0 ||
                    result.faulty_dispatches > 0;
  if (config.enable_breakers) {
    result.breaker_states.reserve(config.machines);
    for (const CircuitBreaker& br : breakers)
      result.breaker_states.push_back(br.state());
  }

  if (result.makespan > 0) {
    result.utilisation =
        static_cast<double>(result.total_work) /
        (static_cast<double>(config.machines) *
         static_cast<double>(result.makespan));
  }

  if (telemetry_enabled()) {
    MetricsRegistry& m = global_metrics();
    m.add("farm.simulations");
    m.add("farm.redispatched_rows", result.redispatched_rows);
    m.add("farm.faulty_dispatches", result.faulty_dispatches);
    m.add("farm.probe_dispatches", result.probe_dispatches);
    m.set_gauge("farm.utilisation", result.utilisation);
    m.set_gauge("farm.makespan_cycles",
                static_cast<double>(result.makespan));
    if (result.makespan > 0) {
      for (std::size_t i = 0; i < config.machines; ++i) {
        m.set_gauge("farm.machine." + std::to_string(i) + ".utilisation",
                    static_cast<double>(busy[i]) /
                        static_cast<double>(result.makespan));
      }
    }
  }
  return result;
}

}  // namespace sysrle
