#include "core/machine_farm.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"

namespace sysrle {

FarmResult simulate_row_farm(const RleImage& a, const RleImage& b,
                             const FarmConfig& config) {
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "simulate_row_farm: image dimensions differ");
  SYSRLE_REQUIRE(config.machines >= 1, "simulate_row_farm: need >= 1 machine");

  // Measure per-row service times with the real simulator.
  std::vector<cycle_t> service;
  service.reserve(static_cast<std::size_t>(a.height()));
  for (pos_t y = 0; y < a.height(); ++y) {
    const SystolicResult r = systolic_xor(a.row(y), b.row(y));
    service.push_back(r.counters.iterations + config.per_row_overhead);
  }

  if (config.policy == FarmConfig::Policy::kLongestFirst)
    std::sort(service.begin(), service.end(), std::greater<>());

  // List scheduling: each row goes to the machine that frees up first.
  std::priority_queue<cycle_t, std::vector<cycle_t>, std::greater<>> free_at;
  for (std::size_t m = 0; m < config.machines; ++m) free_at.push(0);

  FarmResult result;
  for (const cycle_t s : service) {
    const cycle_t start = free_at.top();
    free_at.pop();
    const cycle_t done = start + s;
    free_at.push(done);
    result.makespan = std::max(result.makespan, done);
    result.total_work += s;
    result.critical_row = std::max(result.critical_row, s);
  }
  if (result.makespan > 0) {
    result.utilisation =
        static_cast<double>(result.total_work) /
        (static_cast<double>(config.machines) *
         static_cast<double>(result.makespan));
  }
  return result;
}

}  // namespace sysrle
