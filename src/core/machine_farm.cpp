#include "core/machine_farm.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

/// Sentinel death time for machines that never fail.
constexpr cycle_t kNever = std::numeric_limits<cycle_t>::max();

}  // namespace

FarmResult simulate_row_farm(const RleImage& a, const RleImage& b,
                             const FarmConfig& config) {
  TELEMETRY_SPAN("farm.simulate", "farm");
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "simulate_row_farm: image dimensions differ");
  SYSRLE_REQUIRE(config.machines >= 1, "simulate_row_farm: need >= 1 machine");

  std::vector<cycle_t> death(config.machines, kNever);
  for (const MachineFailure& f : config.failures) {
    SYSRLE_REQUIRE(f.machine < config.machines,
                   "simulate_row_farm: failure names an unknown machine");
    death[f.machine] = std::min(death[f.machine], f.at_cycle);
  }

  // Measure per-row service times with the real simulator, and keep the
  // outputs: a re-dispatched row is recomputed from its unchanged inputs, so
  // the image-level result is failure-independent.
  FarmResult result;
  std::vector<cycle_t> service;
  std::vector<RleRow> diff_rows;
  service.reserve(static_cast<std::size_t>(a.height()));
  diff_rows.reserve(static_cast<std::size_t>(a.height()));
  for (pos_t y = 0; y < a.height(); ++y) {
    SystolicResult r = systolic_xor(a.row(y), b.row(y));
    service.push_back(r.counters.iterations + config.per_row_overhead);
    r.output.canonicalize();
    diff_rows.push_back(std::move(r.output));
  }
  result.diff = RleImage(a.width(), std::move(diff_rows));

  if (config.policy == FarmConfig::Policy::kLongestFirst)
    std::sort(service.begin(), service.end(), std::greater<>());

  // List scheduling with failover.  Jobs are dispatched to the machine that
  // can start them earliest; a job interrupted by its machine's death is
  // appended back onto the queue, startable no earlier than the failure.
  struct Job {
    cycle_t service = 0;
    cycle_t earliest = 0;
  };
  std::vector<Job> queue;
  queue.reserve(service.size());
  for (const cycle_t s : service) queue.push_back({s, 0});

  std::vector<cycle_t> free_at(config.machines, 0);
  std::vector<bool> dead(config.machines, false);
  // Cycles each machine spent productively computing rows (burned cycles on
  // an interrupted row count as lost, not busy).
  std::vector<cycle_t> busy(config.machines, 0);

  for (std::size_t j = 0; j < queue.size(); ++j) {  // grows on re-dispatch
    const Job job = queue[j];
    while (true) {
      std::size_t best = config.machines;
      cycle_t best_start = kNever;
      for (std::size_t m = 0; m < config.machines; ++m) {
        if (dead[m]) continue;
        const cycle_t start = std::max(free_at[m], job.earliest);
        if (start < best_start) {
          best_start = start;
          best = m;
        }
      }
      SYSRLE_CHECK(
          best < config.machines,
          "simulate_row_farm: every machine died before the board finished");
      if (death[best] <= best_start) {
        dead[best] = true;  // died while idle; pick another machine
        continue;
      }
      const cycle_t done = best_start + job.service;
      if (death[best] < done) {
        // Interrupted mid-row: the cycles are burned, the machine is gone,
        // and a survivor re-runs the row once the failure is known.
        result.lost_cycles += death[best] - best_start;
        ++result.redispatched_rows;
        dead[best] = true;
        queue.push_back({job.service, death[best]});
        break;
      }
      free_at[best] = done;
      busy[best] += job.service;
      result.makespan = std::max(result.makespan, done);
      result.total_work += job.service;
      result.critical_row = std::max(result.critical_row, job.service);
      break;
    }
  }

  // A machine whose death precedes the end of the board died during the run
  // even if it was idle at the time.
  for (std::size_t m = 0; m < config.machines; ++m)
    if (death[m] < result.makespan) dead[m] = true;
  result.failed_machines = static_cast<std::size_t>(
      std::count(dead.begin(), dead.end(), true));
  result.degraded =
      result.failed_machines > 0 || result.redispatched_rows > 0;

  if (result.makespan > 0) {
    result.utilisation =
        static_cast<double>(result.total_work) /
        (static_cast<double>(config.machines) *
         static_cast<double>(result.makespan));
  }

  if (telemetry_enabled()) {
    MetricsRegistry& m = global_metrics();
    m.add("farm.simulations");
    m.add("farm.redispatched_rows", result.redispatched_rows);
    m.set_gauge("farm.utilisation", result.utilisation);
    m.set_gauge("farm.makespan_cycles",
                static_cast<double>(result.makespan));
    if (result.makespan > 0) {
      for (std::size_t i = 0; i < config.machines; ++i) {
        m.set_gauge("farm.machine." + std::to_string(i) + ".utilisation",
                    static_cast<double>(busy[i]) /
                        static_cast<double>(result.makespan));
      }
    }
  }
  return result;
}

}  // namespace sysrle
