#pragma once
// A farm of systolic machines processing a whole image pair, row by row.
//
// The paper's machine diffs one row; an inspection system has thousands of
// scanlines per board.  This model answers the system-level question: with P
// copies of the array (or one array time-shared P ways), what is the board
// latency?  Each row's service time is its measured iteration count plus a
// fixed load/drain overhead; rows are dispatched to machines either in scan
// order (kFifo — what a streaming camera interface does) or longest-first
// (kLongestFirst — the classic LPT bound, needs the whole board buffered).

#include <cstddef>

#include "rle/rle_image.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// Farm configuration.
struct FarmConfig {
  /// Number of parallel systolic machines.
  std::size_t machines = 4;

  /// Fixed cycles per row for loading the runs and draining the result.
  cycle_t per_row_overhead = 2;

  /// Dispatch policy.
  enum class Policy {
    kFifo,          ///< rows dispatched in scan order as machines free up
    kLongestFirst,  ///< offline LPT: longest service time first
  };
  Policy policy = Policy::kFifo;
};

/// Farm simulation outcome.
struct FarmResult {
  cycle_t makespan = 0;      ///< cycles until the last row completes
  cycle_t total_work = 0;    ///< sum of all row service times
  cycle_t critical_row = 0;  ///< largest single-row service time
  double utilisation = 0.0;  ///< total_work / (machines * makespan)
};

/// Simulates diffing images `a` and `b` on the farm.  Row service times come
/// from actually running the systolic simulator on every row pair.
/// Dimensions must match.
FarmResult simulate_row_farm(const RleImage& a, const RleImage& b,
                             const FarmConfig& config = {});

}  // namespace sysrle
