#pragma once
// A farm of systolic machines processing a whole image pair, row by row.
//
// The paper's machine diffs one row; an inspection system has thousands of
// scanlines per board.  This model answers the system-level question: with P
// copies of the array (or one array time-shared P ways), what is the board
// latency?  Each row's service time is its measured iteration count plus a
// fixed load/drain overhead; rows are dispatched to machines either in scan
// order (kFifo — what a streaming camera interface does) or longest-first
// (kLongestFirst — the classic LPT bound, needs the whole board buffered).
//
// The farm is also where machine-level failures are absorbed, in two
// flavours:
//   * a machine can be *killed* at a configured cycle (MachineFailure) —
//     its in-flight row is re-dispatched to a survivor;
//   * a machine can be *flaky* (FlakyMachine): it stays alive but fails
//     rows with a configured probability, burning the row's full service
//     time before the failure is detected (the §4 checkers fire at row
//     completion).  A failed row is re-dispatched to a different machine.
// A permanently flaky machine would bleed one wasted service time per
// dispatched row forever; enabling the per-machine circuit breakers
// (core/circuit_breaker) stops dispatching to it after
// `breaker.failure_threshold` consecutive failures, except for half-open
// probes.  Either way the image-level difference stays correct, because a
// re-run row is recomputed from its unchanged inputs.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/circuit_breaker.hpp"
#include "rle/rle_image.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// One injected machine death.
struct MachineFailure {
  std::size_t machine = 0;  ///< which machine dies
  cycle_t at_cycle = 0;     ///< time of death; in-flight work is lost
};

/// A machine that stays alive but fails dispatched rows.  The failure is
/// detected at the end of the row's service time (checkers fire at
/// completion), so every failed dispatch burns a full service time.
struct FlakyMachine {
  std::size_t machine = 0;
  /// Per-dispatch failure probability; 1.0 models a permanent defect.
  /// Decided by a deterministic Rng seeded from FarmConfig::seed.
  double failure_probability = 1.0;
};

/// Farm configuration.
struct FarmConfig {
  /// Number of parallel systolic machines.
  std::size_t machines = 4;

  /// Fixed cycles per row for loading the runs and draining the result.
  cycle_t per_row_overhead = 2;

  /// Dispatch policy.
  enum class Policy {
    kFifo,          ///< rows dispatched in scan order as machines free up
    kLongestFirst,  ///< offline LPT: longest service time first
  };
  Policy policy = Policy::kFifo;

  /// Machine deaths to inject (empty = healthy farm).  If one machine is
  /// named twice, its earliest death wins.  At least one machine must
  /// survive long enough to finish the board, or the simulation throws.
  std::vector<MachineFailure> failures;

  /// Flaky machines (empty = none).  If one machine is named twice, the
  /// highest failure probability wins.
  std::vector<FlakyMachine> flaky;

  /// Seeds the per-dispatch failure coin flips, so a flaky-farm run is
  /// byte-reproducible (docs/TESTING.md, "Deterministic randomness").
  std::uint64_t seed = 42;

  /// Arm a per-machine circuit breaker with this policy.  Tripped machines
  /// receive no rows except half-open probes; state is published as
  /// "service.breaker_state.machine.<i>" when telemetry is on.
  bool enable_breakers = false;
  BreakerPolicy breaker;
};

/// Farm simulation outcome.
struct FarmResult {
  cycle_t makespan = 0;      ///< cycles until the last row completes
  cycle_t total_work = 0;    ///< sum of all row service times (useful work)
  cycle_t critical_row = 0;  ///< largest single-row service time
  double utilisation = 0.0;  ///< total_work / (machines * makespan)

  /// The full-image difference, one canonical row per scanline; correct
  /// regardless of injected failures.
  RleImage diff{0, 0};

  // --- degraded-mode accounting (all zero for a healthy farm) -------------
  std::size_t failed_machines = 0;   ///< machines that actually died
  std::uint64_t redispatched_rows = 0;  ///< rows interrupted and re-run
  cycle_t lost_cycles = 0;  ///< work burned on machines that died mid-row
  bool degraded = false;    ///< true when any injected failure took effect

  // --- flaky-machine / breaker accounting ---------------------------------
  std::uint64_t faulty_dispatches = 0;  ///< rows that failed on a flaky machine
  cycle_t faulty_cycles = 0;   ///< cycles burned on those failed dispatches
  std::uint64_t breaker_opens = 0;      ///< closed/half-open -> open trips
  std::uint64_t probe_dispatches = 0;   ///< rows admitted as half-open probes
  /// Rows each machine was asked to run (failures included); shows a tripped
  /// machine stopped receiving work.
  std::vector<std::uint64_t> dispatches;
  /// Final breaker state per machine (empty unless enable_breakers).
  std::vector<BreakerState> breaker_states;
};

/// Simulates diffing images `a` and `b` on the farm.  Row service times come
/// from actually running the systolic simulator on every row pair.
/// Dimensions must match.  Throws contract_error when every machine dies
/// before the board is finished, or when repeated failures prevent any
/// progress (every machine flaky with probability 1 and no breaker relief).
FarmResult simulate_row_farm(const RleImage& a, const RleImage& b,
                             const FarmConfig& config = {});

}  // namespace sysrle
