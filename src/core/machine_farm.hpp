#pragma once
// A farm of systolic machines processing a whole image pair, row by row.
//
// The paper's machine diffs one row; an inspection system has thousands of
// scanlines per board.  This model answers the system-level question: with P
// copies of the array (or one array time-shared P ways), what is the board
// latency?  Each row's service time is its measured iteration count plus a
// fixed load/drain overhead; rows are dispatched to machines either in scan
// order (kFifo — what a streaming camera interface does) or longest-first
// (kLongestFirst — the classic LPT bound, needs the whole board buffered).
//
// The farm is also where machine-level failures are absorbed: a machine can
// be killed at a configured cycle, its in-flight row is re-dispatched to a
// surviving machine, and the result reports the degraded-mode makespan plus
// the full-image difference — which stays correct, because a re-run row is
// recomputed from its unchanged inputs.

#include <cstddef>
#include <vector>

#include "rle/rle_image.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// One injected machine death.
struct MachineFailure {
  std::size_t machine = 0;  ///< which machine dies
  cycle_t at_cycle = 0;     ///< time of death; in-flight work is lost
};

/// Farm configuration.
struct FarmConfig {
  /// Number of parallel systolic machines.
  std::size_t machines = 4;

  /// Fixed cycles per row for loading the runs and draining the result.
  cycle_t per_row_overhead = 2;

  /// Dispatch policy.
  enum class Policy {
    kFifo,          ///< rows dispatched in scan order as machines free up
    kLongestFirst,  ///< offline LPT: longest service time first
  };
  Policy policy = Policy::kFifo;

  /// Machine deaths to inject (empty = healthy farm).  If one machine is
  /// named twice, its earliest death wins.  At least one machine must
  /// survive long enough to finish the board, or the simulation throws.
  std::vector<MachineFailure> failures;
};

/// Farm simulation outcome.
struct FarmResult {
  cycle_t makespan = 0;      ///< cycles until the last row completes
  cycle_t total_work = 0;    ///< sum of all row service times (useful work)
  cycle_t critical_row = 0;  ///< largest single-row service time
  double utilisation = 0.0;  ///< total_work / (machines * makespan)

  /// The full-image difference, one canonical row per scanline; correct
  /// regardless of injected failures.
  RleImage diff{0, 0};

  // --- degraded-mode accounting (all zero for a healthy farm) -------------
  std::size_t failed_machines = 0;   ///< machines that actually died
  std::uint64_t redispatched_rows = 0;  ///< rows interrupted and re-run
  cycle_t lost_cycles = 0;  ///< work burned on machines that died mid-row
  bool degraded = false;    ///< true when any injected failure took effect
};

/// Simulates diffing images `a` and `b` on the farm.  Row service times come
/// from actually running the systolic simulator on every row pair.
/// Dimensions must match.  Throws contract_error when every machine dies
/// before the board is finished.
FarmResult simulate_row_farm(const RleImage& a, const RleImage& b,
                             const FarmConfig& config = {});

}  // namespace sysrle
