#include "core/row_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace sysrle {

std::size_t RowRunStats::threads_used() const {
  std::size_t used = 0;
  for (const std::uint64_t rows : rows_per_slot)
    if (rows > 0) ++used;
  return used;
}

std::uint64_t RowRunStats::parallel_rows() const {
  std::uint64_t rows = 0;
  for (std::size_t s = 1; s < rows_per_slot.size(); ++s)
    rows += rows_per_slot[s];
  return rows;
}

/// One run() in flight.  The atomic cursor is the scheduling state; slot
/// assignment and helper accounting stay under the pool mutex.
struct RowExecutor::Job {
  const RowFn* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t max_slots = 1;

  std::atomic<std::size_t> next{0};    ///< first unclaimed index
  std::atomic<bool> failed{false};     ///< a body threw; stop claiming

  // Guarded by RowExecutor::mu_.
  std::size_t slots_taken = 1;         ///< slot 0 is the caller's
  std::size_t active_helpers = 0;
  std::exception_ptr error;

  /// Written once per participant at its unique slot index; read by the
  /// caller only after every helper has retired.
  std::vector<std::uint64_t> rows_per_slot;

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= n;
  }
};

RowExecutor::RowExecutor(RowExecutorConfig config)
    : config_(config), auto_parallelism_(resolve_threads(config.threads)) {
  if (config_.chunk == 0) config_.chunk = 1;
}

RowExecutor::~RowExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t RowExecutor::resolve_threads(std::size_t requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxThreads);
}

RowExecutor& RowExecutor::global() {
  static RowExecutor executor;
  return executor;
}

std::size_t RowExecutor::plan_slots(std::size_t n, std::size_t max_parallelism,
                                    std::size_t chunk) const {
  if (n == 0) return 0;
  const std::size_t grain = chunk == 0 ? config_.chunk : chunk;
  const std::size_t limit = max_parallelism == 0
                                ? auto_parallelism_
                                : std::min(max_parallelism, kMaxThreads);
  // More participants than chunks could never all receive work.
  const std::size_t by_work = (n + grain - 1) / grain;
  return std::max<std::size_t>(1, std::min(limit, by_work));
}

RowRunStats RowExecutor::run(std::size_t n, const RowFn& fn,
                             std::size_t max_parallelism, std::size_t chunk) {
  RowRunStats stats;
  if (n == 0) return stats;
  const std::size_t grain = chunk == 0 ? config_.chunk : chunk;
  const std::size_t slots = plan_slots(n, max_parallelism, grain);

  if (slots <= 1) {
    // Serial fast path: no pool traffic, no wakeups.
    stats.rows_per_slot.assign(1, 0);
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    stats.rows_per_slot[0] = n;
    return stats;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->chunk = grain;
  job->max_slots = slots;
  job->rows_per_slot.assign(slots, 0);

  {
    std::lock_guard<std::mutex> lk(mu_);
    ensure_workers(slots - 1);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  execute(*job, 0);  // the caller is participant 0

  std::unique_lock<std::mutex> lk(mu_);
  // All indices are claimed; helpers that have not joined yet would find no
  // work, so stop advertising the job.
  unlist(job);
  done_cv_.wait(lk, [&] { return job->active_helpers == 0; });
  if (job->error) std::rethrow_exception(job->error);
  stats.rows_per_slot = std::move(job->rows_per_slot);
  return stats;
}

void RowExecutor::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
    if (stop_) return;
    std::shared_ptr<Job> job = jobs_.front();
    if (job->slots_taken >= job->max_slots || job->exhausted()) {
      unlist(job);  // stale entry; re-examine the queue
      continue;
    }
    const std::size_t slot = job->slots_taken++;
    if (job->slots_taken >= job->max_slots) unlist(job);
    ++job->active_helpers;
    lk.unlock();
    execute(*job, slot);
    lk.lock();
    if (--job->active_helpers == 0) done_cv_.notify_all();
  }
}

void RowExecutor::execute(Job& job, std::size_t slot) {
  std::uint64_t done = 0;
  try {
    while (!job.failed.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          job.next.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= job.n) break;
      const std::size_t end = std::min(begin + job.chunk, job.n);
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i, slot);
      done += end - begin;
    }
  } catch (...) {
    job.failed.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    if (!job.error) job.error = std::current_exception();
  }
  job.rows_per_slot[slot] = done;
}

void RowExecutor::ensure_workers(std::size_t helpers) {
  const std::size_t target = std::min(helpers, kMaxThreads - 1);
  while (workers_.size() < target)
    workers_.emplace_back([this] { worker_loop(); });
}

void RowExecutor::unlist(const std::shared_ptr<Job>& job) {
  const auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
}

}  // namespace sysrle
