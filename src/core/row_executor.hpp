#pragma once
// Native row-parallel execution: a persistent std::thread pool with chunked
// dynamic scheduling, built for the image-level diff loop.
//
// The paper's systolic array gets its speed from row independence; the
// software hot path must too — unconditionally, not only when the build
// happened to find OpenMP.  RowExecutor is that guarantee: plain
// std::thread workers parked on a condition variable, woken per run() to
// claim fixed-size chunks of the index space from a shared atomic cursor
// (the software analogue of `#pragma omp for schedule(dynamic, chunk)`).
//
// Key properties:
//   * caller participation — the thread calling run() works too (slot 0),
//     so a 1-thread run never pays a handoff and small images never pay a
//     wakeup;
//   * per-slot identity — the body receives a dense slot index, letting
//     callers keep one scratch workspace (e.g. a SystolicDiffMachine whose
//     cell storage is recycled across rows) per participant with no
//     synchronisation;
//   * deterministic results — scheduling only decides *who* computes an
//     index, never *what*; callers write outcomes into per-index slots and
//     aggregate serially, so output is bit-identical to a serial run;
//   * exception safety — a throwing body stops the run early, the first
//     exception is rethrown on the caller, and the pool stays usable;
//   * demand growth — explicit parallelism requests beyond the auto sizing
//     (e.g. `--threads 8` on a 2-core box) spawn the extra workers, capped
//     at kMaxThreads, so oversubscription is the caller's call, not a
//     silent clamp.
//
// One process-wide pool (global()) is shared by image_diff and anything
// else that wants row fan-out; per-call parallelism is limited through
// run()'s max_parallelism, so concurrent callers coexist without each
// owning threads.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sysrle {

/// Pool shape.
struct RowExecutorConfig {
  /// Worker parallelism for max_parallelism == 0 runs: 0 = auto, i.e.
  /// std::thread::hardware_concurrency() with 0 treated as 1.
  std::size_t threads = 0;

  /// Default indices claimed per grab (the dynamic-scheduling grain).
  std::size_t chunk = 16;
};

/// Who ran what in one run(): rows_per_slot[s] counts the indices executed
/// by participant s (slot 0 is always the calling thread).
struct RowRunStats {
  std::vector<std::uint64_t> rows_per_slot;

  /// Participants that processed at least one index (0 for an empty run).
  std::size_t threads_used() const;

  /// Indices processed by helper threads — 0 means the run was effectively
  /// serial, which is exactly the signal a silent-serial fallback hides.
  std::uint64_t parallel_rows() const;
};

/// Persistent worker pool with chunked dynamic scheduling.
class RowExecutor {
 public:
  /// `fn(index, slot)`: slot is dense in [0, plan_slots(...)) and unique
  /// per participant within one run.
  using RowFn = std::function<void(std::size_t index, std::size_t slot)>;

  /// Hard ceiling on parallelism, protecting against `--threads 1000000`.
  static constexpr std::size_t kMaxThreads = 256;

  explicit RowExecutor(RowExecutorConfig config = {});

  /// Joins all workers.  Precondition: no run() is in flight.
  ~RowExecutor();

  RowExecutor(const RowExecutor&) = delete;
  RowExecutor& operator=(const RowExecutor&) = delete;

  /// The pool's auto parallelism (caller included): what a
  /// max_parallelism == 0 run may use.
  std::size_t thread_count() const { return auto_parallelism_; }

  /// Upper bound on the slot indices a run with these parameters can hand
  /// out — size per-slot scratch with this.  Deterministic for fixed
  /// arguments; 0 only when n == 0.
  std::size_t plan_slots(std::size_t n, std::size_t max_parallelism = 0,
                         std::size_t chunk = 0) const;

  /// Runs fn over [0, n) with chunked dynamic scheduling.  max_parallelism
  /// limits participants for this run (0 = the pool's auto sizing; values
  /// above the current pool size grow it, up to kMaxThreads); chunk
  /// overrides the config grain (0 = default).  Blocks until every index
  /// has executed; rethrows the first exception a body threw (remaining
  /// chunks are abandoned, the pool stays usable).  Thread-safe: concurrent
  /// run() calls share the workers.
  RowRunStats run(std::size_t n, const RowFn& fn,
                  std::size_t max_parallelism = 0, std::size_t chunk = 0);

  /// The one thread-count resolution rule (shared by the CLI, the service
  /// and the pool itself): requested > 0 is honoured (capped at
  /// kMaxThreads); 0 means hardware_concurrency(), with the standard's
  /// "0 = unknown" treated as 1 so parallelism never silently vanishes.
  static std::size_t resolve_threads(std::size_t requested);

  /// The process-wide pool (auto-sized, created on first use).
  static RowExecutor& global();

 private:
  struct Job;

  void worker_loop();
  void execute(Job& job, std::size_t slot);
  /// Spawns workers until `helpers` exist.  Caller holds mu_.
  void ensure_workers(std::size_t helpers);
  /// Removes `job` from the pending deque if present.  Caller holds mu_.
  void unlist(const std::shared_ptr<Job>& job);

  RowExecutorConfig config_;
  std::size_t auto_parallelism_ = 1;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for jobs
  std::condition_variable done_cv_;  ///< callers wait here for helpers
  std::deque<std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace sysrle
