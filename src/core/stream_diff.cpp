#include "core/stream_diff.hpp"

#include <algorithm>

#include "baseline/sequential_diff.hpp"
#include "common/assert.hpp"
#include "core/bus_variant.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"

namespace sysrle {

StreamDiffer::StreamDiffer(ImageDiffOptions options, RowCallback on_row,
                           cycle_t load_cycles_per_run)
    : options_(options),
      on_row_(std::move(on_row)),
      load_cycles_per_run_(load_cycles_per_run) {
  SYSRLE_REQUIRE(on_row_ != nullptr, "StreamDiffer: null row callback");
}

void StreamDiffer::push_row(const RleRow& reference, const RleRow& scan) {
  RleRow diff;
  SystolicCounters row_counters;

  switch (options_.engine) {
    case DiffEngine::kSystolic: {
      SystolicConfig cfg;
      cfg.check_invariants = options_.check_invariants;
      cfg.canonicalize_output = options_.canonicalize_output;
      SystolicResult r = systolic_xor(reference, scan, cfg);
      diff = std::move(r.output);
      row_counters = r.counters;
      break;
    }
    case DiffEngine::kBusSystolic: {
      BusConfig cfg;
      cfg.bus_width = options_.bus_width;
      cfg.canonicalize_output = options_.canonicalize_output;
      BusResult r = bus_systolic_xor(reference, scan, cfg);
      diff = std::move(r.output);
      row_counters = r.counters;
      break;
    }
    case DiffEngine::kSequentialMerge: {
      SequentialDiffResult r = sequential_xor(reference, scan);
      diff = std::move(r.output);
      if (options_.canonicalize_output) diff.canonicalize();
      break;
    }
    case DiffEngine::kParitySweep:
    case DiffEngine::kPixelParallel: {
      // Width-agnostic streaming: the sweep covers both cases here.
      diff = xor_rows(reference, scan);
      break;
    }
  }

  const pos_t y = static_cast<pos_t>(summary_.rows);
  ++summary_.rows;
  summary_.difference_pixels += diff.foreground_pixels();
  summary_.max_row_iterations =
      std::max(summary_.max_row_iterations, row_counters.iterations);
  // Double-buffered latency: computing this row overlaps loading the next
  // one (k1+k2 runs at load_cycles_per_run each).
  const cycle_t load_cycles =
      load_cycles_per_run_ *
      (reference.run_count() + scan.run_count());
  summary_.pipelined_cycles +=
      std::max<cycle_t>(row_counters.iterations, load_cycles);
  summary_.counters += row_counters;

  on_row_(y, diff);
}

}  // namespace sysrle
