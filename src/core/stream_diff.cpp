#include "core/stream_diff.hpp"

#include <algorithm>
#include <utility>

#include "baseline/sequential_diff.hpp"
#include "baseline/word_diff.hpp"
#include "common/assert.hpp"
#include "core/bus_variant.hpp"
#include "core/cost_model.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "rle/validate.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

/// One-line description of the first defect in a validation report.
std::string describe(const char* which, const RowValidationReport& report) {
  const RowFinding& f = report.findings.front();
  std::string s = std::string(which) + " run " + std::to_string(f.run_index) +
                  ": " + to_string(f.issue);
  if (report.findings.size() > 1) s += " (+ more)";
  return s;
}

}  // namespace

StreamDiffer::StreamDiffer(ImageDiffOptions options, RowCallback on_row,
                           cycle_t load_cycles_per_run)
    : options_(options),
      on_row_(std::move(on_row)),
      load_cycles_per_run_(load_cycles_per_run) {
  SYSRLE_REQUIRE(on_row_ != nullptr, "StreamDiffer: null row callback");
}

void StreamDiffer::set_error_callback(ErrorCallback on_error) {
  on_error_ = std::move(on_error);
}

void StreamDiffer::set_engine_override(RowEngine engine) {
  engine_override_ = std::move(engine);
}

void StreamDiffer::set_deadline(DeadlineCheck expired) {
  deadline_expired_ = std::move(expired);
}

void StreamDiffer::report(pos_t y, const std::string& diagnostic) {
  if (on_error_) on_error_(y, diagnostic);
}

bool StreamDiffer::refuse_if_expired() {
  if (!deadline_expired_ || !deadline_expired_()) return false;
  ++summary_.expired_rows;
  if (telemetry_enabled()) global_metrics().add("stream.expired_rows");
  return true;
}

void StreamDiffer::record_row_telemetry(
    std::chrono::steady_clock::time_point t0, double queue_depth_runs,
    bool fell_back, bool poisoned) {
  MetricsRegistry& m = global_metrics();
  m.add("stream.rows");
  if (fell_back) m.add("stream.fallback_rows");
  if (poisoned) m.add("stream.poisoned_rows");
  const auto t1 = std::chrono::steady_clock::now();
  const auto us = [](std::chrono::steady_clock::duration d) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  };
  m.observe("stream.row_latency_us", us(t1 - t0));
  // A poisoned row holds no runs: the gauge must return to baseline, not
  // keep advertising the previous row's load.
  m.set_gauge("stream.queue_depth_runs", queue_depth_runs);
  const double elapsed_us = us(t1 - first_push_);
  if (elapsed_us > 0.0)
    m.set_gauge("stream.rows_per_sec",
                static_cast<double>(summary_.rows) * 1e6 / elapsed_us);
}

RleRow StreamDiffer::run_engine(const RleRow& reference, const RleRow& scan,
                                SystolicCounters& row_counters) {
  if (engine_override_) return engine_override_(reference, scan, row_counters);

  switch (options_.engine) {
    case DiffEngine::kSystolic: {
      SystolicConfig cfg;
      cfg.check_invariants = options_.check_invariants;
      cfg.canonicalize_output = options_.canonicalize_output;
      SystolicResult r = systolic_xor(reference, scan, cfg, machine_workspace_);
      row_counters = r.counters;
      return std::move(r.output);
    }
    case DiffEngine::kAdaptive: {
      if (choose_adaptive_route(reference.run_count(), scan.run_count(),
                                options_.adaptive_similarity_threshold) ==
          AdaptiveRoute::kSystolic) {
        SystolicConfig cfg;
        cfg.check_invariants = options_.check_invariants;
        cfg.canonicalize_output = options_.canonicalize_output;
        SystolicResult r =
            systolic_xor(reference, scan, cfg, machine_workspace_);
        row_counters = r.counters;
        return std::move(r.output);
      }
      SequentialDiffResult r = options_.canonicalize_output
                                   ? sequential_engine_xor(reference, scan)
                                   : sequential_xor(reference, scan);
      summary_.sequential_iterations += r.iterations;
      return std::move(r.output);
    }
    case DiffEngine::kBusSystolic: {
      BusConfig cfg;
      cfg.bus_width = options_.bus_width;
      cfg.canonicalize_output = options_.canonicalize_output;
      BusResult r = bus_systolic_xor(reference, scan, cfg);
      row_counters = r.counters;
      return std::move(r.output);
    }
    case DiffEngine::kSequentialMerge: {
      // Word-parallel engine for the canonical form; the scalar merge is
      // the only definition of the raw piecewise output.
      SequentialDiffResult r = options_.canonicalize_output
                                   ? sequential_engine_xor(reference, scan)
                                   : sequential_xor(reference, scan);
      summary_.sequential_iterations += r.iterations;
      return std::move(r.output);
    }
    case DiffEngine::kParitySweep:
    case DiffEngine::kPixelParallel:
      // Width-agnostic streaming: the sweep covers both cases here.
      return xor_rows(reference, scan);
  }
  SYSRLE_CHECK(false, "StreamDiffer: unknown engine");
  return RleRow{};
}

bool StreamDiffer::push_row(const RleRow& reference, const RleRow& scan) {
  if (refuse_if_expired()) return false;
  TELEMETRY_SPAN("stream.push_row", "stream");
  const bool telem = telemetry_enabled();
  std::chrono::steady_clock::time_point t0{};
  if (telem) {
    t0 = std::chrono::steady_clock::now();
    if (!saw_first_push_) {
      first_push_ = t0;
      saw_first_push_ = true;
    }
  }

  const pos_t y = static_cast<pos_t>(summary_.rows);
  RleRow diff;
  SystolicCounters row_counters;
  bool fell_back = false;

  try {
    diff = run_engine(reference, scan, row_counters);
  } catch (const std::exception& e) {
    // The scanner keeps delivering lines whether or not the array is
    // healthy: report the failure, then recompute the row on the sequential
    // merge engine, which shares no datapath with the array.
    report(y, e.what());
    row_counters = SystolicCounters{};
    SequentialDiffResult r = options_.canonicalize_output
                                 ? sequential_engine_xor(reference, scan)
                                 : sequential_xor(reference, scan);
    summary_.sequential_iterations += r.iterations;
    diff = std::move(r.output);
    ++summary_.fallback_rows;
    fell_back = true;
  }

  ++summary_.rows;
  summary_.difference_pixels += diff.foreground_pixels();
  summary_.max_row_iterations =
      std::max(summary_.max_row_iterations, row_counters.iterations);
  // Double-buffered latency: computing this row overlaps loading the next
  // one (k1+k2 runs at load_cycles_per_run each).
  const cycle_t load_cycles =
      load_cycles_per_run_ *
      (reference.run_count() + scan.run_count());
  summary_.pipelined_cycles +=
      std::max<cycle_t>(row_counters.iterations, load_cycles);
  summary_.counters += row_counters;

  if (telem) {
    record_row_telemetry(
        t0, static_cast<double>(reference.run_count() + scan.run_count()),
        fell_back, /*poisoned=*/false);
  }

  on_row_(y, diff);
  return true;
}

bool StreamDiffer::push_row_runs(std::vector<Run> reference,
                                 std::vector<Run> scan) {
  const RowValidationReport ra = validate_runs(reference);
  const RowValidationReport rb = validate_runs(scan);
  if (!ra.ok() || !rb.ok()) {
    if (refuse_if_expired()) return false;
    const bool telem = telemetry_enabled();
    std::chrono::steady_clock::time_point t0{};
    if (telem) {
      t0 = std::chrono::steady_clock::now();
      if (!saw_first_push_) {
        first_push_ = t0;
        saw_first_push_ = true;
      }
    }
    const pos_t y = static_cast<pos_t>(summary_.rows);
    report(y, !ra.ok() ? describe("reference", ra) : describe("scan", rb));
    ++summary_.rows;
    ++summary_.poisoned_rows;
    // A poisoned row carries zero runs into the machine, so the queue-depth
    // gauge is recorded at baseline (0) rather than left at the previous
    // row's value.
    if (telem)
      record_row_telemetry(t0, 0.0, /*fell_back=*/false, /*poisoned=*/true);
    on_row_(y, RleRow{});
    return true;
  }
  return push_row(RleRow(std::move(reference)), RleRow(std::move(scan)));
}

}  // namespace sysrle
