#pragma once
// Streaming difference processing for line-scan acquisition.
//
// PCB scanners deliver one scanline at a time and boards are gigabytes; the
// inspection system cannot buffer two whole images.  StreamDiffer accepts
// (reference row, scan row) pairs as they arrive, runs the configured
// engine, hands each difference row to a callback, and keeps only O(1)
// state: running counters and the double-buffering latency model of a
// machine that loads row n+1 while processing row n.
//
// The stream must not stall on one bad row.  When the row engine throws —
// a checker detection, a machine defect — the row is recomputed on the
// sequential merge engine and the error callback is told; when the input
// runs themselves are invalid (push_row_runs), the row degrades to an empty
// difference row rather than poisoning the pipeline.

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/image_diff.hpp"
#include "core/systolic_diff.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Aggregate state of a streaming run.
struct StreamSummary {
  std::uint64_t rows = 0;
  len_t difference_pixels = 0;
  SystolicCounters counters;          ///< summed machine activity
  cycle_t max_row_iterations = 0;
  /// Pipeline latency in cycles for a double-buffered machine: each row
  /// costs max(iterations, load_cycles), because the next row's runs stream
  /// into the shadow registers while the current row computes.
  cycle_t pipelined_cycles = 0;
  /// Merge-loop iterations by the sequential engine (the kSequentialMerge
  /// engine, adaptive rows routed to the merge, and fallback recomputes).
  std::uint64_t sequential_iterations = 0;
  /// Rows recomputed by the sequential fallback after the engine threw.
  std::uint64_t fallback_rows = 0;
  /// Invalid input rows degraded to an empty difference row.
  std::uint64_t poisoned_rows = 0;
  /// Push *refusal events* after the stream's deadline expired — one per
  /// push attempt that was refused, NOT the number of rows the caller never
  /// pushed.  A caller that abandons the image on the first refusal (as
  /// DiffService does) sees expired_rows == 1; the rows it skipped are
  /// `image height - rows`.  The engine never ran and the row callback did
  /// not fire for refused pushes.
  std::uint64_t expired_rows = 0;
};

/// Processes row pairs one at a time with bounded memory.
class StreamDiffer {
 public:
  /// `on_row(y, diff_row)` is invoked for every pushed pair, in order.
  /// `load_cycles_per_run` models the per-run cost of streaming a row into
  /// the array's shadow registers (1 run per cycle by default).
  using RowCallback = std::function<void(pos_t y, const RleRow& diff)>;

  /// Invoked when a row could not be processed normally; `diagnostic` is a
  /// one-line description.  The stream continues either way.
  using ErrorCallback =
      std::function<void(pos_t y, const std::string& diagnostic)>;

  /// Replacement row engine (test hook / custom hardware model).  Must
  /// return the XOR of the two rows and may fill in machine counters;
  /// throwing makes the differ fall back to the sequential engine.
  using RowEngine = std::function<RleRow(
      const RleRow& reference, const RleRow& scan, SystolicCounters& c)>;

  explicit StreamDiffer(ImageDiffOptions options, RowCallback on_row,
                        cycle_t load_cycles_per_run = 1);

  /// Returns true when the stream's deadline has expired; checked between
  /// rows (the deadline-propagation rule in docs/ROBUSTNESS.md).
  using DeadlineCheck = std::function<bool()>;

  /// Installs (or clears, with nullptr) the error callback.
  void set_error_callback(ErrorCallback on_error);

  /// Overrides the engine selected by ImageDiffOptions (nullptr restores it).
  void set_engine_override(RowEngine engine);

  /// Installs (or clears, with nullptr) a deadline.  Once it reports
  /// expiry, push_row/push_row_runs refuse rows *before* invoking the
  /// engine — an expired request must stop consuming machine cycles
  /// mid-image — and return false; refused rows are counted in
  /// StreamSummary::expired_rows and the row callback does not fire.
  void set_deadline(DeadlineCheck expired);

  /// Feeds the next scanline pair.  Rows must fit a common width, but the
  /// differ itself is width-agnostic.  An engine failure on this pair is
  /// absorbed: the error callback fires and the row is recomputed on the
  /// sequential merge engine (counted in StreamSummary::fallback_rows).
  /// Returns false (without touching the engine) when the deadline has
  /// expired, true otherwise.
  bool push_row(const RleRow& reference, const RleRow& scan);

  /// Untrusted entry point: validates both run lists before building rows.
  /// An invalid list does not throw — the row degrades to an empty
  /// difference row, the error callback fires, and the stream continues
  /// (counted in StreamSummary::poisoned_rows).  Returns false only when
  /// the deadline has expired (the row is then not consumed).
  bool push_row_runs(std::vector<Run> reference, std::vector<Run> scan);

  /// Number of rows processed so far.
  std::uint64_t rows() const { return summary_.rows; }

  /// Finalises and returns the summary.  The differ can keep accepting rows
  /// afterwards; finish() may be called repeatedly.
  const StreamSummary& finish() const { return summary_; }

 private:
  RleRow run_engine(const RleRow& reference, const RleRow& scan,
                    SystolicCounters& row_counters);
  void report(pos_t y, const std::string& diagnostic);
  /// True (and accounts the refusal) when the deadline has expired.
  bool refuse_if_expired();
  /// Telemetry epilogue shared by the normal and poisoned row paths, so the
  /// queue-depth and rows/sec gauges stay balanced on every path.
  void record_row_telemetry(std::chrono::steady_clock::time_point t0,
                            double queue_depth_runs, bool fell_back,
                            bool poisoned);

  ImageDiffOptions options_;
  RowCallback on_row_;
  ErrorCallback on_error_;
  RowEngine engine_override_;
  DeadlineCheck deadline_expired_;
  cycle_t load_cycles_per_run_;
  StreamSummary summary_;
  /// Machine workspace recycled across rows for the systolic and adaptive
  /// engines (the stream is serial, so one workspace suffices).
  SystolicDiffMachine machine_workspace_;
  /// Wall-clock time of the first pushed row; anchors the rows/sec gauge
  /// when telemetry is enabled.  Unused (never read) otherwise.
  std::chrono::steady_clock::time_point first_push_{};
  bool saw_first_push_ = false;
};

}  // namespace sysrle
