#pragma once
// Streaming difference processing for line-scan acquisition.
//
// PCB scanners deliver one scanline at a time and boards are gigabytes; the
// inspection system cannot buffer two whole images.  StreamDiffer accepts
// (reference row, scan row) pairs as they arrive, runs the configured
// engine, hands each difference row to a callback, and keeps only O(1)
// state: running counters and the double-buffering latency model of a
// machine that loads row n+1 while processing row n.

#include <functional>

#include "core/image_diff.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Aggregate state of a streaming run.
struct StreamSummary {
  std::uint64_t rows = 0;
  len_t difference_pixels = 0;
  SystolicCounters counters;          ///< summed machine activity
  cycle_t max_row_iterations = 0;
  /// Pipeline latency in cycles for a double-buffered machine: each row
  /// costs max(iterations, load_cycles), because the next row's runs stream
  /// into the shadow registers while the current row computes.
  cycle_t pipelined_cycles = 0;
};

/// Processes row pairs one at a time with bounded memory.
class StreamDiffer {
 public:
  /// `on_row(y, diff_row)` is invoked for every pushed pair, in order.
  /// `load_cycles_per_run` models the per-run cost of streaming a row into
  /// the array's shadow registers (1 run per cycle by default).
  using RowCallback = std::function<void(pos_t y, const RleRow& diff)>;

  explicit StreamDiffer(ImageDiffOptions options, RowCallback on_row,
                        cycle_t load_cycles_per_run = 1);

  /// Feeds the next scanline pair.  Rows must fit a common width, but the
  /// differ itself is width-agnostic.
  void push_row(const RleRow& reference, const RleRow& scan);

  /// Number of rows processed so far.
  std::uint64_t rows() const { return summary_.rows; }

  /// Finalises and returns the summary.  The differ can keep accepting rows
  /// afterwards; finish() may be called repeatedly.
  const StreamSummary& finish() const { return summary_; }

 private:
  ImageDiffOptions options_;
  RowCallback on_row_;
  cycle_t load_cycles_per_run_;
  StreamSummary summary_;
};

}  // namespace sysrle
