#include "core/systolic_diff.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/invariants.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

std::size_t auto_capacity(std::size_t k1, std::size_t k2) {
  // Corollary 1.2: k1 + k2 cells suffice; one spare cell turns a hypothetical
  // violation into a detected contract failure instead of silent data loss.
  return std::max<std::size_t>(k1 + k2 + 1, 1);
}

}  // namespace

SystolicDiffMachine::SystolicDiffMachine(const RleRow& a, const RleRow& b,
                                         const SystolicConfig& config) {
  load(a, b, config);
}

void SystolicDiffMachine::load(const RleRow& a, const RleRow& b,
                               const SystolicConfig& config) {
  config_ = config;
  array_.reset(config.capacity ? config.capacity
                               : auto_capacity(a.run_count(), b.run_count()));
  counters_ = SystolicCounters{};
  k1_ = a.run_count();
  k2_ = b.run_count();
  SYSRLE_REQUIRE(array_.size() >= std::max(a.run_count(), b.run_count()),
                 "SystolicDiffMachine: capacity below input run count");
  for (std::size_t i = 0; i < a.run_count(); ++i)
    array_.cell(i).load_small(a[i]);
  for (std::size_t i = 0; i < b.run_count(); ++i)
    array_.cell(i).load_big(b[i]);
  note_occupancy();
  if (config_.trace) config_.trace->record_initial(snapshots());
}

bool SystolicDiffMachine::terminated() const {
  // Wired-AND of the per-cell C lines (Figure 2's termination signalling).
  return array_.all_of([](const DiffCell& c) { return c.complete(); });
}

void SystolicDiffMachine::step() {
  SYSRLE_REQUIRE(!terminated(), "SystolicDiffMachine::step after termination");
  ++counters_.iterations;

  // Theorem 1 as a hard stop: more than k1+k2 iterations would falsify the
  // paper's termination proof (or our transcription of the algorithm).
  SYSRLE_CHECK(counters_.iterations <= theorem1_bound(),
               "Theorem 1 violated: machine ran past k1+k2 iterations");

  // Step 1 — order the registers in every cell.
  array_.for_each([this](DiffCell& c) {
    switch (c.order()) {
      case OrderAction::kSwapped:
        ++counters_.swaps;
        break;
      case OrderAction::kPromoted:
        ++counters_.promotions;
        break;
      case OrderAction::kNone:
        break;
    }
  });
  record_trace(MicroStep::kOrder);

  // Step 2 — in-cell XOR.
  array_.for_each([this](DiffCell& c) {
    if (c.xor_step()) ++counters_.xors;
  });
  record_trace(MicroStep::kXor);

  // Step 3 — shift the RegBig lane one cell right.  The input port I feeds
  // an empty register into cell 0; whatever leaves the last cell must be
  // empty (Corollary 1.2 — the array is sized so this cannot happen).
  std::uint64_t moved = 0;
  const std::optional<Run> out = array_.shift_right(
      [&moved](DiffCell& c) {
        std::optional<Run> v = c.take_big();
        if (v) ++moved;
        return v;
      },
      [](DiffCell& c, std::optional<Run> v) { c.load_big(v); },
      std::optional<Run>{});
  counters_.shifts += moved;
  SYSRLE_CHECK(!out.has_value(),
               "Corollary 1.2 violated: a run was shifted out of the array");
  record_trace(MicroStep::kShift);
  note_occupancy();
}

cycle_t SystolicDiffMachine::run() {
  InvariantContext ctx;
  if (config_.check_invariants) {
    // Theorem 3 says the multiset XOR of all held runs is invariant and
    // equals the answer, so the expected value can be rebuilt from the
    // current state even if some iterations already ran.
    std::vector<Run> all;
    for (cell_index_t i = 0; i < array_.size(); ++i) {
      if (array_.cell(i).reg_small()) all.push_back(*array_.cell(i).reg_small());
      if (array_.cell(i).reg_big()) all.push_back(*array_.cell(i).reg_big());
    }
    ctx.expected_xor = xor_run_multiset(std::move(all));
    ctx.k1 = k1_;
    ctx.k2 = k2_;
  }

  const cycle_t start = counters_.iterations;
  while (!terminated()) {
    step();
    if (config_.check_invariants)
      check_end_of_iteration(array_, ctx, counters_.iterations);
  }
  if (config_.check_invariants) check_final_state(array_, ctx);
  return counters_.iterations - start;
}

RleRow SystolicDiffMachine::gather_output() const {
  std::vector<Run> runs;
  for (cell_index_t i = 0; i < array_.size(); ++i)
    if (array_.cell(i).reg_small()) runs.push_back(*array_.cell(i).reg_small());
  RleRow out(std::move(runs));
  if (config_.canonicalize_output) out.canonicalize();
  return out;
}

std::vector<CellSnapshot> SystolicDiffMachine::snapshots() const {
  std::vector<CellSnapshot> snaps;
  snaps.reserve(array_.size());
  for (cell_index_t i = 0; i < array_.size(); ++i)
    snaps.push_back(array_.cell(i).snapshot());
  return snaps;
}

void SystolicDiffMachine::record_trace(MicroStep step) {
  if (config_.trace) config_.trace->record(counters_.iterations, step, snapshots());
}

void SystolicDiffMachine::note_occupancy() {
  for (cell_index_t i = array_.size(); i-- > 0;) {
    if (!array_.cell(i).empty()) {
      counters_.cells_used =
          std::max<std::uint64_t>(counters_.cells_used, i + 1);
      return;
    }
  }
}

namespace {

/// Shared tail of both systolic_xor overloads: run the (loaded) machine,
/// gather the answer, record per-row telemetry.
SystolicResult finish_systolic_run(SystolicDiffMachine& machine,
                                   const SystolicConfig& config) {
  machine.run();
  SystolicResult result;
  result.output = machine.gather_output();
  result.counters = machine.counters();

  if (telemetry_enabled()) {
    MetricsRegistry& m = global_metrics();
    m.add("systolic.rows");
    m.observe("systolic.row_iterations",
              static_cast<double>(result.counters.iterations));
    m.observe("systolic.row_swaps", static_cast<double>(result.counters.swaps));
    m.observe("systolic.row_shifts",
              static_cast<double>(result.counters.shifts));
    m.observe("systolic.row_cells_used",
              static_cast<double>(result.counters.cells_used));
    // The paper's (unproven) Observation bound, iterations <= k3 + 1, where
    // k3 counts runs in the *raw* machine output; canonicalisation can only
    // shrink the count, so the check is meaningful on raw output only.
    if (!config.canonicalize_output &&
        result.counters.iterations > result.output.run_count() + 1)
      m.add("systolic.obs_bound_violations");
  }
  return result;
}

}  // namespace

SystolicResult systolic_xor(const RleRow& a, const RleRow& b,
                            const SystolicConfig& config) {
  SystolicDiffMachine machine(a, b, config);
  return finish_systolic_run(machine, config);
}

SystolicResult systolic_xor(const RleRow& a, const RleRow& b,
                            const SystolicConfig& config,
                            SystolicDiffMachine& workspace) {
  workspace.load(a, b, config);
  return finish_systolic_run(workspace, config);
}

}  // namespace sysrle
