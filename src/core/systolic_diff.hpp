#pragma once
// The paper's systolic RLE image-difference machine: drives an array of
// DiffCells through order/xor/shift iterations until the wired-AND of the
// per-cell completion lines goes high, then gathers the RegSmall registers as
// the output row.

#include <cstddef>

#include "core/diff_cell.hpp"
#include "rle/rle_row.hpp"
#include "systolic/counters.hpp"
#include "systolic/linear_array.hpp"
#include "systolic/trace.hpp"

namespace sysrle {

/// Configuration for one systolic run.
struct SystolicConfig {
  /// Number of cells.  0 = automatic: k1 + k2 + 1, the Corollary-1.2 bound
  /// plus one spare cell so any bound violation is *detected* (a run shifted
  /// out of the last cell raises contract_error) instead of silently lost.
  /// The paper's static sizing of 2k cells (k = max runs per input row) is
  /// obtained by passing 2k explicitly.
  std::size_t capacity = 0;

  /// When true, the Theorem-1/2/3 and Corollary-1.1/2.1 checkers run after
  /// every iteration (see core/invariants.hpp).  Slows the simulation by a
  /// constant factor; used by tests and optionally by benches.
  bool check_invariants = false;

  /// Optional recorder producing a Figure-3-style execution trace.
  TraceRecorder* trace = nullptr;

  /// When true, gather_output canonicalizes (merges adjacent runs).  The raw
  /// machine output may contain adjacent runs; the paper leaves merging as
  /// future work (see core/compaction.hpp).  Default keeps the raw output.
  bool canonicalize_output = false;
};

/// Result of one systolic run.
struct SystolicResult {
  /// The XOR of the two input rows as produced by the machine (ordered,
  /// non-overlapping; adjacent runs possible unless canonicalize_output).
  RleRow output;

  /// Activity counters; counters.iterations is the paper's reported metric.
  SystolicCounters counters;
};

/// Runs the systolic XOR of two RLE rows.  Both rows may be empty.  The
/// simulation enforces Theorem 1 as a hard bound: if the machine has not
/// terminated after k1 + k2 iterations, contract_error is thrown (this would
/// falsify the paper; it never fires).
SystolicResult systolic_xor(const RleRow& a, const RleRow& b,
                            const SystolicConfig& config = {});

/// The machine itself, exposed for the invariant checkers, the bus variant
/// and step-level tests.  systolic_xor is a convenience wrapper.
class SystolicDiffMachine {
 public:
  /// An unloaded workspace: owns cell storage but holds no rows.  Call
  /// load() before stepping.  Reusing one machine across many rows keeps
  /// the cell vector's allocation alive instead of paying it per row — the
  /// row executor gives every worker thread one such workspace.
  SystolicDiffMachine() = default;

  /// Loads row a into the RegSmall lane and row b into the RegBig lane,
  /// cell i receiving run i of each row (the paper's initial placement).
  SystolicDiffMachine(const RleRow& a, const RleRow& b,
                      const SystolicConfig& config);

  /// Re-initialises this machine for a new row pair, recycling the cell
  /// storage.  Counters restart from zero; the previous run's state is
  /// discarded.  Equivalent to constructing a fresh machine.
  void load(const RleRow& a, const RleRow& b, const SystolicConfig& config);

  /// Wired-AND of the completion lines: true when every RegBig is empty.
  bool terminated() const;

  /// Executes one full iteration (steps 1–3).  Precondition: !terminated().
  void step();

  /// Runs until terminated; returns the iteration count of this call.
  cycle_t run();

  /// Gathers the RegSmall lane left to right (the machine's answer).
  RleRow gather_output() const;

  const LinearArray<DiffCell>& array() const { return array_; }
  const SystolicCounters& counters() const { return counters_; }

  /// k1 + k2 for this run (the Theorem-1 bound).
  cycle_t theorem1_bound() const { return k1_ + k2_; }

 private:
  std::vector<CellSnapshot> snapshots() const;
  void record_trace(MicroStep step);
  void note_occupancy();

  SystolicConfig config_;
  LinearArray<DiffCell> array_;
  SystolicCounters counters_;
  cycle_t k1_ = 0;
  cycle_t k2_ = 0;
};

/// Workspace-reusing variant of systolic_xor: identical output and counters,
/// but runs inside `workspace`, recycling its cell storage instead of
/// allocating a machine per row.  Hot image-level loops hand each worker
/// thread one workspace (see core/row_executor.hpp).
SystolicResult systolic_xor(const RleRow& a, const RleRow& b,
                            const SystolicConfig& config,
                            SystolicDiffMachine& workspace);

}  // namespace sysrle
