#include "core/union_variant.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "core/diff_cell.hpp"
#include "systolic/linear_array.hpp"

namespace sysrle {
namespace {

/// Step 2 of the union machine: hull the two (ordered) runs when they
/// overlap or touch.  Returns true when a hull was formed.
bool hull_step(DiffCell& c) {
  if (!c.reg_small() || !c.reg_big()) return false;
  const Run s = *c.reg_small();
  const Run b = *c.reg_big();
  if (b.start <= s.end() + 1) {
    c.load_small(Run::from_bounds(s.start, std::max(s.end(), b.end())));
    c.load_big(std::nullopt);
    return true;
  }
  return false;
}

/// Drains the RegSmall lane.  Residual *overlaps* (an input run entirely
/// covered by an earlier, longer run that had already settled) are merged
/// during the same O(cells) sweep the read-out needs anyway; *adjacent*
/// runs are kept separate, mirroring the XOR machine's output contract.
RleRow gather_union(const LinearArray<DiffCell>& array) {
  std::vector<Run> merged;
  for (cell_index_t i = 0; i < array.size(); ++i) {
    const auto& s = array.cell(i).reg_small();
    if (!s) continue;
    if (!merged.empty() && s->start <= merged.back().end()) {
      SYSRLE_CHECK(s->start >= merged.back().start,
                   "union machine: RegSmall lane lost start ordering");
      merged.back() = Run::from_bounds(
          merged.back().start, std::max(merged.back().end(), s->end()));
    } else {
      merged.push_back(*s);
    }
  }
  return RleRow(std::move(merged));
}

UnionResult run_union_machine(const std::vector<Run>& small_lane,
                              const std::vector<Run>& big_lane) {
  const std::size_t k1 = small_lane.size();
  const std::size_t k2 = big_lane.size();
  const std::size_t n = std::max<std::size_t>(k1 + k2 + 1, 1);

  LinearArray<DiffCell> array(n);
  for (std::size_t i = 0; i < k1; ++i) array.cell(i).load_small(small_lane[i]);
  for (std::size_t i = 0; i < k2; ++i) array.cell(i).load_big(big_lane[i]);

  UnionResult result;
  const cycle_t bound = k1 + k2;
  while (!array.all_of([](const DiffCell& c) { return c.complete(); })) {
    ++result.counters.iterations;
    SYSRLE_CHECK(result.counters.iterations <= bound,
                 "union machine ran past the k1+k2 bound");
    array.for_each([&result](DiffCell& c) {
      switch (c.order()) {
        case OrderAction::kSwapped:
          ++result.counters.swaps;
          break;
        case OrderAction::kPromoted:
          ++result.counters.promotions;
          break;
        case OrderAction::kNone:
          break;
      }
    });
    array.for_each([&result](DiffCell& c) {
      if (hull_step(c)) ++result.counters.xors;  // counts hull merges
    });
    std::uint64_t moved = 0;
    const std::optional<Run> out = array.shift_right(
        [&moved](DiffCell& c) {
          std::optional<Run> v = c.take_big();
          if (v) ++moved;
          return v;
        },
        [](DiffCell& c, std::optional<Run> v) { c.load_big(v); },
        std::optional<Run>{});
    result.counters.shifts += moved;
    SYSRLE_CHECK(!out.has_value(),
                 "union machine: run shifted out of the array");
  }
  result.output = gather_union(array);
  return result;
}

}  // namespace

UnionResult systolic_or(const RleRow& a, const RleRow& b) {
  return run_union_machine({a.runs()}, {b.runs()});
}

CompactPassResult systolic_compact(const RleRow& row) {
  CompactPassResult result;
  result.output = row;
  if (row.run_count() < 2) return result;

  // ceil(log2(k)) + 1 passes always suffice: each pass at least halves every
  // chain of adjacent runs.  The hard bound turns a regression into a loud
  // failure instead of a spin.
  std::size_t max_passes = 2;
  for (std::size_t k = row.run_count(); k > 1; k /= 2) ++max_passes;

  while (!result.output.is_canonical()) {
    SYSRLE_CHECK(result.passes < max_passes,
                 "systolic_compact: did not converge in O(log k) passes");
    ++result.passes;
    std::vector<Run> evens, odds;
    for (std::size_t i = 0; i < result.output.run_count(); ++i) {
      (i % 2 == 0 ? evens : odds).push_back(result.output[i]);
    }
    UnionResult pass = run_union_machine(evens, odds);
    result.counters += pass.counters;
    result.output = std::move(pass.output);
  }
  return result;
}

}  // namespace sysrle
