#pragma once
// A systolic UNION (bitwise OR) machine on the same Figure-2 array — our
// extension beyond the paper.
//
// Why OR and not AND: like XOR, the union of a multiset of runs is
// independent of which input image each run came from, so the provenance-
// free cell state of the paper's machine suffices.  (AND is not multiset-
// definable — a run's provenance decides what it may intersect — so it
// cannot reuse this machine unmodified.)
//
// Cell rule: step 1 orders exactly as in the XOR machine; step 2 replaces
// the XOR datapath with a *hull* unit — if the two runs overlap or touch,
// RegSmall becomes their union [min start, max end] and RegBig empties;
// disjoint runs pass through unchanged.  Step 3 shifts RegBig right as
// before.  Termination is the same wired-AND of completion lines.
//
// Because hulls only merge overlapping/adjacent coverage, the union of all
// held runs is invariant (the Theorem-3 analogue, checked in tests) and the
// final RegSmall lane is ordered and non-overlapping.  Like the paper's XOR
// machine, the output may still contain *adjacent* runs (two merged groups
// that settled in different cells never meet again).
//
// systolic_compact() builds on that to solve the paper's section-6 future
// work — "combining the adjacent runs in different cells at the end of the
// algorithm" — without leaving the systolic substrate: the row's runs are
// split alternately across the two register lanes and pushed through the OR
// machine; each pass merges every pairwise-met adjacency, so a chain of m
// adjacent runs closes in O(log m) passes.
//
// Correctness is validated empirically (exhaustive small universes plus
// randomised sweeps against the parity-sweep OR); no formal proof is
// claimed.  Iterations observe the same k1+k2 bound in all tests.

#include "rle/rle_row.hpp"
#include "systolic/counters.hpp"

namespace sysrle {

/// Result of a systolic union run.
struct UnionResult {
  RleRow output;  ///< OR of the inputs; ordered, adjacencies possible
  SystolicCounters counters;
};

/// Runs the systolic OR of two RLE rows.  Inputs may be non-canonical.
UnionResult systolic_or(const RleRow& a, const RleRow& b);

/// Result of the multi-pass on-array compaction.
struct CompactPassResult {
  RleRow output;          ///< canonical row
  std::size_t passes = 0; ///< OR-machine passes executed (O(log chain))
  SystolicCounters counters;  ///< summed over passes
};

/// Compacts a row (ordered, possibly with adjacent runs) entirely on the
/// machine: repeated OR passes with the runs split alternately across the
/// two lanes, until no adjacency remains.
CompactPassResult systolic_compact(const RleRow& row);

}  // namespace sysrle
