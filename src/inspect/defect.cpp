#include "inspect/defect.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "rle/ops.hpp"

namespace sysrle {

const char* to_string(DefectClass cls) {
  switch (cls) {
    case DefectClass::kMissingMaterial:
      return "missing-material";
    case DefectClass::kExtraMaterial:
      return "extra-material";
    case DefectClass::kMixed:
      return "mixed";
  }
  return "unknown";
}

std::string Defect::to_string() const {
  std::ostringstream os;
  os << sysrle::to_string(cls) << " bbox=(" << region.min_x << ','
     << region.min_y << ")-(" << region.max_x << ',' << region.max_y
     << ") area=" << region.pixel_count;
  return os.str();
}

std::vector<Defect> extract_defects(const RleImage& reference,
                                    const RleImage& diff,
                                    const DefectExtractionOptions& options) {
  SYSRLE_REQUIRE(reference.width() == diff.width() &&
                     reference.height() == diff.height(),
                 "extract_defects: dimension mismatch");

  const LabelingResult labeled =
      label_components_detailed(diff, options.connectivity);

  // Per-component polarity tally: for every difference run, count how many
  // of its pixels lie on reference foreground.
  std::vector<len_t> on_ref(labeled.components.size(), 0);
  for (const LabeledRun& lr : labeled.runs) {
    const RleRow& ref_row = reference.row(lr.y);
    const RleRow diff_run({lr.run});
    on_ref[lr.label - 1] += intersection_pixels(ref_row, diff_run);
  }

  std::vector<Defect> defects;
  for (std::size_t i = 0; i < labeled.components.size(); ++i) {
    const Component& c = labeled.components[i];
    if (c.pixel_count < options.min_area) continue;
    Defect d;
    d.region = c;
    d.on_reference = on_ref[i];
    d.off_reference = c.pixel_count - on_ref[i];
    if (d.off_reference == 0) {
      d.cls = DefectClass::kMissingMaterial;
    } else if (d.on_reference == 0) {
      d.cls = DefectClass::kExtraMaterial;
    } else {
      d.cls = DefectClass::kMixed;
    }
    defects.push_back(d);
  }
  return defects;
}

}  // namespace sysrle
