#pragma once
// Defect extraction and classification for the reference-based inspection
// pipeline: connected components of the difference image become defect
// candidates, filtered by area and classified by shape/polarity.

#include <string>
#include <vector>

#include "inspect/labeling.hpp"
#include "rle/rle_image.hpp"

namespace sysrle {

/// Coarse defect classification derived from the difference component's
/// shape and from the reference polarity underneath it.
enum class DefectClass {
  kMissingMaterial,  ///< difference lies on reference foreground (open/void)
  kExtraMaterial,    ///< difference lies on reference background (short/spur)
  kMixed,            ///< overlaps both polarities (e.g. displaced edge)
};

/// Human-readable class name.
const char* to_string(DefectClass cls);

/// One reported defect.
struct Defect {
  Component region;       ///< bounding box / size of the difference blob
  DefectClass cls = DefectClass::kMixed;
  len_t on_reference = 0; ///< defect pixels lying on reference foreground
  len_t off_reference = 0;///< defect pixels lying on reference background

  std::string to_string() const;
};

/// Options for defect extraction.
struct DefectExtractionOptions {
  len_t min_area = 1;  ///< discard components smaller than this (noise gate)
  Connectivity connectivity = Connectivity::kEight;
};

/// Turns a difference image into classified defects.  `reference` provides
/// the polarity used for classification; `diff` is the XOR of reference and
/// scan.  Both must have equal dimensions.
std::vector<Defect> extract_defects(const RleImage& reference,
                                    const RleImage& diff,
                                    const DefectExtractionOptions& options = {});

}  // namespace sysrle
