#include "inspect/labeling.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace sysrle {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  SYSRLE_REQUIRE(x < parent_.size(), "UnionFind::find: out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

std::size_t UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return ra;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  return ra;
}

std::vector<Component> label_components(const RleImage& img,
                                        Connectivity connectivity) {
  return label_components_detailed(img, connectivity).components;
}

LabelingResult label_components_detailed(const RleImage& img,
                                         Connectivity connectivity) {
  // Flatten all runs with their rows; remember per-row [begin, end) slices.
  struct FlatRun {
    pos_t y;
    Run run;
  };
  std::vector<FlatRun> runs;
  std::vector<std::size_t> row_begin(static_cast<std::size_t>(img.height()) + 1,
                                     0);
  for (pos_t y = 0; y < img.height(); ++y) {
    row_begin[static_cast<std::size_t>(y)] = runs.size();
    for (const Run& r : img.row(y)) runs.push_back({y, r});
  }
  row_begin[static_cast<std::size_t>(img.height())] = runs.size();

  // 8-connectivity widens the touch test by one pixel on each side.
  const pos_t slack = connectivity == Connectivity::kEight ? 1 : 0;

  UnionFind uf(runs.size());
  for (pos_t y = 1; y < img.height(); ++y) {
    std::size_t i = row_begin[static_cast<std::size_t>(y - 1)];
    const std::size_t i_end = row_begin[static_cast<std::size_t>(y)];
    std::size_t j = i_end;
    const std::size_t j_end = row_begin[static_cast<std::size_t>(y + 1)];
    // Two-pointer sweep over the sorted runs of adjacent rows.
    while (i < i_end && j < j_end) {
      const Run& above = runs[i].run;
      const Run& below = runs[j].run;
      if (above.end() + slack >= below.start &&
          below.end() + slack >= above.start)
        uf.unite(i, j);
      // Advance whichever run ends first.
      if (above.end() < below.end()) {
        ++i;
      } else {
        ++j;
      }
    }
  }

  // Second pass: fold per-run data into per-root components, then assign
  // labels in raster order of first appearance.
  std::vector<std::uint32_t> label_of(runs.size(), 0);
  LabelingResult result;
  result.runs.reserve(runs.size());
  for (std::size_t idx = 0; idx < runs.size(); ++idx) {
    const std::size_t root = uf.find(idx);
    if (label_of[root] == 0) {
      Component c;
      c.label = static_cast<std::uint32_t>(result.components.size() + 1);
      c.min_x = runs[idx].run.start;
      c.max_x = runs[idx].run.end();
      c.min_y = c.max_y = runs[idx].y;
      c.pixel_count = 0;
      result.components.push_back(c);
      label_of[root] = c.label;
    }
    Component& c = result.components[label_of[root] - 1];
    c.min_x = std::min(c.min_x, runs[idx].run.start);
    c.max_x = std::max(c.max_x, runs[idx].run.end());
    c.min_y = std::min(c.min_y, runs[idx].y);
    c.max_y = std::max(c.max_y, runs[idx].y);
    c.pixel_count += runs[idx].run.length;
    result.runs.push_back({runs[idx].y, runs[idx].run, label_of[root]});
  }
  return result;
}

}  // namespace sysrle
