#pragma once
// Connected-component labeling directly on RLE images.  The inspection
// pipeline uses it to group the scattered difference runs produced by the
// image XOR into discrete defect regions.  The algorithm is the classic
// run-based two-pass scheme: runs in adjacent rows that touch are unioned
// (union-find), so the cost is O(total runs * alpha), never O(pixels) —
// keeping the whole pipeline in the compressed domain.

#include <cstdint>
#include <vector>

#include "rle/rle_image.hpp"

namespace sysrle {

/// Connectivity rule between runs in vertically adjacent rows.
enum class Connectivity {
  kFour,   ///< runs must share a column
  kEight,  ///< runs may also touch diagonally (overlap extended by 1)
};

/// One labelled connected component.
struct Component {
  std::uint32_t label = 0;      ///< 1-based component id
  pos_t min_x = 0, min_y = 0;   ///< bounding box (inclusive)
  pos_t max_x = 0, max_y = 0;
  len_t pixel_count = 0;        ///< foreground pixels in the component

  pos_t bbox_width() const { return max_x - min_x + 1; }
  pos_t bbox_height() const { return max_y - min_y + 1; }
};

/// One run together with its row and assigned component label.
struct LabeledRun {
  pos_t y = 0;
  Run run;
  std::uint32_t label = 0;
};

/// Full labeling output: the components plus every run's label (in raster
/// order), for consumers that need per-run membership (defect
/// classification).
struct LabelingResult {
  std::vector<Component> components;
  std::vector<LabeledRun> runs;
};

/// Labels all connected components of an RLE image, returning per-run
/// labels too.  Labels are assigned in raster order of first appearance.
LabelingResult label_components_detailed(
    const RleImage& img, Connectivity connectivity = Connectivity::kEight);

/// Labels all connected components of an RLE image.  Components are returned
/// sorted by label; labels are assigned in raster order of the first run.
std::vector<Component> label_components(
    const RleImage& img, Connectivity connectivity = Connectivity::kEight);

/// Union-find (disjoint set) with path compression and union by size.
/// Exposed for reuse and direct testing.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::size_t find(std::size_t x);

  /// Merges the sets containing a and b; returns the new representative.
  std::size_t unite(std::size_t a, std::size_t b);

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

}  // namespace sysrle
