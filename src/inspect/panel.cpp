#include "inspect/panel.hpp"

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "rle/transform.hpp"

namespace sysrle {

pos_t PanelLayout::panel_width() const {
  return origin_x + static_cast<pos_t>(cols) * board_width +
         static_cast<pos_t>(cols - 1) * spacing_x;
}

pos_t PanelLayout::panel_height() const {
  return origin_y + static_cast<pos_t>(rows) * board_height +
         static_cast<pos_t>(rows - 1) * spacing_y;
}

pos_t PanelLayout::board_x(std::size_t col) const {
  return origin_x + static_cast<pos_t>(col) * (board_width + spacing_x);
}

pos_t PanelLayout::board_y(std::size_t row) const {
  return origin_y + static_cast<pos_t>(row) * (board_height + spacing_y);
}

namespace {

void check_layout(const PanelLayout& layout) {
  SYSRLE_REQUIRE(layout.board_width > 0 && layout.board_height > 0,
                 "PanelLayout: empty board");
  SYSRLE_REQUIRE(layout.cols >= 1 && layout.rows >= 1,
                 "PanelLayout: empty grid");
  SYSRLE_REQUIRE(layout.spacing_x >= 0 && layout.spacing_y >= 0 &&
                     layout.origin_x >= 0 && layout.origin_y >= 0,
                 "PanelLayout: negative offsets");
}

}  // namespace

RleImage compose_panel(const RleImage& golden, const PanelLayout& layout) {
  check_layout(layout);
  SYSRLE_REQUIRE(golden.width() == layout.board_width &&
                     golden.height() == layout.board_height,
                 "compose_panel: golden does not match the layout");
  RleImage panel(layout.panel_width(), layout.panel_height());
  for (std::size_t row = 0; row < layout.rows; ++row) {
    const pos_t y0 = layout.board_y(row);
    for (pos_t by = 0; by < golden.height(); ++by) {
      // One output row = OR of every column position's shifted board row.
      RleRow out = panel.row(y0 + by);
      for (std::size_t col = 0; col < layout.cols; ++col) {
        const RleRow placed = shift_row(golden.row(by), layout.board_x(col),
                                        panel.width());
        out = or_rows(out, placed);
      }
      panel.set_row(y0 + by, std::move(out));
    }
  }
  return panel;
}

const BoardReport& PanelReport::at(std::size_t col, std::size_t row,
                                   const PanelLayout& layout) const {
  SYSRLE_REQUIRE(col < layout.cols && row < layout.rows,
                 "PanelReport::at: position outside the grid");
  return boards[row * layout.cols + col];
}

PanelReport inspect_panel(const RleImage& golden, const RleImage& panel_scan,
                          const PanelLayout& layout,
                          const InspectionOptions& options) {
  check_layout(layout);
  SYSRLE_REQUIRE(golden.width() == layout.board_width &&
                     golden.height() == layout.board_height,
                 "inspect_panel: golden does not match the layout");
  SYSRLE_REQUIRE(panel_scan.width() >= layout.panel_width() &&
                     panel_scan.height() >= layout.panel_height(),
                 "inspect_panel: scan smaller than the panel layout");

  PanelReport report;
  report.boards.reserve(layout.rows * layout.cols);
  for (std::size_t row = 0; row < layout.rows; ++row) {
    for (std::size_t col = 0; col < layout.cols; ++col) {
      const RleImage board =
          crop_image(panel_scan, layout.board_x(col), layout.board_y(row),
                     layout.board_width, layout.board_height);
      BoardReport br;
      br.col = col;
      br.row = row;
      br.report = inspect(golden, board, options);
      if (!br.report.pass) {
        ++report.failed_boards;
        report.pass = false;
      }
      report.boards.push_back(std::move(br));
    }
  }
  return report;
}

}  // namespace sysrle
