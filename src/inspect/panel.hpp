#pragma once
// Panelized inspection.  Real PCB fabrication images a *panel* — a grid of
// identical boards — in one acquisition; inspection crops each board
// position and compares it against a single golden reference.  All panel
// arithmetic stays in the compressed domain (crop/shift/or on runs).

#include <cstddef>
#include <vector>

#include "inspect/pipeline.hpp"
#include "rle/rle_image.hpp"

namespace sysrle {

/// Geometry of a rows x cols panel of identical boards.
struct PanelLayout {
  pos_t board_width = 0;
  pos_t board_height = 0;
  std::size_t cols = 1;
  std::size_t rows = 1;
  pos_t spacing_x = 0;  ///< gutter between boards
  pos_t spacing_y = 0;
  pos_t origin_x = 0;   ///< offset of board (0,0) in the panel
  pos_t origin_y = 0;

  pos_t panel_width() const;
  pos_t panel_height() const;
  /// Top-left corner of the board at (col, row).
  pos_t board_x(std::size_t col) const;
  pos_t board_y(std::size_t row) const;
};

/// Replicates the golden board into a full panel image (gutters empty).
/// The inverse of per-position cropping; used to fabricate test panels and
/// golden panel references.
RleImage compose_panel(const RleImage& golden, const PanelLayout& layout);

/// One board position's result.
struct BoardReport {
  std::size_t col = 0;
  std::size_t row = 0;
  InspectionReport report;
};

/// Whole-panel result.
struct PanelReport {
  std::vector<BoardReport> boards;  ///< row-major, rows x cols entries
  std::size_t failed_boards = 0;
  bool pass = true;

  /// Access by position.
  const BoardReport& at(std::size_t col, std::size_t row,
                        const PanelLayout& layout) const;
};

/// Inspects every board position of `panel_scan` against `golden`.
/// `golden` must have the layout's board dimensions and the scan must have
/// the panel dimensions.
PanelReport inspect_panel(const RleImage& golden, const RleImage& panel_scan,
                          const PanelLayout& layout,
                          const InspectionOptions& options = {});

}  // namespace sysrle
