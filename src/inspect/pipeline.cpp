#include "inspect/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "rle/morphology.hpp"
#include "workload/metrics.hpp"

namespace sysrle {

RleImage shift_image(const RleImage& img, pos_t dx) {
  if (dx == 0 || img.width() <= 0) return img;
  // A shift of at least the full width moves every run out of frame.
  // Returning here also keeps `start + dx` below clear of signed overflow
  // for extreme dx values (including pos_t's minimum, which cannot even be
  // negated).
  if (dx >= img.width() || dx <= -img.width())
    return RleImage(img.width(), img.height());
  RleImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    RleRow shifted;
    for (const Run& r : img.row(y)) {
      pos_t s = r.start + dx;
      pos_t e = r.end() + dx;
      // Clip to [0, width).
      s = std::max<pos_t>(s, 0);
      e = std::min<pos_t>(e, img.width() - 1);
      if (s <= e) shifted.push_back(Run::from_bounds(s, e));
    }
    out.set_row(y, std::move(shifted));
  }
  return out;
}

namespace {

/// Picks the horizontal shift of `scan` (within +-radius) that minimises the
/// difference pixel count against `reference`.  Ties break toward the
/// smallest |shift|, then toward negative shifts.
pos_t best_shift(const RleImage& reference, const RleImage& scan,
                 pos_t radius) {
  pos_t best = 0;
  len_t best_cost = std::numeric_limits<len_t>::max();
  for (pos_t mag = 0; mag <= radius; ++mag) {
    for (const pos_t dx : {-mag, mag}) {
      if (mag == 0 && dx == 0 && best_cost != std::numeric_limits<len_t>::max())
        continue;  // shift 0 evaluated once
      const ImageSimilarity sim =
          measure_images(reference, shift_image(scan, dx));
      if (sim.error_pixels < best_cost) {
        best_cost = sim.error_pixels;
        best = dx;
      }
      if (mag == 0) break;  // -0 == +0
    }
  }
  return best;
}

}  // namespace

InspectionReport inspect(const RleImage& reference, const RleImage& scan,
                         const InspectionOptions& options) {
  SYSRLE_REQUIRE(reference.width() == scan.width() &&
                     reference.height() == scan.height(),
                 "inspect: reference and scan dimensions differ");

  InspectionReport report;

  // Stage 1: alignment.
  const RleImage* aligned = &scan;
  RleImage shifted(0, 0);
  if (options.alignment_radius > 0) {
    report.applied_shift = best_shift(reference, scan, options.alignment_radius);
    if (report.applied_shift != 0) {
      shifted = shift_image(scan, report.applied_shift);
      aligned = &shifted;
    }
  }

  // Stage 2: compressed-domain difference.
  ImageDiffOptions diff_options;
  diff_options.engine = options.engine;
  diff_options.threads = options.threads;
  diff_options.canonicalize_output = true;
  const ImageDiffResult diff = image_diff(reference, *aligned, diff_options);
  report.diff_counters = diff.counters;
  report.sequential_iterations = diff.sequential_iterations;
  report.difference_pixels = diff.diff.stats().foreground_pixels;

  // Stage 3: cleanup — mask alignment artifacts at the vertical borders,
  // then morphologically open away isolated noise.  Both stay in the
  // compressed domain.
  RleImage cleaned = diff.diff;
  if (options.border_mask > 0 && cleaned.width() > 0) {
    const pos_t lo = options.border_mask;                  // first kept col
    const pos_t hi = cleaned.width() - options.border_mask; // one past last
    for (pos_t y = 0; y < cleaned.height(); ++y) {
      RleRow masked;
      for (const Run& r : cleaned.row(y)) {
        const pos_t s = std::max(r.start, lo);
        const pos_t e = std::min(r.end(), hi - 1);
        if (s <= e) masked.push_back(Run::from_bounds(s, e));
      }
      cleaned.set_row(y, std::move(masked));
    }
  }
  if (options.denoise_open_radius > 0)
    cleaned = open_image(cleaned, options.denoise_open_radius,
                         options.denoise_open_radius);

  // Stages 4+5: labeling and classification.
  DefectExtractionOptions extraction;
  extraction.min_area = options.min_defect_area;
  extraction.connectivity = options.connectivity;
  report.defects = extract_defects(reference, cleaned, extraction);
  report.pass = report.defects.empty();
  return report;
}

}  // namespace sysrle
