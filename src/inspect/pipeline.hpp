#pragma once
// The reference-based PCB inspection pipeline the paper is motivated by [2]:
//
//   scan alignment  ->  compressed image difference  ->  component labeling
//   ->  defect classification  ->  report
//
// Every stage after acquisition operates in the compressed (RLE) domain; the
// difference stage can run on any engine, including the paper's systolic
// machine, whose activity counters propagate into the report.

#include <cstdint>
#include <vector>

#include "core/image_diff.hpp"
#include "inspect/defect.hpp"
#include "rle/rle_image.hpp"

namespace sysrle {

/// Pipeline configuration.
struct InspectionOptions {
  /// Row-diff engine for the difference stage.
  DiffEngine engine = DiffEngine::kSystolic;

  /// Worker threads for the difference stage's row loop (0 = auto, 1 =
  /// serial; see ImageDiffOptions::threads).
  std::size_t threads = 0;

  /// Horizontal alignment search radius in pixels (0 disables alignment).
  /// Scan images from a line camera are commonly offset by a few columns;
  /// the pipeline picks the shift minimising the difference pixel count.
  pos_t alignment_radius = 0;

  /// Noise gate: difference components smaller than this are not defects.
  len_t min_defect_area = 2;

  /// Morphological opening radius applied to the difference image before
  /// labeling (0 disables).  Deletes isolated specks smaller than the
  /// (2r+1)^2 structuring element — scanner salt noise — without shrinking
  /// real defects.
  pos_t denoise_open_radius = 0;

  /// Ignore differences within this many pixels of the left/right image
  /// borders (0 disables).  Horizontal alignment clips runs at the borders,
  /// producing spurious edge differences that are not board defects.
  pos_t border_mask = 0;

  Connectivity connectivity = Connectivity::kEight;
};

/// Pipeline output.
struct InspectionReport {
  std::vector<Defect> defects;
  pos_t applied_shift = 0;          ///< chosen horizontal alignment
  len_t difference_pixels = 0;      ///< |ref XOR scan| after alignment
  SystolicCounters diff_counters;   ///< machine activity in the diff stage
  std::uint64_t sequential_iterations = 0;  ///< when the merge engine is used
  bool pass = true;                 ///< true when no defects survive the gate
};

/// Shifts every run of an RLE image horizontally by `dx`, clipping at the
/// image borders.  Exposed for tests and for external alignment logic.
RleImage shift_image(const RleImage& img, pos_t dx);

/// Runs the full inspection: optional alignment, difference, labeling,
/// classification.  `reference` and `scan` must have equal dimensions.
InspectionReport inspect(const RleImage& reference, const RleImage& scan,
                         const InspectionOptions& options = {});

}  // namespace sysrle
