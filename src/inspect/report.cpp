#include "inspect/report.hpp"

#include <sstream>

namespace sysrle {

std::string format_verdict(const InspectionReport& report) {
  std::ostringstream os;
  if (report.pass) {
    os << "PASS: no defects above the noise gate";
  } else {
    os << "FAIL: " << report.defects.size() << " defect"
       << (report.defects.size() == 1 ? "" : "s") << ", "
       << report.difference_pixels << " differing pixels";
  }
  return os.str();
}

std::string format_report(const InspectionReport& report) {
  std::ostringstream os;
  os << "=== inspection report ===\n";
  os << format_verdict(report) << '\n';
  os << "alignment shift: " << report.applied_shift << " px\n";
  os << "difference pixels: " << report.difference_pixels << '\n';
  if (report.diff_counters.iterations > 0)
    os << "systolic activity: " << report.diff_counters.to_string() << '\n';
  if (report.sequential_iterations > 0)
    os << "sequential merge iterations: " << report.sequential_iterations
       << '\n';
  if (!report.defects.empty()) {
    os << "defects:\n";
    for (std::size_t i = 0; i < report.defects.size(); ++i)
      os << "  #" << (i + 1) << ' ' << report.defects[i].to_string() << '\n';
  }
  return os.str();
}

}  // namespace sysrle
