#pragma once
// Text rendering of inspection results for operators and logs.

#include <string>

#include "inspect/pipeline.hpp"

namespace sysrle {

/// Renders a full multi-line inspection report: verdict, alignment,
/// difference statistics, machine activity, and the classified defect list.
std::string format_report(const InspectionReport& report);

/// One-line verdict summary ("PASS" / "FAIL: n defects ...").
std::string format_verdict(const InspectionReport& report);

}  // namespace sysrle
