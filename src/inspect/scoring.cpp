#include "inspect/scoring.hpp"

#include <sstream>

namespace sysrle {
namespace {

bool boxes_overlap(const Component& region, const InjectedDefect& truth) {
  return region.min_x < truth.x + truth.w && truth.x <= region.max_x &&
         region.min_y < truth.y + truth.h && truth.y <= region.max_y;
}

}  // namespace

double DetectionScore::precision() const {
  const std::size_t reported = true_positives + false_positives;
  return reported ? static_cast<double>(true_positives) /
                        static_cast<double>(reported)
                  : 0.0;
}

double DetectionScore::recall() const {
  const std::size_t actual = true_positives + false_negatives;
  return actual ? static_cast<double>(true_positives) /
                      static_cast<double>(actual)
                : 0.0;
}

double DetectionScore::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
}

std::string DetectionScore::to_string() const {
  std::ostringstream os;
  os << "TP=" << true_positives << " FN=" << false_negatives
     << " FP=" << false_positives << " precision=" << precision()
     << " recall=" << recall() << " F1=" << f1();
  return os.str();
}

DetectionScore score_detections(const std::vector<Defect>& detected,
                                const std::vector<InjectedDefect>& truth) {
  DetectionScore score;
  std::vector<bool> truth_hit(truth.size(), false);
  for (const Defect& d : detected) {
    bool matched = false;
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (boxes_overlap(d.region, truth[t])) {
        truth_hit[t] = true;
        matched = true;
      }
    }
    if (!matched) ++score.false_positives;
  }
  for (const bool hit : truth_hit) {
    if (hit) {
      ++score.true_positives;
    } else {
      ++score.false_negatives;
    }
  }
  return score;
}

}  // namespace sysrle
