#pragma once
// Detection scoring against injected ground truth: matches reported defects
// to ground-truth boxes by overlap and computes precision/recall.  Used by
// the end-to-end tests and the inspection example to quantify pipeline
// quality, not just run it.

#include <cstddef>
#include <string>
#include <vector>

#include "inspect/defect.hpp"
#include "workload/pcb.hpp"

namespace sysrle {

/// Outcome of matching detections to ground truth.
struct DetectionScore {
  std::size_t true_positives = 0;   ///< ground-truth boxes hit by >=1 defect
  std::size_t false_negatives = 0;  ///< ground-truth boxes nobody hit
  std::size_t false_positives = 0;  ///< defects overlapping no ground truth

  double precision() const;
  double recall() const;
  /// Harmonic mean of precision and recall (0 when both are undefined).
  double f1() const;

  std::string to_string() const;
};

/// Matches reported defects against injected ground-truth defects by
/// bounding-box overlap (any shared pixel counts).  A ground-truth box hit
/// by several defects is one true positive; a defect covering several boxes
/// marks each of them hit.
DetectionScore score_detections(const std::vector<Defect>& detected,
                                const std::vector<InjectedDefect>& truth);

}  // namespace sysrle
