#include "rle/encode.hpp"

#include "common/assert.hpp"

namespace sysrle {

RleRow encode_bits(std::span<const std::uint8_t> bits) {
  RleRow row;
  const pos_t n = static_cast<pos_t>(bits.size());
  pos_t i = 0;
  while (i < n) {
    while (i < n && bits[static_cast<std::size_t>(i)] == 0) ++i;
    if (i >= n) break;
    const pos_t start = i;
    while (i < n && bits[static_cast<std::size_t>(i)] != 0) ++i;
    row.push_back(Run{start, i - start});
  }
  return row;
}

RleRow encode_bitstring(std::string_view bits) {
  std::vector<std::uint8_t> raw;
  raw.reserve(bits.size());
  for (char c : bits) {
    SYSRLE_REQUIRE(c == '0' || c == '1',
                   "encode_bitstring: character is not '0'/'1'");
    raw.push_back(c == '1' ? 1 : 0);
  }
  return encode_bits(raw);
}

std::vector<std::uint8_t> decode_bits(const RleRow& row, pos_t width) {
  SYSRLE_REQUIRE(width >= 0, "decode_bits: negative width");
  SYSRLE_REQUIRE(row.fits_width(width), "decode_bits: row exceeds width");
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(width), 0);
  for (const Run& r : row)
    for (pos_t p = r.start; p <= r.end(); ++p)
      bits[static_cast<std::size_t>(p)] = 1;
  return bits;
}

std::string decode_bitstring(const RleRow& row, pos_t width) {
  const auto bits = decode_bits(row, width);
  std::string s(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) s[i] = '1';
  return s;
}

}  // namespace sysrle
