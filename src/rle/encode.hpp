#pragma once
// Conversions between uncompressed bitstrings and RLE rows.
//
// These are the boundaries of the compressed domain: everything inside
// sysrle operates on RleRow directly, and tests use these converters to check
// compressed-domain results against uncompressed ground truth.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "rle/rle_row.hpp"

namespace sysrle {

/// Encodes a row of 0/1 bytes into RLE.  Any non-zero byte is foreground.
/// The result is canonical by construction.
RleRow encode_bits(std::span<const std::uint8_t> bits);

/// Encodes a textual bitstring, e.g. "0011100110".  Characters must be
/// '0' or '1'.
RleRow encode_bitstring(std::string_view bits);

/// Decodes an RLE row into a vector of 0/1 bytes of length `width`.
/// Requires the row to fit in [0, width).
std::vector<std::uint8_t> decode_bits(const RleRow& row, pos_t width);

/// Decodes an RLE row into a textual bitstring of length `width`.
std::string decode_bitstring(const RleRow& row, pos_t width);

}  // namespace sysrle
