#include "rle/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "rle/morphology.hpp"
#include "rle/ops.hpp"

namespace sysrle {
namespace {

/// Sum of 0 + 1 + ... + t (0 for negative t).
double sum_to(pos_t t) {
  if (t < 0) return 0.0;
  return 0.5 * static_cast<double>(t) * static_cast<double>(t + 1);
}

/// Sum of squares 0^2 + ... + t^2 (0 for negative t).
double sum_sq_to(pos_t t) {
  if (t < 0) return 0.0;
  const double td = static_cast<double>(t);
  return td * (td + 1.0) * (2.0 * td + 1.0) / 6.0;
}

}  // namespace

std::vector<len_t> row_projection(const RleImage& img) {
  std::vector<len_t> profile(static_cast<std::size_t>(img.height()), 0);
  for (pos_t y = 0; y < img.height(); ++y)
    profile[static_cast<std::size_t>(y)] = img.row(y).foreground_pixels();
  return profile;
}

std::vector<len_t> column_projection(const RleImage& img) {
  // Boundary differencing: +1 at each run start, -1 one past each end, then
  // a prefix sum turns the deltas into per-column coverage counts.
  std::vector<len_t> delta(static_cast<std::size_t>(img.width()) + 1, 0);
  for (pos_t y = 0; y < img.height(); ++y) {
    for (const Run& r : img.row(y)) {
      ++delta[static_cast<std::size_t>(r.start)];
      --delta[static_cast<std::size_t>(r.end() + 1)];
    }
  }
  std::vector<len_t> profile(static_cast<std::size_t>(img.width()), 0);
  len_t acc = 0;
  for (pos_t x = 0; x < img.width(); ++x) {
    acc += delta[static_cast<std::size_t>(x)];
    profile[static_cast<std::size_t>(x)] = acc;
  }
  return profile;
}

double ImageMoments::orientation() const {
  if (mu11 == 0.0 && mu20 == mu02) return 0.0;
  return 0.5 * std::atan2(2.0 * mu11, mu20 - mu02);
}

ImageMoments image_moments(const RleImage& img) {
  double m00 = 0, m10 = 0, m01 = 0, m20 = 0, m02 = 0, m11 = 0;
  for (pos_t y = 0; y < img.height(); ++y) {
    const double yd = static_cast<double>(y);
    for (const Run& r : img.row(y)) {
      const double n = static_cast<double>(r.length);
      const double sum_x = sum_to(r.end()) - sum_to(r.start - 1);
      const double sum_x2 = sum_sq_to(r.end()) - sum_sq_to(r.start - 1);
      m00 += n;
      m10 += sum_x;
      m01 += yd * n;
      m20 += sum_x2;
      m02 += yd * yd * n;
      m11 += yd * sum_x;
    }
  }
  ImageMoments m;
  m.area = static_cast<len_t>(m00);
  if (m00 > 0) {
    m.centroid_x = m10 / m00;
    m.centroid_y = m01 / m00;
    m.mu20 = m20 - m.centroid_x * m10;
    m.mu02 = m02 - m.centroid_y * m01;
    m.mu11 = m11 - m.centroid_x * m01;
  }
  return m;
}

bool foreground_bbox(const RleImage& img, pos_t& min_x, pos_t& min_y,
                     pos_t& max_x, pos_t& max_y) {
  bool any = false;
  for (pos_t y = 0; y < img.height(); ++y) {
    const RleRow& row = img.row(y);
    if (row.empty()) continue;
    if (!any) {
      min_x = row.first_pixel();
      max_x = row.last_pixel();
      min_y = max_y = y;
      any = true;
    } else {
      min_x = std::min(min_x, row.first_pixel());
      max_x = std::max(max_x, row.last_pixel());
      max_y = y;
    }
  }
  return any;
}

RleRow filter_short_runs(const RleRow& row, len_t min_length) {
  SYSRLE_REQUIRE(min_length >= 1, "filter_short_runs: min_length must be >= 1");
  RleRow out;
  for (const Run& r : row)
    if (r.length >= min_length) out.push_back(r);
  return out;
}

RleImage boundary(const RleImage& img) {
  // Interior = pixels whose 4-neighbourhood is all foreground:
  // horizontal erosion by 1 AND the rows directly above and below.
  RleImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    RleRow interior = erode_row(img.row(y), 1);
    if (!interior.empty() && y > 0)
      interior = and_rows(interior, img.row(y - 1));
    if (!interior.empty() && y + 1 < img.height()) {
      interior = and_rows(interior, img.row(y + 1));
    } else {
      interior = RleRow{};  // border rows have no interior pixels
    }
    if (y == 0) interior = RleRow{};
    out.set_row(y, subtract_rows(img.row(y), interior));
  }
  return out;
}

}  // namespace sysrle
