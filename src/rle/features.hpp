#pragma once
// Feature extraction directly from RLE data — the measurement side of the
// paper's motivating applications (feature extraction is application [5] in
// its introduction).  Everything here is O(runs): projection profiles,
// area/centroid/second moments, bounding boxes and boundary extraction, all
// computed from run arithmetic without visiting pixels.

#include <cstdint>
#include <vector>

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Horizontal projection profile: foreground count per row.  O(total runs).
std::vector<len_t> row_projection(const RleImage& img);

/// Vertical projection profile: foreground count per column.  Computed by
/// run-boundary differencing + prefix sum, O(total runs + width).
std::vector<len_t> column_projection(const RleImage& img);

/// Geometric moments of the foreground, all from closed-form per-run sums.
struct ImageMoments {
  len_t area = 0;        ///< m00: foreground pixel count
  double centroid_x = 0; ///< m10 / m00 (0 when empty)
  double centroid_y = 0; ///< m01 / m00
  double mu20 = 0;       ///< central second moment in x (variance * area)
  double mu02 = 0;       ///< central second moment in y
  double mu11 = 0;       ///< central cross moment

  /// Orientation of the principal axis in radians (atan2 convention),
  /// 0 when the foreground is isotropic or empty.
  double orientation() const;
};

/// Computes area, centroid and central second moments.  Uses the exact
/// closed forms for sums of x and x^2 over a run.  O(total runs).
ImageMoments image_moments(const RleImage& img);

/// Tight bounding box of the foreground; false when the image is empty.
bool foreground_bbox(const RleImage& img, pos_t& min_x, pos_t& min_y,
                     pos_t& max_x, pos_t& max_y);

/// Removes runs shorter than `min_length` (1-D despeckle).  O(runs).
RleRow filter_short_runs(const RleRow& row, len_t min_length);

/// 4-connected boundary of the foreground: pixels with at least one
/// background neighbour (img minus its erosion by a 3x3 cross, implemented
/// with row ops).  O(total runs).
RleImage boundary(const RleImage& img);

}  // namespace sysrle
