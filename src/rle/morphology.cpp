#include "rle/morphology.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rle/ops.hpp"

namespace sysrle {

RleRow dilate_row(const RleRow& row, pos_t r, pos_t width) {
  SYSRLE_REQUIRE(r >= 0, "dilate_row: negative radius");
  SYSRLE_REQUIRE(row.fits_width(width), "dilate_row: row exceeds width");
  RleRow out;
  pos_t open_start = -1, open_end = -1;
  for (const Run& run : row) {
    const pos_t s = std::max<pos_t>(run.start - r, 0);
    const pos_t e = std::min<pos_t>(run.end() + r, width - 1);
    if (open_start < 0) {
      open_start = s;
      open_end = e;
    } else if (s <= open_end + 1) {
      open_end = std::max(open_end, e);  // grown runs merged
    } else {
      out.push_back(Run::from_bounds(open_start, open_end));
      open_start = s;
      open_end = e;
    }
  }
  if (open_start >= 0) out.push_back(Run::from_bounds(open_start, open_end));
  return out;
}

RleRow erode_row(const RleRow& row, pos_t r) {
  SYSRLE_REQUIRE(r >= 0, "erode_row: negative radius");
  RleRow out;
  for (const Run& run : row) {
    const pos_t s = run.start + r;
    const pos_t e = run.end() - r;
    if (s <= e) out.push_back(Run::from_bounds(s, e));
  }
  return out;
}

RleRow erode_row(const RleRow& row, pos_t r, pos_t width,
                 BorderPolicy border) {
  SYSRLE_REQUIRE(r >= 0, "erode_row: negative radius");
  SYSRLE_REQUIRE(row.fits_width(width), "erode_row: row exceeds width");
  if (border == BorderPolicy::kBackground) return erode_row(row, r);
  // Adjacent runs are one foreground block to the structuring element;
  // merge them first so the per-run shrink below is exact.
  const RleRow merged = row.is_canonical() ? row : row.canonical();
  RleRow out;
  for (const Run& run : merged) {
    // A run touching the border keeps that edge: the foreground padding
    // supplies the 2r+1 neighbourhood the image cannot.
    const pos_t s = run.start == 0 ? 0 : run.start + r;
    const pos_t e = run.end() == width - 1 ? width - 1 : run.end() - r;
    if (s <= e) out.push_back(Run::from_bounds(s, e));
  }
  return out;
}

RleImage dilate_image(const RleImage& img, pos_t rx, pos_t ry) {
  SYSRLE_REQUIRE(rx >= 0 && ry >= 0, "dilate_image: negative radius");
  // Separable: horizontal growth per row, then vertical union of the
  // 2*ry+1 neighbouring rows.
  RleImage horizontal(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y)
    horizontal.set_row(y, dilate_row(img.row(y), rx, img.width()));
  if (ry == 0) return horizontal;

  RleImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    RleRow acc;
    const pos_t lo = std::max<pos_t>(y - ry, 0);
    const pos_t hi = std::min<pos_t>(y + ry, img.height() - 1);
    for (pos_t yy = lo; yy <= hi; ++yy) acc = or_rows(acc, horizontal.row(yy));
    out.set_row(y, std::move(acc));
  }
  return out;
}

RleImage erode_image(const RleImage& img, pos_t rx, pos_t ry,
                     BorderPolicy border) {
  SYSRLE_REQUIRE(rx >= 0 && ry >= 0, "erode_image: negative radius");
  RleImage horizontal(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y)
    horizontal.set_row(y, erode_row(img.row(y), rx, img.width(), border));
  if (ry == 0) return horizontal;

  // Vertical erosion: a pixel survives only if all 2*ry+1 neighbouring rows
  // contain it.  With background outside the image, rows within ry of the
  // border erode to empty; with foreground outside, the out-of-image rows
  // are all-1 — the AND identity — so the range simply clamps.
  RleImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    if (border == BorderPolicy::kBackground &&
        (y - ry < 0 || y + ry >= img.height()))
      continue;  // border -> empty
    const pos_t lo = std::max<pos_t>(y - ry, 0);
    const pos_t hi = std::min<pos_t>(y + ry, img.height() - 1);
    RleRow acc = horizontal.row(lo);
    for (pos_t yy = lo + 1; yy <= hi && !acc.empty(); ++yy)
      acc = and_rows(acc, horizontal.row(yy));
    out.set_row(y, std::move(acc));
  }
  return out;
}

RleImage open_image(const RleImage& img, pos_t rx, pos_t ry) {
  return dilate_image(erode_image(img, rx, ry), rx, ry);
}

RleImage close_image(const RleImage& img, pos_t rx, pos_t ry) {
  // Foreground padding on the erode half keeps closing extensive at the
  // image border (see morphology.hpp); dilation itself never reads past
  // the border, so its half is unaffected.
  return erode_image(dilate_image(img, rx, ry), rx, ry,
                     BorderPolicy::kForeground);
}

}  // namespace sysrle
