#pragma once
// Mathematical morphology directly on RLE data.  Morphological operations
// are among the hardware-accelerated binary image operations the paper's
// introduction surveys ([6], [9]); in the inspection pipeline they serve as
// noise filters: an *opening* of the difference image deletes isolated
// specks before defect labeling.
//
// Structuring elements are axis-aligned: horizontal extent 2*rx+1, vertical
// extent 2*ry+1 (a rectangle).  All operations stay in the compressed
// domain and cost O(runs), never O(pixels).

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// 1-D dilation: every run grows by `r` pixels on each side (clipped to
/// [0, width)); touching runs merge.  r >= 0.
RleRow dilate_row(const RleRow& row, pos_t r, pos_t width);

/// 1-D erosion: every run shrinks by `r` pixels on each side; runs shorter
/// than 2r+1 vanish.  r >= 0.
RleRow erode_row(const RleRow& row, pos_t r);

/// 2-D dilation by a (2rx+1) x (2ry+1) rectangle.
RleImage dilate_image(const RleImage& img, pos_t rx, pos_t ry);

/// 2-D erosion by a (2rx+1) x (2ry+1) rectangle.
RleImage erode_image(const RleImage& img, pos_t rx, pos_t ry);

/// Opening (erosion then dilation): removes features smaller than the
/// structuring element without growing the rest.
RleImage open_image(const RleImage& img, pos_t rx, pos_t ry);

/// Closing (dilation then erosion): fills gaps smaller than the element.
RleImage close_image(const RleImage& img, pos_t rx, pos_t ry);

}  // namespace sysrle
