#pragma once
// Mathematical morphology directly on RLE data.  Morphological operations
// are among the hardware-accelerated binary image operations the paper's
// introduction surveys ([6], [9]); in the inspection pipeline they serve as
// noise filters: an *opening* of the difference image deletes isolated
// specks before defect labeling.
//
// Structuring elements are axis-aligned: horizontal extent 2*rx+1, vertical
// extent 2*ry+1 (a rectangle).  All operations stay in the compressed
// domain and cost O(runs), never O(pixels).

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// 1-D dilation: every run grows by `r` pixels on each side (clipped to
/// [0, width)); touching runs merge.  r >= 0.
RleRow dilate_row(const RleRow& row, pos_t r, pos_t width);

/// 1-D erosion: every run shrinks by `r` pixels on each side; runs shorter
/// than 2r+1 vanish.  r >= 0.  Outside-image pixels count as background.
RleRow erode_row(const RleRow& row, pos_t r);

/// What erosion assumes about pixels outside the image.
///
/// Erosion is the only operation here that *reads* beyond the border (a
/// pixel survives only if its whole neighbourhood is foreground), so the
/// convention matters.  kBackground is the plain definition and what
/// erode/open use; kForeground exists for the erode half of closing, where
/// background padding would let the erosion eat border-touching foreground
/// that the dilation pushed past the edge — making closing non-extensive.
enum class BorderPolicy {
  kBackground,  ///< outside-image pixels are 0 (default)
  kForeground,  ///< outside-image pixels are 1 (closing's erode half)
};

/// 1-D erosion with an explicit border convention.  With kForeground, a run
/// touching position 0 or width-1 keeps that edge (the padding supplies the
/// missing neighbourhood); interior boundaries shrink as usual.
RleRow erode_row(const RleRow& row, pos_t r, pos_t width, BorderPolicy border);

/// 2-D dilation by a (2rx+1) x (2ry+1) rectangle.
RleImage dilate_image(const RleImage& img, pos_t rx, pos_t ry);

/// 2-D erosion by a (2rx+1) x (2ry+1) rectangle.  With kForeground,
/// out-of-image rows are all-foreground (the AND identity), so border rows
/// erode against their in-image neighbours only.
RleImage erode_image(const RleImage& img, pos_t rx, pos_t ry,
                     BorderPolicy border = BorderPolicy::kBackground);

/// Opening (erosion then dilation): removes features smaller than the
/// structuring element without growing the rest.  Background border.
RleImage open_image(const RleImage& img, pos_t rx, pos_t ry);

/// Closing (dilation then erosion): fills gaps smaller than the element.
/// The erode half runs with BorderPolicy::kForeground — the standard fix
/// that keeps closing extensive (img is a subset of close(img)) for blobs
/// touching the image border; with background padding the erosion would
/// erase exactly the foreground the dilation pushed past the edge.
RleImage close_image(const RleImage& img, pos_t rx, pos_t ry);

}  // namespace sysrle
