#include "rle/ops.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace sysrle {
namespace {

constexpr pos_t kInf = std::numeric_limits<pos_t>::max();

/// Boundary-event parity sweep over two run lists.  Both lists are sorted and
/// non-overlapping (RleRow invariant), so the sweep visits each boundary once
/// and runs in O(ka + kb).  `pred(inA, inB)` decides output membership for
/// every maximal segment with constant membership; adjacent true segments are
/// coalesced, so the result is canonical.
template <typename Pred>
RleRow combine(const RleRow& a, const RleRow& b, Pred pred) {
  std::size_t ia = 0, ib = 0;
  bool in_a = false, in_b = false;

  auto next_a = [&]() -> pos_t {
    if (ia >= a.run_count()) return kInf;
    return in_a ? a[ia].end() + 1 : a[ia].start;
  };
  auto next_b = [&]() -> pos_t {
    if (ib >= b.run_count()) return kInf;
    return in_b ? b[ib].end() + 1 : b[ib].start;
  };

  RleRow out;
  bool open = false;
  pos_t open_start = 0;

  for (;;) {
    const pos_t pa = next_a();
    const pos_t pb = next_b();
    const pos_t p = std::min(pa, pb);
    if (p == kInf) break;
    if (pa == p) {
      if (in_a) {
        in_a = false;
        ++ia;
      } else {
        in_a = true;
      }
    }
    if (pb == p) {
      if (in_b) {
        in_b = false;
        ++ib;
      } else {
        in_b = true;
      }
    }
    const bool want = pred(in_a, in_b);
    if (want && !open) {
      open = true;
      open_start = p;
    } else if (!want && open) {
      open = false;
      out.push_back(Run::from_bounds(open_start, p - 1));
    }
  }
  // pred(false,false) is false for every operation here, so once both inputs
  // are exhausted no segment can remain open.
  SYSRLE_CHECK(!open, "combine: segment left open past all boundaries");
  return out;
}

}  // namespace

RleRow xor_rows(const RleRow& a, const RleRow& b) {
  return combine(a, b, [](bool x, bool y) { return x != y; });
}

RleRow and_rows(const RleRow& a, const RleRow& b) {
  return combine(a, b, [](bool x, bool y) { return x && y; });
}

RleRow or_rows(const RleRow& a, const RleRow& b) {
  return combine(a, b, [](bool x, bool y) { return x || y; });
}

RleRow subtract_rows(const RleRow& a, const RleRow& b) {
  return combine(a, b, [](bool x, bool y) { return x && !y; });
}

RleRow complement_row(const RleRow& a, pos_t width) {
  SYSRLE_REQUIRE(width >= 0, "complement_row: negative width");
  SYSRLE_REQUIRE(a.fits_width(width), "complement_row: row exceeds width");
  RleRow out;
  pos_t cursor = 0;
  for (const Run& r : a) {
    if (r.start > cursor) out.push_back(Run::from_bounds(cursor, r.start - 1));
    cursor = r.end() + 1;
  }
  if (cursor < width) out.push_back(Run::from_bounds(cursor, width - 1));
  return out;
}

len_t intersection_pixels(const RleRow& a, const RleRow& b) {
  len_t total = 0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.run_count() && ib < b.run_count()) {
    const Run& ra = a[ia];
    const Run& rb = b[ib];
    const pos_t lo = std::max(ra.start, rb.start);
    const pos_t hi = std::min(ra.end(), rb.end());
    if (lo <= hi) total += hi - lo + 1;
    if (ra.end() < rb.end()) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return total;
}

len_t hamming_distance(const RleRow& a, const RleRow& b) {
  // |A xor B| = |A| + |B| - 2|A and B|, avoiding an intermediate row.
  return a.foreground_pixels() + b.foreground_pixels() -
         2 * intersection_pixels(a, b);
}

RleRow xor_run_multiset(std::vector<Run> runs) {
  // Each run contributes two parity-toggle events: one at start, one at
  // end+1.  After sorting, positions with an odd number of toggles flip the
  // output parity; maximal parity-1 segments form the result.
  std::vector<pos_t> toggles;
  toggles.reserve(runs.size() * 2);
  for (const Run& r : runs) {
    SYSRLE_REQUIRE(r.length >= 1, "xor_run_multiset: empty run");
    toggles.push_back(r.start);
    toggles.push_back(r.end() + 1);
  }
  std::sort(toggles.begin(), toggles.end());

  RleRow out;
  bool parity = false;
  pos_t open_start = 0;
  std::size_t i = 0;
  while (i < toggles.size()) {
    const pos_t p = toggles[i];
    std::size_t same = 0;
    while (i < toggles.size() && toggles[i] == p) {
      ++same;
      ++i;
    }
    if (same % 2 == 1) {
      if (!parity) {
        parity = true;
        open_start = p;
      } else {
        parity = false;
        out.push_back(Run::from_bounds(open_start, p - 1));
      }
    }
  }
  SYSRLE_CHECK(!parity, "xor_run_multiset: unbalanced toggles");
  return out;
}

}  // namespace sysrle
