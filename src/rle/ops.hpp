#pragma once
// Sequential set operations on RLE rows, implemented as a boundary-event
// parity sweep.  xor_rows is the reference implementation of the paper's
// image-difference operation (section 2's definition); the iteration-counted
// merge variant the paper benchmarks against lives in src/baseline.

#include "rle/rle_row.hpp"

namespace sysrle {

/// difference[i] = a[i] XOR b[i]  — the paper's image difference (section 2).
/// Result is canonical.
RleRow xor_rows(const RleRow& a, const RleRow& b);

/// Pixelwise AND of two rows.  Result is canonical.
RleRow and_rows(const RleRow& a, const RleRow& b);

/// Pixelwise OR of two rows.  Result is canonical.
RleRow or_rows(const RleRow& a, const RleRow& b);

/// Pixels set in `a` but not in `b` (a AND NOT b).  Result is canonical.
RleRow subtract_rows(const RleRow& a, const RleRow& b);

/// Complement within [0, width).  Requires a to fit in width.
RleRow complement_row(const RleRow& a, pos_t width);

/// Number of pixels set in both rows (popcount of AND) without materialising
/// the intermediate row.
len_t intersection_pixels(const RleRow& a, const RleRow& b);

/// Hamming distance: number of positions where the rows differ (popcount of
/// XOR) without materialising the intermediate row.
len_t hamming_distance(const RleRow& a, const RleRow& b);

/// XOR of an arbitrary multiset of runs: bit i of the result is set iff an
/// odd number of the given runs cover position i.  This is the paper's
/// section-4.3 view of the machine state as "a set of many distinct smaller
/// bitstrings"; the Theorem-3 invariant checker uses it.  Runs may overlap
/// and appear in any order.  O(k log k).  Result is canonical.
RleRow xor_run_multiset(std::vector<Run> runs);

}  // namespace sysrle
