#include "rle/rle_image.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace sysrle {

RleImage::RleImage(pos_t width, pos_t height) : width_(width) {
  SYSRLE_REQUIRE(width >= 0 && height >= 0, "RleImage: negative dimensions");
  rows_.resize(static_cast<std::size_t>(height));
}

RleImage::RleImage(pos_t width, std::vector<RleRow> rows)
    : width_(width), rows_(std::move(rows)) {
  SYSRLE_REQUIRE(width >= 0, "RleImage: negative width");
  for (const RleRow& r : rows_)
    SYSRLE_REQUIRE(r.fits_width(width_), "RleImage: row exceeds width");
}

const RleRow& RleImage::row(pos_t y) const {
  SYSRLE_REQUIRE(y >= 0 && y < height(), "RleImage::row: index out of range");
  return rows_[static_cast<std::size_t>(y)];
}

void RleImage::set_row(pos_t y, RleRow row) {
  SYSRLE_REQUIRE(y >= 0 && y < height(), "RleImage::set_row: index out of range");
  SYSRLE_REQUIRE(row.fits_width(width_), "RleImage::set_row: row exceeds width");
  rows_[static_cast<std::size_t>(y)] = std::move(row);
}

RleImageStats RleImage::stats() const {
  RleImageStats s;
  for (const RleRow& r : rows_) {
    s.total_runs += r.run_count();
    s.max_runs_per_row = std::max(s.max_runs_per_row, r.run_count());
    s.foreground_pixels += r.foreground_pixels();
  }
  const double area = static_cast<double>(width_) * static_cast<double>(height());
  s.density = area > 0 ? static_cast<double>(s.foreground_pixels) / area : 0.0;
  return s;
}

std::string RleImage::to_string() const {
  std::ostringstream os;
  for (pos_t y = 0; y < height(); ++y) {
    os << rows_[static_cast<std::size_t>(y)].to_string();
    if (y + 1 < height()) os << '\n';
  }
  return os.str();
}

}  // namespace sysrle
