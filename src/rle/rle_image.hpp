#pragma once
// A full binary image in RLE form: a width, a height, and one RleRow per
// scanline.  The paper's systolic machine processes images row by row
// (Figure 1 is captioned "Row of Image 1/2"); this container is what the
// image-level drivers in src/core iterate over.

#include <string>
#include <vector>

#include "rle/rle_row.hpp"

namespace sysrle {

/// Aggregate statistics over an RLE image.
struct RleImageStats {
  std::size_t total_runs = 0;       ///< sum of run counts over all rows
  std::size_t max_runs_per_row = 0; ///< the paper's per-row k upper bound
  len_t foreground_pixels = 0;      ///< total 'on' pixels
  double density = 0.0;             ///< foreground / (width*height)
};

/// Row-major RLE binary image.
class RleImage {
 public:
  /// Creates an all-background image of the given dimensions.
  RleImage(pos_t width, pos_t height);

  /// Creates from existing rows; every row must fit the width and the row
  /// count must equal height.
  RleImage(pos_t width, std::vector<RleRow> rows);

  pos_t width() const { return width_; }
  pos_t height() const { return static_cast<pos_t>(rows_.size()); }

  const RleRow& row(pos_t y) const;
  /// Replaces one row; it must fit the image width.
  void set_row(pos_t y, RleRow row);

  const std::vector<RleRow>& rows() const { return rows_; }

  /// Computes aggregate run/pixel statistics in one pass.
  RleImageStats stats() const;

  friend bool operator==(const RleImage&, const RleImage&) = default;

  /// Multi-line rendering, one "(s,l) (s,l) ..." line per row (debugging).
  std::string to_string() const;

 private:
  pos_t width_;
  std::vector<RleRow> rows_;
};

}  // namespace sysrle
