#include "rle/rle_row.hpp"

#include <utility>

namespace sysrle {

RleRow::RleRow(std::vector<Run> runs) : runs_(std::move(runs)) { validate(); }

RleRow::RleRow(std::initializer_list<Run> runs) : runs_(runs) { validate(); }

RleRow RleRow::from_pairs(std::initializer_list<std::pair<pos_t, len_t>> ps) {
  std::vector<Run> rs;
  rs.reserve(ps.size());
  for (const auto& [s, l] : ps) rs.emplace_back(s, l);
  return RleRow(std::move(rs));
}

void RleRow::validate() const {
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    SYSRLE_REQUIRE(runs_[i].length >= 1, "RleRow: run with non-positive length");
    SYSRLE_REQUIRE(runs_[i].start >= 0, "RleRow: negative start position");
    if (i > 0)
      SYSRLE_REQUIRE(runs_[i - 1].end() < runs_[i].start,
                     "RleRow: runs out of order or overlapping");
  }
}

void RleRow::append(const Run* runs, std::size_t count) {
  if (count == 0) return;
  if (!runs_.empty())
    SYSRLE_REQUIRE(runs_.back().end() < runs[0].start,
                   "RleRow::append: batch does not follow previous run");
  for (std::size_t i = 0; i < count; ++i) {
    SYSRLE_REQUIRE(runs[i].length >= 1, "RleRow::append: non-positive length");
    SYSRLE_REQUIRE(runs[i].start >= 0, "RleRow::append: negative start");
    if (i > 0)
      SYSRLE_REQUIRE(runs[i - 1].end() < runs[i].start,
                     "RleRow::append: runs out of order or overlapping");
  }
  runs_.insert(runs_.end(), runs, runs + count);
}

len_t RleRow::foreground_pixels() const {
  len_t total = 0;
  for (const Run& r : runs_) total += r.length;
  return total;
}

pos_t RleRow::first_pixel() const {
  SYSRLE_REQUIRE(!runs_.empty(), "RleRow::first_pixel on empty row");
  return runs_.front().start;
}

pos_t RleRow::last_pixel() const {
  SYSRLE_REQUIRE(!runs_.empty(), "RleRow::last_pixel on empty row");
  return runs_.back().end();
}

bool RleRow::is_canonical() const {
  for (std::size_t i = 1; i < runs_.size(); ++i)
    if (runs_[i - 1].end() + 1 == runs_[i].start) return false;
  return true;
}

std::size_t RleRow::canonicalize() {
  if (runs_.size() < 2) return 0;
  std::size_t merges = 0;
  std::vector<Run> out;
  out.reserve(runs_.size());
  out.push_back(runs_.front());
  for (std::size_t i = 1; i < runs_.size(); ++i) {
    if (out.back().end() + 1 == runs_[i].start) {
      out.back().length += runs_[i].length;
      ++merges;
    } else {
      out.push_back(runs_[i]);
    }
  }
  runs_ = std::move(out);
  return merges;
}

RleRow RleRow::canonical() const {
  RleRow copy = *this;
  copy.canonicalize();
  return copy;
}

bool RleRow::fits_width(pos_t width) const {
  return runs_.empty() || runs_.back().end() < width;
}

std::string RleRow::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i) s += ' ';
    s += runs_[i].to_string();
  }
  return s;
}

}  // namespace sysrle
