#pragma once
// One run-length-encoded image row: an ordered, non-overlapping sequence of
// foreground runs.  This is the unit the systolic array and the sequential
// merge baseline both consume.

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "rle/run.hpp"

namespace sysrle {

/// Ordered sequence of non-overlapping runs.  Invariants (checked on every
/// mutating entry point):
///   * each run has length >= 1 and start >= 0,
///   * starts strictly increase and runs do not overlap.
/// Runs MAY be adjacent (end+1 == next.start); the paper permits this in both
/// inputs and output.  canonicalize() merges such pairs.
class RleRow {
 public:
  RleRow() = default;

  /// Builds from a run list, validating ordering/overlap.
  explicit RleRow(std::vector<Run> runs);
  RleRow(std::initializer_list<Run> runs);

  /// Builds from (start,length) pairs, e.g. {{10,3},{16,2}} — handy for
  /// transcribing the paper's figures.
  static RleRow from_pairs(std::initializer_list<std::pair<pos_t, len_t>> ps);

  /// Appends a run; it must begin after the current last run ends.
  /// Inline: this sits on the per-run hot path of every diff engine.
  void push_back(const Run& r) {
    SYSRLE_REQUIRE(r.length >= 1, "RleRow::push_back: non-positive length");
    SYSRLE_REQUIRE(r.start >= 0, "RleRow::push_back: negative start");
    if (!runs_.empty())
      SYSRLE_REQUIRE(runs_.back().end() < r.start,
                     "RleRow::push_back: run does not follow previous run");
    runs_.push_back(r);
  }

  /// Appends an ordered batch of runs (the first must begin after the
  /// current last run ends): one validation pass plus one bulk insert — the
  /// batch analogue of push_back for hot extraction loops, which would
  /// otherwise pay the per-run contract checks and vector growth per run.
  void append(const Run* runs, std::size_t count);

  /// Number of runs (the paper's k).
  std::size_t run_count() const { return runs_.size(); }
  bool empty() const { return runs_.empty(); }

  /// Total number of foreground pixels.
  len_t foreground_pixels() const;

  /// First pixel of the first run / last pixel of the last run.
  /// Precondition: !empty().
  pos_t first_pixel() const;
  pos_t last_pixel() const;

  const Run& operator[](std::size_t i) const { return runs_[i]; }
  const std::vector<Run>& runs() const { return runs_; }

  auto begin() const { return runs_.begin(); }
  auto end() const { return runs_.end(); }

  /// True when no two consecutive runs are adjacent (maximally compressed).
  bool is_canonical() const;

  /// Merges adjacent runs in place; afterwards is_canonical() holds.
  /// Returns the number of merges performed.
  std::size_t canonicalize();

  /// Returns a canonicalized copy.
  RleRow canonical() const;

  /// True if any run extends beyond position width-1 (for bounds checks).
  bool fits_width(pos_t width) const;

  friend bool operator==(const RleRow&, const RleRow&) = default;

  /// Renders as "(10,3) (16,2) ..." like the paper's Figure 1 rows.
  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const RleRow& r) {
    return os << r.to_string();
  }

 private:
  void validate() const;
  std::vector<Run> runs_;
};

}  // namespace sysrle
