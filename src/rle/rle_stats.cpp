#include "rle/rle_stats.hpp"

#include <algorithm>
#include <sstream>

namespace sysrle {

double CompressionStats::ratio() const {
  return rle_bytes ? static_cast<double>(bitmap_bytes) /
                         static_cast<double>(rle_bytes)
                   : 0.0;
}

std::string CompressionStats::to_string() const {
  std::ostringstream os;
  os << "bitmap " << bitmap_bytes << " B, RLE " << rle_bytes << " B ("
     << runs << " runs), ratio " << ratio();
  return os.str();
}

CompressionStats compression_stats(const RleImage& img) {
  CompressionStats s;
  const std::uint64_t bytes_per_row =
      static_cast<std::uint64_t>((img.width() + 7) / 8);
  s.bitmap_bytes = bytes_per_row * static_cast<std::uint64_t>(img.height());
  // SRLB: 4 B magic + 3 x 8 B header, then per row 8 B count + 16 B per run.
  s.rle_bytes = 4 + 3 * 8;
  for (pos_t y = 0; y < img.height(); ++y) {
    const std::uint64_t k = img.row(y).run_count();
    s.rle_bytes += 8 + 16 * k;
    s.runs += k;
  }
  return s;
}

RunLengthHistogram run_length_histogram(const RleImage& img) {
  RunLengthHistogram h;
  double sum = 0.0;
  for (pos_t y = 0; y < img.height(); ++y) {
    for (const Run& r : img.row(y)) {
      std::size_t bucket = 0;
      while (bucket + 1 < RunLengthHistogram::kBuckets &&
             (len_t{1} << bucket) < r.length)
        ++bucket;
      ++h.buckets[bucket];
      if (h.total_runs == 0) {
        h.min_length = h.max_length = r.length;
      } else {
        h.min_length = std::min(h.min_length, r.length);
        h.max_length = std::max(h.max_length, r.length);
      }
      ++h.total_runs;
      sum += static_cast<double>(r.length);
    }
  }
  h.mean_length = h.total_runs ? sum / static_cast<double>(h.total_runs) : 0.0;
  return h;
}

std::string RunLengthHistogram::to_string() const {
  std::ostringstream os;
  os << "runs " << total_runs << ", length min/mean/max " << min_length << '/'
     << mean_length << '/' << max_length << '\n';
  std::uint64_t peak = 0;
  for (const std::uint64_t b : buckets) peak = std::max(peak, b);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const len_t lo = i == 0 ? 1 : (len_t{1} << (i - 1)) + 1;
    const len_t hi = len_t{1} << i;
    os << "  [" << lo << ".." << hi << "]: " << buckets[i] << ' ';
    const std::size_t bar =
        peak ? static_cast<std::size_t>(40 * buckets[i] / peak) : 0;
    os << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace sysrle
