#pragma once
// Compression analytics: how much does RLE actually buy on a given image?
// The paper's premise is that inspection imagery compresses extremely well
// (sparse, long-run artwork); these helpers quantify that premise for any
// image and feed the CLI's `stats` subcommand.

#include <array>
#include <cstdint>
#include <string>

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Storage accounting for one image under both representations.
struct CompressionStats {
  std::uint64_t bitmap_bytes = 0;  ///< packed 1 bpp, rows byte-padded
  std::uint64_t rle_bytes = 0;     ///< SRLB binary encoding (16 B/run + row counts)
  std::uint64_t runs = 0;          ///< total runs

  /// bitmap_bytes / rle_bytes; > 1 means RLE wins.  0 when rle_bytes is 0.
  double ratio() const;

  std::string to_string() const;
};

/// Computes storage statistics for an image.
CompressionStats compression_stats(const RleImage& img);

/// Histogram of run lengths, bucketed as 1, 2, 3-4, 5-8, ..., >=2^15
/// (powers of two).  Bucket i holds lengths in (2^(i-1), 2^i].
struct RunLengthHistogram {
  static constexpr std::size_t kBuckets = 16;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t total_runs = 0;
  len_t min_length = 0;
  len_t max_length = 0;
  double mean_length = 0.0;

  /// Multi-line rendering with one bar per non-empty bucket.
  std::string to_string() const;
};

/// Builds the run-length histogram of an image.
RunLengthHistogram run_length_histogram(const RleImage& img);

}  // namespace sysrle
