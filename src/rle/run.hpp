#pragma once
// A single run of foreground ('on') pixels.
//
// The paper stores runs as (start, length) 2-tuples but reasons about them as
// closed intervals [start, end]; this type offers both views.  Positions are
// 0-based.  A Run held in a container is always non-empty (length >= 1); the
// systolic datapath represents "no run" separately (std::optional / an
// interval with end < start), mirroring the hardware's empty-register state.

#include <compare>
#include <ostream>
#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace sysrle {

struct Run {
  pos_t start = 0;   ///< position of the first foreground pixel
  len_t length = 0;  ///< number of consecutive foreground pixels (>= 1)

  constexpr Run() = default;
  constexpr Run(pos_t s, len_t l) : start(s), length(l) {}

  /// Builds a run from closed-interval bounds [s, e]; requires e >= s.
  static Run from_bounds(pos_t s, pos_t e) {
    SYSRLE_REQUIRE(e >= s, "Run::from_bounds: empty interval");
    return Run{s, e - s + 1};
  }

  /// Position of the last foreground pixel (closed interval end).
  constexpr pos_t end() const { return start + length - 1; }

  /// True if position p lies inside the run.
  constexpr bool contains(pos_t p) const { return p >= start && p <= end(); }

  /// True if the two runs share at least one pixel.
  constexpr bool overlaps(const Run& o) const {
    return start <= o.end() && o.start <= end();
  }

  /// True if the runs touch without overlapping (end+1 == other.start or
  /// vice versa); such pairs are merged by canonicalisation.
  constexpr bool adjacent_to(const Run& o) const {
    return end() + 1 == o.start || o.end() + 1 == start;
  }

  /// Lexicographic (start, end) order — the order the paper's step 1 uses to
  /// decide which run is "smaller".
  friend constexpr auto operator<=>(const Run& a, const Run& b) {
    if (auto c = a.start <=> b.start; c != 0) return c;
    return a.end() <=> b.end();
  }
  friend constexpr bool operator==(const Run&, const Run&) = default;

  /// Renders as "(start,length)" exactly like the paper's figures.
  std::string to_string() const {
    std::string s;
    s += '(';
    s += std::to_string(start);
    s += ',';
    s += std::to_string(length);
    s += ')';
    return s;
  }

  friend std::ostream& operator<<(std::ostream& os, const Run& r) {
    return os << r.to_string();
  }
};

}  // namespace sysrle
