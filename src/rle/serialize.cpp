#include "rle/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "rle/validate.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {
namespace {

constexpr char kTextMagic[4] = {'S', 'R', 'L', 'T'};
constexpr char kBinaryMagic[4] = {'S', 'R', 'L', 'B'};

/// Sanity cap on header-declared dimensions.  A corrupted or hostile header
/// must never drive allocations; 16M pixels per side is far beyond any
/// scanline workload this code targets.
constexpr std::int64_t kMaxDimension = std::int64_t{1} << 24;

/// Never reserve more than this many elements on the say-so of a header
/// field alone; beyond it, growth is paid for by actually present data.
constexpr std::int64_t kMaxTrustedReserve = 4096;

void put_i64(std::ostream& out, std::int64_t v) {
  unsigned char buf[8];
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(u >> (8 * i));
  out.write(reinterpret_cast<const char*>(buf), 8);
}

std::int64_t get_i64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  SYSRLE_REQUIRE(in.good(), "RLE(binary): truncated stream");
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return static_cast<std::int64_t>(u);
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Feeds the canonical SRLB byte sequence of `img` to `sink(data, size)`.
/// Shared by canonical_rle_bytes and canonical_fingerprint so the string
/// and the streamed hash can never disagree about the encoding.
template <typename Sink>
void emit_canonical(const RleImage& img, Sink&& sink) {
  auto put = [&sink](std::int64_t v) {
    unsigned char buf[8];
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
      buf[i] = static_cast<unsigned char>(u >> (8 * i));
    sink(reinterpret_cast<const char*>(buf), std::size_t{8});
  };
  sink(kBinaryMagic, std::size_t{4});
  put(1);  // version, matching write_rle's SRLB header
  put(img.width());
  put(img.height());
  for (pos_t y = 0; y < img.height(); ++y) {
    const RleRow& raw = img.row(y);
    // Avoid the canonicalizing copy when the row is already maximally
    // compressed (the common case for generator and engine output).
    const RleRow merged = raw.is_canonical() ? RleRow{} : raw.canonical();
    const RleRow& row = raw.is_canonical() ? raw : merged;
    put(static_cast<std::int64_t>(row.run_count()));
    for (const Run& r : row) {
      put(r.start);
      put(r.length);
    }
  }
}

/// Wraps raw runs in an RleRow after validating them against the width.
RleRow checked_row(std::vector<Run> runs, pos_t width) {
  ValidateOptions opts;
  opts.width = width;
  const RowValidationReport report = validate_runs(runs, opts);
  SYSRLE_REQUIRE(report.ok(), "RLE: invalid row in stream — " + report.to_string());
  return RleRow(std::move(runs));
}

RleImage read_text(std::istream& in) {
  long long width = -1, height = -1;
  in >> width >> height;
  SYSRLE_REQUIRE(in.good() && width >= 0 && height >= 0,
                 "RLE(text): malformed header");
  SYSRLE_REQUIRE(width <= kMaxDimension && height <= kMaxDimension,
                 "RLE(text): implausible dimensions");
  std::vector<RleRow> rows;
  rows.reserve(static_cast<std::size_t>(
      std::min<long long>(height, kMaxTrustedReserve)));
  for (long long y = 0; y < height; ++y) {
    long long count = -1;
    in >> count;
    SYSRLE_REQUIRE(in.good() && count >= 0, "RLE(text): malformed run count");
    // A width-W row holds at most W runs (length-1 runs may be adjacent).
    SYSRLE_REQUIRE(count <= width, "RLE(text): run count exceeds width");
    std::vector<Run> runs;
    runs.reserve(static_cast<std::size_t>(
        std::min<long long>(count, kMaxTrustedReserve)));
    for (long long i = 0; i < count; ++i) {
      long long s = 0, l = 0;
      in >> s >> l;
      SYSRLE_REQUIRE(in.good(), "RLE(text): truncated row");
      runs.emplace_back(static_cast<pos_t>(s), static_cast<len_t>(l));
    }
    rows.push_back(checked_row(std::move(runs), static_cast<pos_t>(width)));
  }
  return RleImage(static_cast<pos_t>(width), std::move(rows));
}

RleImage read_binary(std::istream& in) {
  const std::int64_t version = get_i64(in);
  SYSRLE_REQUIRE(version == 1, "RLE(binary): unsupported version");
  const pos_t width = get_i64(in);
  const pos_t height = get_i64(in);
  SYSRLE_REQUIRE(width >= 0 && height >= 0, "RLE(binary): bad dimensions");
  SYSRLE_REQUIRE(width <= kMaxDimension && height <= kMaxDimension,
                 "RLE(binary): implausible dimensions");
  std::vector<RleRow> rows;
  rows.reserve(static_cast<std::size_t>(
      std::min<std::int64_t>(height, kMaxTrustedReserve)));
  for (pos_t y = 0; y < height; ++y) {
    const std::int64_t count = get_i64(in);
    SYSRLE_REQUIRE(count >= 0 && count <= width, "RLE(binary): bad run count");
    std::vector<Run> runs;
    runs.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(count, kMaxTrustedReserve)));
    for (std::int64_t i = 0; i < count; ++i) {
      const pos_t s = get_i64(in);
      const len_t l = get_i64(in);
      runs.emplace_back(s, l);
    }
    rows.push_back(checked_row(std::move(runs), width));
  }
  return RleImage(width, std::move(rows));
}

}  // namespace

void write_rle(std::ostream& out, const RleImage& img, RleFormat format) {
  TELEMETRY_SPAN("rle.write", "rle");
  const bool telem = telemetry_enabled();
  const std::streampos pos_before = telem ? out.tellp() : std::streampos(-1);
  if (format == RleFormat::kText) {
    out.write(kTextMagic, 4);
    out << '\n' << img.width() << ' ' << img.height() << '\n';
    for (pos_t y = 0; y < img.height(); ++y) {
      const RleRow& row = img.row(y);
      out << row.run_count();
      for (const Run& r : row) out << ' ' << r.start << ' ' << r.length;
      out << '\n';
    }
  } else {
    out.write(kBinaryMagic, 4);
    put_i64(out, 1);  // version
    put_i64(out, img.width());
    put_i64(out, img.height());
    for (pos_t y = 0; y < img.height(); ++y) {
      const RleRow& row = img.row(y);
      put_i64(out, static_cast<std::int64_t>(row.run_count()));
      for (const Run& r : row) {
        put_i64(out, r.start);
        put_i64(out, r.length);
      }
    }
  }
  SYSRLE_ENSURE(out.good(), "RLE: write failed");

  if (telem) {
    MetricsRegistry& m = global_metrics();
    m.add("serialize.images_written");
    const std::streampos pos_after = out.tellp();
    if (pos_before >= std::streampos(0) && pos_after >= pos_before)
      m.add("serialize.bytes_out",
            static_cast<std::uint64_t>(pos_after - pos_before));
  }
}

RleImage read_rle(std::istream& in) {
  TELEMETRY_SPAN("rle.read", "rle");
  const bool telem = telemetry_enabled();
  const std::streampos pos_before = telem ? in.tellg() : std::streampos(-1);
  try {
    char magic[4] = {};
    in.read(magic, 4);
    SYSRLE_REQUIRE(in.good(), "RLE: missing magic");
    RleImage img = [&] {
      if (std::equal(magic, magic + 4, kTextMagic)) return read_text(in);
      if (std::equal(magic, magic + 4, kBinaryMagic)) return read_binary(in);
      SYSRLE_REQUIRE(false, "RLE: unknown magic (expected SRLT or SRLB)");
      return RleImage(0, 0);  // unreachable
    }();
    if (telem) {
      MetricsRegistry& m = global_metrics();
      m.add("serialize.images_read");
      // tellg() is -1 on a stream whose eofbit is set; the byte count is
      // best-effort and simply skipped then.
      const std::streampos pos_after = in.tellg();
      if (pos_before >= std::streampos(0) && pos_after >= pos_before)
        m.add("serialize.bytes_in",
              static_cast<std::uint64_t>(pos_after - pos_before));
    }
    return img;
  } catch (const contract_error&) {
    // A malformed stream is rejected input, not a crash: count it so the
    // operator can see hostile/corrupt data arriving, then rethrow.
    if (telem) global_metrics().add("serialize.rejects");
    throw;
  }
}

void write_rle_file(const std::string& path, const RleImage& img,
                    RleFormat format) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(), "RLE: cannot open for write: " + path);
  write_rle(out, img, format);
}

RleImage read_rle_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SYSRLE_REQUIRE(in.is_open(), "RLE: cannot open: " + path);
  return read_rle(in);
}

std::string canonical_rle_bytes(const RleImage& img) {
  std::string bytes;
  // Header (4 + 24) plus run-count word per row; runs grow it as needed.
  bytes.reserve(28 + static_cast<std::size_t>(img.height()) * 8);
  emit_canonical(img, [&bytes](const char* data, std::size_t size) {
    bytes.append(data, size);
  });
  return bytes;
}

std::uint64_t fingerprint_bytes(const void* data, std::size_t size) {
  std::uint64_t h = kFnvOffset;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t canonical_fingerprint(const RleImage& img) {
  std::uint64_t h = kFnvOffset;
  emit_canonical(img, [&h](const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= kFnvPrime;
    }
  });
  return h;
}

}  // namespace sysrle
