#pragma once
// On-disk formats for RLE images, so compressed imagery can move between
// tools without ever being decompressed:
//   * a human-readable text format ("SRLT"), convenient for fixtures,
//   * a compact little-endian binary format ("SRLB"), for real data.
// Readers validate every row (ordering, overlap, width) and throw
// contract_error on malformed input.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "rle/rle_image.hpp"

namespace sysrle {

/// Serialization flavour.
enum class RleFormat {
  kText,    ///< "SRLT" — one row per line: count followed by start/len pairs
  kBinary,  ///< "SRLB" — little-endian 64-bit fields
};

/// Writes an RLE image to a stream.
void write_rle(std::ostream& out, const RleImage& img,
               RleFormat format = RleFormat::kBinary);

/// Reads an RLE image from a stream (format auto-detected from the magic).
RleImage read_rle(std::istream& in);

/// File variants.
void write_rle_file(const std::string& path, const RleImage& img,
                    RleFormat format = RleFormat::kBinary);
RleImage read_rle_file(const std::string& path);

/// Canonical serialized bytes: the SRLB encoding of `img` with every row
/// canonicalized (adjacent runs merged) first.  Two in-memory
/// representations of the same pixels — e.g. a run split as (0,2)(2,3)
/// versus the merged (0,5) — produce byte-identical output, so these bytes
/// are a stable content identity for the image store.
std::string canonical_rle_bytes(const RleImage& img);

/// 64-bit FNV-1a over an arbitrary byte range.
std::uint64_t fingerprint_bytes(const void* data, std::size_t size);

/// FNV-1a fingerprint of canonical_rle_bytes(img), computed by streaming the
/// same byte sequence through the hash without materializing the string.
/// Representation-independent: equal pixels always fingerprint equal.
std::uint64_t canonical_fingerprint(const RleImage& img);

}  // namespace sysrle
