#pragma once
// On-disk formats for RLE images, so compressed imagery can move between
// tools without ever being decompressed:
//   * a human-readable text format ("SRLT"), convenient for fixtures,
//   * a compact little-endian binary format ("SRLB"), for real data.
// Readers validate every row (ordering, overlap, width) and throw
// contract_error on malformed input.

#include <iosfwd>
#include <string>

#include "rle/rle_image.hpp"

namespace sysrle {

/// Serialization flavour.
enum class RleFormat {
  kText,    ///< "SRLT" — one row per line: count followed by start/len pairs
  kBinary,  ///< "SRLB" — little-endian 64-bit fields
};

/// Writes an RLE image to a stream.
void write_rle(std::ostream& out, const RleImage& img,
               RleFormat format = RleFormat::kBinary);

/// Reads an RLE image from a stream (format auto-detected from the magic).
RleImage read_rle(std::istream& in);

/// File variants.
void write_rle_file(const std::string& path, const RleImage& img,
                    RleFormat format = RleFormat::kBinary);
RleImage read_rle_file(const std::string& path);

}  // namespace sysrle
