#include "rle/transform.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/assert.hpp"

namespace sysrle {

RleRow shift_row(const RleRow& row, pos_t dx, pos_t width) {
  SYSRLE_REQUIRE(width >= 0, "shift_row: negative width");
  RleRow out;
  for (const Run& r : row) {
    const pos_t s = std::max<pos_t>(r.start + dx, 0);
    const pos_t e = std::min<pos_t>(r.end() + dx, width - 1);
    if (s <= e) out.push_back(Run::from_bounds(s, e));
  }
  return out;
}

RleRow crop_row(const RleRow& row, pos_t x0, pos_t w) {
  SYSRLE_REQUIRE(x0 >= 0 && w >= 0, "crop_row: invalid window");
  RleRow out;
  const pos_t x1 = x0 + w - 1;  // inclusive window end
  for (const Run& r : row) {
    if (r.end() < x0) continue;
    if (r.start > x1) break;
    out.push_back(Run::from_bounds(std::max(r.start, x0) - x0,
                                   std::min(r.end(), x1) - x0));
  }
  return out;
}

RleRow reflect_row(const RleRow& row, pos_t width) {
  SYSRLE_REQUIRE(row.fits_width(width), "reflect_row: row exceeds width");
  RleRow out;
  // Reflected runs come out in reverse order.
  for (std::size_t i = row.run_count(); i-- > 0;) {
    const Run& r = row[i];
    out.push_back(Run::from_bounds(width - 1 - r.end(), width - 1 - r.start));
  }
  return out;
}

RleRow concat_rows(const RleRow& left, pos_t left_width, const RleRow& right) {
  SYSRLE_REQUIRE(left.fits_width(left_width),
                 "concat_rows: left row exceeds its width");
  RleRow out = left;
  for (const Run& r : right)
    out.push_back(Run{r.start + left_width, r.length});
  return out;
}

RleImage crop_image(const RleImage& img, pos_t x0, pos_t y0, pos_t w,
                    pos_t h) {
  SYSRLE_REQUIRE(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0 &&
                     x0 + w <= img.width() && y0 + h <= img.height(),
                 "crop_image: window outside image");
  RleImage out(w, h);
  for (pos_t y = 0; y < h; ++y)
    out.set_row(y, crop_row(img.row(y0 + y), x0, w));
  return out;
}

RleImage reflect_image_horizontal(const RleImage& img) {
  RleImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y)
    out.set_row(y, reflect_row(img.row(y), img.width()));
  return out;
}

RleImage flip_image_vertical(const RleImage& img) {
  RleImage out(img.width(), img.height());
  for (pos_t y = 0; y < img.height(); ++y)
    out.set_row(y, img.row(img.height() - 1 - y));
  return out;
}

RleImage transpose_image(const RleImage& img) {
  // Sweep over input columns (= output rows).  The active set holds the
  // input row indices whose run covers the current column; it only changes
  // at run starts/ends, so output rows are rebuilt at event columns and
  // reused across unchanged spans.
  std::map<pos_t, std::vector<std::pair<pos_t, bool>>> events;  // col -> (y, start?)
  for (pos_t y = 0; y < img.height(); ++y) {
    for (const Run& r : img.row(y)) {
      events[r.start].emplace_back(y, true);
      events[r.end() + 1].emplace_back(y, false);
    }
  }

  RleImage out(img.height(), img.width());
  std::set<pos_t> active;
  auto it = events.begin();
  pos_t x = 0;
  while (x < img.width()) {
    if (it != events.end() && it->first == x) {
      for (const auto& [y, is_start] : it->second) {
        if (is_start) {
          active.insert(y);
        } else {
          active.erase(y);
        }
      }
      ++it;
    }
    // The active set is constant until the next event column.
    const pos_t next_event = it == events.end() ? img.width() : it->first;
    const pos_t span_end = std::min(next_event, img.width());

    // Build the output row once from consecutive active y values.
    RleRow out_row;
    auto a = active.begin();
    while (a != active.end()) {
      const pos_t run_start = *a;
      pos_t run_end = run_start;
      ++a;
      while (a != active.end() && *a == run_end + 1) {
        run_end = *a;
        ++a;
      }
      out_row.push_back(Run::from_bounds(run_start, run_end));
    }
    for (pos_t col = x; col < span_end; ++col) out.set_row(col, out_row);
    x = span_end;
  }
  return out;
}

}  // namespace sysrle
