#pragma once
// Geometric transforms performed directly on RLE data — the supporting cast
// of a compressed-domain imaging pipeline: shifting (scan alignment),
// cropping (regions of interest), reflection (film/scan orientation), and
// concatenation (stitching line-camera swaths).  All are O(runs), never
// O(pixels).

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Shifts a row horizontally by dx (positive = right), clipping to
/// [0, width).  O(k).
RleRow shift_row(const RleRow& row, pos_t dx, pos_t width);

/// Extracts [x0, x0+w) re-based to start at 0.  Requires a valid window
/// (x0 >= 0, w >= 0).  O(k).
RleRow crop_row(const RleRow& row, pos_t x0, pos_t w);

/// Mirrors a row within [0, width): pixel x maps to width-1-x.  O(k).
RleRow reflect_row(const RleRow& row, pos_t width);

/// Appends `right` after a row of width `left_width`: positions of `right`
/// are offset by left_width.  O(k).
RleRow concat_rows(const RleRow& left, pos_t left_width, const RleRow& right);

/// Whole-image versions (row-wise application).
RleImage crop_image(const RleImage& img, pos_t x0, pos_t y0, pos_t w, pos_t h);
RleImage reflect_image_horizontal(const RleImage& img);
/// Flips the image vertically (row order reversed).
RleImage flip_image_vertical(const RleImage& img);
/// Transposes the image: output pixel (x, y) = input pixel (y, x).
/// Works entirely on run boundaries (never materialises a bitmap): output
/// rows are regenerated only at columns where some input run starts or ends
/// and copied across unchanged spans, costing O(event-columns x active-rows)
/// in the worst case and far less on typical imagery.
RleImage transpose_image(const RleImage& img);

}  // namespace sysrle
