#include "rle/validate.hpp"

#include <sstream>

namespace sysrle {

std::string to_string(RowIssue issue) {
  switch (issue) {
    case RowIssue::kNonPositiveLength:
      return "non-positive length";
    case RowIssue::kNegativeStart:
      return "negative start";
    case RowIssue::kOutOfOrder:
      return "out of order";
    case RowIssue::kOverlap:
      return "overlap";
    case RowIssue::kExceedsWidth:
      return "exceeds width";
    case RowIssue::kNotCanonical:
      return "not canonical (adjacent runs)";
  }
  return "unknown";
}

std::string RowValidationReport::to_string() const {
  if (findings.empty()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i) os << '\n';
    os << "run #" << findings[i].run_index << ": "
       << sysrle::to_string(findings[i].issue);
  }
  return os.str();
}

RowValidationReport validate_runs(std::span<const Run> runs,
                                  const ValidateOptions& opts) {
  RowValidationReport report;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    if (r.length < 1)
      report.findings.push_back({RowIssue::kNonPositiveLength, i});
    if (r.start < 0) report.findings.push_back({RowIssue::kNegativeStart, i});
    if (opts.width >= 0 && r.length >= 1 && r.end() >= opts.width)
      report.findings.push_back({RowIssue::kExceedsWidth, i});
    if (i > 0 && r.length >= 1 && runs[i - 1].length >= 1) {
      const Run& prev = runs[i - 1];
      if (r.start <= prev.start) {
        report.findings.push_back({RowIssue::kOutOfOrder, i});
      } else if (prev.end() >= r.start) {
        report.findings.push_back({RowIssue::kOverlap, i});
      } else if (opts.require_canonical && prev.end() + 1 == r.start) {
        report.findings.push_back({RowIssue::kNotCanonical, i});
      }
    }
  }
  return report;
}

}  // namespace sysrle
