#pragma once
// Validation of untrusted run sequences (file input, hand-written fixtures,
// simulator output) before they are wrapped in RleRow.  RleRow itself
// enforces the core invariants on construction; this module produces a
// detailed report instead of throwing on first failure.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "rle/run.hpp"

namespace sysrle {

/// A specific defect found in a run sequence.
enum class RowIssue {
  kNonPositiveLength,  ///< run length < 1
  kNegativeStart,      ///< run start < 0
  kOutOfOrder,         ///< start does not strictly increase
  kOverlap,            ///< run overlaps the previous run
  kExceedsWidth,       ///< run extends past width-1
  kNotCanonical,       ///< run is adjacent to the previous run
};

/// Human-readable name of an issue kind.
std::string to_string(RowIssue issue);

/// One finding: which issue at which run index.
struct RowFinding {
  RowIssue issue;
  std::size_t run_index;
};

/// Result of validating a run sequence.
struct RowValidationReport {
  std::vector<RowFinding> findings;

  bool ok() const { return findings.empty(); }

  /// Multi-line summary, one finding per line; "ok" if clean.
  std::string to_string() const;
};

/// Options for validate_runs.
struct ValidateOptions {
  /// When >= 0, runs must fit within [0, width).
  pos_t width = -1;
  /// When true, adjacent runs are reported as kNotCanonical.
  bool require_canonical = false;
};

/// Checks a raw run sequence against the RleRow invariants (and optionally
/// width / canonicality) and reports every violation.
RowValidationReport validate_runs(std::span<const Run> runs,
                                  const ValidateOptions& opts = {});

}  // namespace sysrle
