#include "service/admission_queue.hpp"

#include <utility>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kDeadlineExpired:
      return "deadline_expired";
    case RejectReason::kCircuitOpen:
      return "circuit_open";
    case RejectReason::kShutdown:
      return "shutdown";
    case RejectReason::kCancelled:
      return "cancelled";
    case RejectReason::kShardDown:
      return "shard_down";
    case RejectReason::kUnknownHandle:
      return "unknown_handle";
  }
  return "unknown";
}

const char* to_string(ServiceResponse::Status status) {
  switch (status) {
    case ServiceResponse::Status::kCompleted:
      return "completed";
    case ServiceResponse::Status::kRejected:
      return "rejected";
    case ServiceResponse::Status::kFailed:
      return "failed";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(AdmissionConfig config, std::uint64_t seed)
    : config_(config), shed_rng_(seed) {
  SYSRLE_REQUIRE(config_.interactive_capacity >= 1 &&
                     config_.batch_capacity >= 1,
                 "AdmissionQueue: capacities must be >= 1");
  SYSRLE_REQUIRE(config_.batch_shed_threshold >= 0.0 &&
                     config_.batch_shed_threshold <= 1.0,
                 "AdmissionQueue: batch_shed_threshold must be in [0, 1]");
}

void AdmissionQueue::publish_depth_locked() const {
  if (!telemetry_enabled()) return;
  // Aggregate plus per-class depth: hot-shard skew shows up as one class
  // backing up while the other stays shallow, which the aggregate hides.
  MetricsRegistry& m = global_metrics();
  m.set_gauge("service.queue_depth",
              static_cast<double>(interactive_.size() + batch_.size()));
  m.set_gauge("service.queue_depth.interactive",
              static_cast<double>(interactive_.size()));
  m.set_gauge("service.queue_depth.batch",
              static_cast<double>(batch_.size()));
}

std::optional<RejectReason> AdmissionQueue::try_push(ServiceRequest request) {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return RejectReason::kShutdown;

  std::deque<Item>& q =
      request.priority == Priority::kInteractive ? interactive_ : batch_;
  const std::size_t cap = request.priority == Priority::kInteractive
                              ? config_.interactive_capacity
                              : config_.batch_capacity;
  if (q.size() >= cap) return RejectReason::kQueueFull;
  if (request.priority == Priority::kBatch &&
      config_.batch_shed_threshold < 1.0) {
    const double fill =
        static_cast<double>(q.size()) / static_cast<double>(cap);
    if (fill > config_.batch_shed_threshold) {
      const double p = (fill - config_.batch_shed_threshold) /
                       (1.0 - config_.batch_shed_threshold);
      if (shed_rng_.bernoulli(p)) return RejectReason::kQueueFull;
    }
  }

  q.push_back({std::move(request), std::chrono::steady_clock::now()});
  publish_depth_locked();
  cv_.notify_one();
  return std::nullopt;
}

std::optional<AdmissionQueue::Item> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] {
    return closed_ || !interactive_.empty() || !batch_.empty();
  });
  std::deque<Item>* q = nullptr;
  if (!interactive_.empty())
    q = &interactive_;
  else if (!batch_.empty())
    q = &batch_;
  if (q == nullptr) return std::nullopt;  // closed and drained
  Item item = std::move(q->front());
  q->pop_front();
  publish_depth_locked();
  return item;
}

void AdmissionQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return interactive_.size() + batch_.size();
}

}  // namespace sysrle
