#pragma once
// Bounded two-class admission queue: the front door of the serving layer.
//
// Overload protection starts here.  Each priority class has a hard
// capacity; a request that does not fit is refused *now*, with a typed
// reason, instead of growing an unbounded backlog that turns every later
// request into a deadline miss (the classic collapse mode).  Batch work can
// additionally be shed early with a probability that ramps up as its queue
// fills (random early drop), so interactive work keeps headroom — the shed
// coin is a seeded deterministic Rng (docs/TESTING.md).
//
// Pop order: interactive strictly before batch, FIFO within a class.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "service/types.hpp"
#include "workload/rng.hpp"

namespace sysrle {

/// Queue shape and early-shed policy.
struct AdmissionConfig {
  std::size_t interactive_capacity = 64;
  std::size_t batch_capacity = 64;

  /// Batch fill fraction above which arrivals are shed probabilistically
  /// (linearly from 0 at the threshold to 1 at full).  1.0 disables early
  /// shedding — only a full queue refuses.
  double batch_shed_threshold = 1.0;
};

/// Thread-safe bounded queue with typed refusal.
class AdmissionQueue {
 public:
  /// A queued request plus its admission timestamp (for queue-wait
  /// accounting).
  struct Item {
    ServiceRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// `seed` drives the early-shed coin; equal seeds give equal shed
  /// decisions for equal push sequences.
  AdmissionQueue(AdmissionConfig config, std::uint64_t seed);

  /// Admits or refuses immediately (never blocks).  Returns std::nullopt on
  /// success, the typed reason otherwise.  Publishes
  /// "service.queue_depth" when telemetry is enabled.
  std::optional<RejectReason> try_push(ServiceRequest request);

  /// Blocks for the next item (interactive first).  Returns std::nullopt
  /// once the queue is closed *and* empty — the drain contract: queued work
  /// is finished, nothing new is admitted.
  std::optional<Item> pop();

  /// Closes the queue: try_push refuses with kShutdown, pop drains what is
  /// left.  Idempotent.
  void close();

  bool closed() const;
  std::size_t depth() const;

 private:
  void publish_depth_locked() const;

  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> interactive_;
  std::deque<Item> batch_;
  Rng shed_rng_;
  bool closed_ = false;
};

}  // namespace sysrle
