#include "service/coalescer.hpp"

#include "common/assert.hpp"

namespace sysrle {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t image_fingerprint(const RleImage& image) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, static_cast<std::uint64_t>(image.width()));
  h = fnv1a(h, static_cast<std::uint64_t>(image.height()));
  for (const RleRow& row : image.rows()) {
    h = fnv1a(h, static_cast<std::uint64_t>(row.runs().size()));
    for (const Run& r : row.runs()) {
      h = fnv1a(h, static_cast<std::uint64_t>(r.start));
      h = fnv1a(h, static_cast<std::uint64_t>(r.length));
    }
  }
  return h;
}

CoalesceKey coalesce_key(const RleImage& a, const RleImage& b,
                         const ImageDiffOptions& options) {
  CoalesceKey key;
  key.fp_a = image_fingerprint(a);
  key.fp_b = image_fingerprint(b);
  key.engine = options.engine;
  key.canonicalize = options.canonicalize_output;
  return key;
}

Coalescer::AdmitResult Coalescer::admit(const CoalesceKey& key,
                                        const RleImage& a, const RleImage& b,
                                        std::uint64_t call_id) {
  auto it = inflight_.find(key);
  if (it == inflight_.end()) {
    Entry e;
    e.owner = call_id;
    e.a = a;
    e.b = b;
    inflight_.emplace(key, std::move(e));
    return {.primary = true, .owner = call_id, .collision = false};
  }
  if (it->second.a != a || it->second.b != b) {
    // Same 128-bit fingerprint, different images: run it uncoalesced rather
    // than ever serving another pair's diff.
    ++collisions_;
    return {.primary = true, .owner = call_id, .collision = true};
  }
  return {.primary = false, .owner = it->second.owner, .collision = false};
}

void Coalescer::reassign(const CoalesceKey& key, std::uint64_t call_id) {
  auto it = inflight_.find(key);
  SYSRLE_REQUIRE(it != inflight_.end(),
                 "Coalescer::reassign: key is not in flight");
  it->second.owner = call_id;
}

void Coalescer::finish(const CoalesceKey& key) { inflight_.erase(key); }

}  // namespace sysrle
