#pragma once
// In-flight diff coalescing: two users diffing the same image pair get one
// computation.
//
// The golden-panel workload makes duplicates the common case, not a corner:
// every scan on an inspection line diffs against the same reference, and a
// re-review storm (operators re-opening the same defect) submits the exact
// same (reference, scan) pair many times in a burst.  The coalescer keys
// in-flight work by (image-a fingerprint, image-b fingerprint, engine
// options); a duplicate arriving while the first copy is still running
// attaches as a *waiter* on the primary instead of consuming a second
// engine slot.  When the primary completes, the router fans its response
// out to every waiter; when the primary fails, the failure propagates
// *typed* (waiters see the same kFailed / shard_down outcome, never a
// silent drop); when the primary's deadline expires while waiters with
// live deadlines remain, the router promotes a waiter to primary and
// re-dispatches (see ShardRouter).
//
// Fingerprints are 64-bit content hashes, so the coalescer verifies actual
// image equality on every match: a fingerprint collision degrades to "no
// coalescing" (both requests run), never to "wrong answer".
//
// Not thread-safe on its own — the ShardRouter serialises access under its
// routing lock; the standalone unit keeps the matching/collision logic
// independently testable.

#include <cstdint>
#include <unordered_map>

#include "core/image_diff.hpp"
#include "rle/rle_image.hpp"

namespace sysrle {

/// 64-bit FNV-1a content fingerprint of an RLE image (width, height, and
/// every run).  Equal images always hash equal; unequal images collide with
/// probability ~2^-64 — and a collision is caught by the equality check in
/// Coalescer::admit, never served.
std::uint64_t image_fingerprint(const RleImage& image);

/// Identity of one diff computation: same key + equal images = same output
/// (the engines are bit-identical across thread counts, so `threads` is
/// deliberately not part of the key).
struct CoalesceKey {
  std::uint64_t fp_a = 0;
  std::uint64_t fp_b = 0;
  DiffEngine engine = DiffEngine::kSystolic;
  bool canonicalize = true;

  friend bool operator==(const CoalesceKey&, const CoalesceKey&) = default;
};

/// Builds the key for a diff of `a` against `b` under `options`.
CoalesceKey coalesce_key(const RleImage& a, const RleImage& b,
                         const ImageDiffOptions& options);

struct CoalesceKeyHash {
  std::size_t operator()(const CoalesceKey& k) const {
    std::uint64_t h = k.fp_a * 0x9e3779b97f4a7c15ull;
    h ^= k.fp_b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= (static_cast<std::uint64_t>(k.engine) << 1) ^
         (k.canonicalize ? 0x2545f4914f6cdd1dull : 0);
    return static_cast<std::size_t>(h);
  }
};

/// Tracks which computations are in flight and who owns each.
class Coalescer {
 public:
  struct AdmitResult {
    /// True: the key was not in flight (or collided) — the caller owns the
    /// computation and must dispatch it.  False: attach as waiter on owner.
    bool primary = true;
    /// Valid when !primary: the call id registered by the current owner.
    std::uint64_t owner = 0;
    /// True when a fingerprint match was rejected by the image equality
    /// check (the caller dispatched a duplicate-keyed but distinct diff).
    bool collision = false;
  };

  /// Registers `call_id` as owner of `key`, or reports the existing owner.
  /// `a`/`b` defeat fingerprint collisions: a key match whose images differ
  /// returns primary=true, collision=true, and is NOT registered (the
  /// colliding computation runs uncoalesced and unregistered).
  AdmitResult admit(const CoalesceKey& key, const RleImage& a,
                    const RleImage& b, std::uint64_t call_id);

  /// Hands ownership of `key` to `call_id` (waiter promotion after the
  /// primary's deadline expired): later duplicates attach to the new owner.
  void reassign(const CoalesceKey& key, std::uint64_t call_id);

  /// Removes `key` from the in-flight set (the owner delivered or shed).
  void finish(const CoalesceKey& key);

  std::size_t inflight() const { return inflight_.size(); }
  std::uint64_t collisions() const { return collisions_; }

 private:
  struct Entry {
    std::uint64_t owner = 0;
    // Owned copies: the owner's request may be moved/destroyed while later
    // duplicates still need the equality check.
    RleImage a{0, 0};
    RleImage b{0, 0};
  };

  std::unordered_map<CoalesceKey, Entry, CoalesceKeyHash> inflight_;
  std::uint64_t collisions_ = 0;
};

}  // namespace sysrle
