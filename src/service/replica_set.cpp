#include "service/replica_set.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace sysrle {

namespace {

/// SplitMix64 finalizer: the rendezvous weight of (key, salt).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ReplicaSet::ReplicaSet(std::size_t shard_index, const ReplicaSetConfig& config,
                       const CompletionFactory& completion_for)
    : shard_index_(shard_index),
      config_(config),
      completion_for_(completion_for) {
  SYSRLE_REQUIRE(config.replicas >= 1,
                 "ReplicaSet: need at least one replica");
  replicas_.reserve(config.replicas);
  for (std::size_t r = 0; r < config.replicas; ++r) {
    auto rep = std::make_unique<Replica>(
        config.breaker, "shard" + std::to_string(shard_index) + ".replica" +
                            std::to_string(r));
    rep->salt = mix64(shard_index * 0x1000 + r + 0x5eed);
    ServiceConfig svc = config.service;
    // Distinct per-replica seeds keep jitter/shed streams independent.
    svc.seed = svc.seed ^ mix64(rep->salt);
    rep->service = std::make_shared<DiffService>(svc, completion_for_(r));
    replicas_.push_back(std::move(rep));
  }
}

std::vector<std::size_t> ReplicaSet::preference(std::uint64_t key) const {
  std::vector<std::pair<std::uint64_t, std::size_t>> weighted;
  weighted.reserve(replicas_.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t r = 0; r < replicas_.size(); ++r)
      weighted.emplace_back(mix64(key ^ replicas_[r]->salt), r);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> order;
  order.reserve(weighted.size());
  for (const auto& [w, r] : weighted) order.push_back(r);
  return order;
}

std::optional<std::size_t> ReplicaSet::pick(std::uint64_t key,
                                            std::uint64_t now,
                                            std::size_t exclude) {
  const std::vector<std::size_t> order = preference(key);
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t r : order) {
    if (r == exclude) continue;
    if (replicas_[r]->breaker.allow(now)) return r;
  }
  return std::nullopt;
}

std::shared_ptr<DiffService> ReplicaSet::replica(std::size_t index) const {
  std::lock_guard<std::mutex> lk(mu_);
  return replicas_.at(index)->service;
}

void ReplicaSet::record_success(std::size_t index, std::uint64_t now) {
  std::lock_guard<std::mutex> lk(mu_);
  replicas_.at(index)->breaker.record_success(now);
}

BreakerState ReplicaSet::record_failure(std::size_t index,
                                        std::uint64_t now) {
  std::lock_guard<std::mutex> lk(mu_);
  CircuitBreaker& breaker = replicas_.at(index)->breaker;
  breaker.record_failure(now);
  return breaker.state();
}

void ReplicaSet::release_probe(std::size_t index) {
  std::lock_guard<std::mutex> lk(mu_);
  replicas_.at(index)->breaker.release_probe();
}

BreakerState ReplicaSet::breaker_state(std::size_t index) const {
  std::lock_guard<std::mutex> lk(mu_);
  return replicas_.at(index)->breaker.state();
}

bool ReplicaSet::all_quarantined(std::uint64_t now) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& rep : replicas_) {
    const BreakerState s = rep->breaker.state();
    if (s == BreakerState::kClosed || s == BreakerState::kHalfOpen) return false;
    // Open but the window elapsed: a pick() would admit a probe.
    if (now >= rep->breaker.reopen_at()) return false;
  }
  return true;
}

void ReplicaSet::kill(std::size_t index) {
  std::shared_ptr<DiffService> service;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Replica& rep = *replicas_.at(index);
    rep.killed = true;
    service = rep.service;
  }
  // Drain outside the lock: it blocks on in-flight responses, and those
  // responses re-enter the router (which calls back into this set).
  service->drain();
}

void ReplicaSet::revive(std::size_t index) {
  ServiceConfig svc = config_.service;
  std::shared_ptr<DiffService> replacement;
  {
    std::lock_guard<std::mutex> lk(mu_);
    svc.seed = svc.seed ^ mix64(replicas_.at(index)->salt);
  }
  replacement = std::make_shared<DiffService>(svc, completion_for_(index));
  std::shared_ptr<DiffService> old;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Replica& rep = *replicas_.at(index);
    old = std::exchange(rep.service, std::move(replacement));
    rep.killed = false;
  }
  old->drain();
}

bool ReplicaSet::killed(std::size_t index) const {
  std::lock_guard<std::mutex> lk(mu_);
  return replicas_.at(index)->killed;
}

void ReplicaSet::drain() {
  std::vector<std::shared_ptr<DiffService>> services;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& rep : replicas_) services.push_back(rep->service);
  }
  for (const auto& s : services) s->drain();
}

ServiceStats ReplicaSet::aggregate_stats() const {
  std::vector<std::shared_ptr<DiffService>> services;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& rep : replicas_) services.push_back(rep->service);
  }
  ServiceStats total;
  for (const auto& svc : services) {
    const ServiceStats s = svc->stats();
    total.offered += s.offered;
    total.admitted += s.admitted;
    total.completed += s.completed;
    total.failed += s.failed;
    total.shed_queue_full += s.shed_queue_full;
    total.shed_circuit_open += s.shed_circuit_open;
    total.shed_shutdown += s.shed_shutdown;
    total.shed_deadline_at_submit += s.shed_deadline_at_submit;
    total.shed_deadline_after_admit += s.shed_deadline_after_admit;
    total.cancelled += s.cancelled;
    total.deadline_misses += s.deadline_misses;
    total.retries += s.retries;
    total.engine_invocations += s.engine_invocations;
    total.retry_budget_exhausted += s.retry_budget_exhausted;
    total.fallback_rows += s.fallback_rows;
    total.unrecovered_rows += s.unrecovered_rows;
  }
  return total;
}

}  // namespace sysrle
