#pragma once
// One shard's replica group: R identical DiffService backends behind
// router-level per-replica circuit breakers.
//
// The paper's array tolerates a dead cell because work is spread over many
// identical units; this is the same property one level up.  Each replica is
// an independent DiffService (own queue, own workers, own service breaker);
// the ReplicaSet adds what the router needs to survive a replica dying:
//
//   preference   rendezvous hashing (highest-random-weight) orders replicas
//                per key, so one key always prefers the same replica while a
//                dead replica's keys spread *evenly* over the survivors
//                instead of piling onto one neighbour;
//   quarantine   a router-level breaker per replica trips after consecutive
//                sheds/failures, removing the replica from every key's
//                preference order until a half-open probe succeeds
//                (probe re-admission) — "keeps shedding" is a health signal
//                here even though each shed was a correct local decision;
//   kill/revive  bench and test hook: kill() drains the replica in place
//                (it refuses everything with kShutdown, exactly like a
//                crashed process whose connections reset), revive() installs
//                a fresh DiffService so probes can succeed again.
//
// Thread-safety: pick/record/breaker methods are locked internally;
// DiffService handles its own concurrency.  Callers must pair every
// successful pick() with exactly one record_success / record_failure /
// release_probe for that replica (the breaker half-open slot contract).

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/circuit_breaker.hpp"
#include "service/service.hpp"

namespace sysrle {

struct ReplicaSetConfig {
  std::size_t replicas = 2;
  /// Per-replica DiffService shape (queue caps, workers, seed...).
  ServiceConfig service;
  /// Router-level breaker tripped by consecutive sheds/failures; clocked in
  /// microseconds of router uptime.
  BreakerPolicy breaker{.failure_threshold = 3,
                        .open_duration = 50000,
                        .probe_successes_to_close = 1};
};

/// R replicas of one shard.
class ReplicaSet {
 public:
  /// `completion_for(r)` builds the response callback wired into replica
  /// `r`'s DiffService (the router tags responses with their origin this
  /// way).  `shard_index` seeds per-replica hashing salts and breaker
  /// metric names ("shard<S>.replica<R>").
  using CompletionFactory =
      std::function<DiffService::Completion(std::size_t replica)>;

  ReplicaSet(std::size_t shard_index, const ReplicaSetConfig& config,
             const CompletionFactory& completion_for);

  std::size_t size() const { return replicas_.size(); }

  /// Replica indices in preference order for `key` (rendezvous hashing,
  /// deterministic per key). Ignores health — pick() applies the breakers.
  std::vector<std::size_t> preference(std::uint64_t key) const;

  /// First replica in `key`'s preference order whose breaker admits work at
  /// `now`, skipping `exclude` (SIZE_MAX = exclude none; hedges exclude the
  /// primary's replica).  Consumes a half-open probe slot when the chosen
  /// breaker is probing — pair with record_*/release_probe.  nullopt: every
  /// (non-excluded) replica is quarantined — the shard is down.
  std::optional<std::size_t> pick(std::uint64_t key, std::uint64_t now,
                                  std::size_t exclude = SIZE_MAX);

  /// The backend for submissions.  The returned pointer stays valid across
  /// kill/revive (callers hold the shared_ptr).
  std::shared_ptr<DiffService> replica(std::size_t index) const;

  void record_success(std::size_t index, std::uint64_t now);
  /// Returns the breaker's state *after* the failure, so the caller can
  /// observe the closed->open transition (flight-recorder breaker_trip).
  BreakerState record_failure(std::size_t index, std::uint64_t now);
  void release_probe(std::size_t index);

  BreakerState breaker_state(std::size_t index) const;

  /// True when every replica's breaker refuses work at `now` (degraded
  /// mode: batch sheds shard_down, interactive fails over cross-shard).
  /// Read-only: consumes no probe slots.
  bool all_quarantined(std::uint64_t now) const;

  /// Drains the replica in place: every later submission to it sheds with
  /// kShutdown (the router's breaker then quarantines it).  In-flight and
  /// queued work still completes — a kill is never a silent drop.
  void kill(std::size_t index);
  /// Installs a fresh DiffService so the next half-open probe can succeed.
  void revive(std::size_t index);
  bool killed(std::size_t index) const;

  /// Drains every replica (waits for all in-flight responses).
  void drain();

  /// Sums replica-level ServiceStats across the set.
  ServiceStats aggregate_stats() const;

 private:
  struct Replica {
    std::shared_ptr<DiffService> service;
    CircuitBreaker breaker;
    std::uint64_t salt = 0;  ///< rendezvous weight salt
    bool killed = false;

    Replica(BreakerPolicy policy, std::string name)
        : breaker(policy, std::move(name)) {}
  };

  std::size_t shard_index_;
  ReplicaSetConfig config_;
  CompletionFactory completion_for_;
  mutable std::mutex mu_;  ///< guards breakers + service pointers
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace sysrle
