#include "service/retry_budget.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

RetryBudget::RetryBudget(RetryBudgetConfig config,
                         std::string exhausted_metric)
    : config_(config),
      exhausted_metric_(std::move(exhausted_metric)),
      tokens_value_(config.initial_tokens) {
  SYSRLE_REQUIRE(config_.max_tokens >= 0.0 && config_.initial_tokens >= 0.0,
                 "RetryBudget: token counts must be >= 0");
  SYSRLE_REQUIRE(config_.cost_per_retry > 0.0,
                 "RetryBudget: cost_per_retry must be > 0");
  tokens_value_ = std::min(tokens_value_, config_.max_tokens);
}

bool RetryBudget::try_spend() {
  std::lock_guard<std::mutex> lk(mu_);
  if (tokens_value_ + 1e-9 < config_.cost_per_retry) {
    ++exhausted_;
    if (telemetry_enabled()) global_metrics().add(exhausted_metric_);
    return false;
  }
  tokens_value_ -= config_.cost_per_retry;
  return true;
}

void RetryBudget::record_success() {
  std::lock_guard<std::mutex> lk(mu_);
  tokens_value_ =
      std::min(config_.max_tokens, tokens_value_ + config_.tokens_per_success);
}

void RetryBudget::refund() {
  std::lock_guard<std::mutex> lk(mu_);
  tokens_value_ =
      std::min(config_.max_tokens, tokens_value_ + config_.cost_per_retry);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tokens_value_;
}

std::uint64_t RetryBudget::exhausted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return exhausted_;
}

std::uint64_t backoff_delay_us(const BackoffPolicy& policy, int retry_index,
                               Rng& rng) {
  SYSRLE_REQUIRE(retry_index >= 0, "backoff_delay_us: negative retry index");
  SYSRLE_REQUIRE(policy.jitter >= 0.0 && policy.jitter <= 1.0,
                 "backoff_delay_us: jitter must be in [0, 1]");
  double delay = static_cast<double>(policy.base_us) *
                 std::pow(policy.multiplier, retry_index);
  delay = std::min(delay, static_cast<double>(policy.cap_us));
  const double scale = 1.0 - policy.jitter + policy.jitter * rng.uniform01();
  return static_cast<std::uint64_t>(delay * scale);
}

}  // namespace sysrle
