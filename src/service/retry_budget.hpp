#pragma once
// Token-bucket retry budget and jittered exponential backoff.
//
// checked_diff retries a faulty row a fixed N times — right for one machine,
// wrong for a fleet under overload: if 10% of rows start failing, blind
// retries multiply offered load exactly when there is no headroom (the
// retry-storm amplification every large service learns the hard way).  The
// budget makes retries a shared, earned resource: completed work earns
// fractional tokens, each retry spends one, and when the bucket is empty the
// checked engine goes straight to its sequential fallback.  Backoff delays
// are exponential with deterministic seeded jitter (workload/rng), so two
// runs with the same seed are byte-identical — the reproducibility rule of
// docs/TESTING.md.

#include <cstdint>
#include <mutex>
#include <string>

#include "workload/rng.hpp"

namespace sysrle {

/// Bucket shape.  Defaults allow short failure bursts (8 retries) and a
/// sustained retry rate of 10% of successful work.
struct RetryBudgetConfig {
  double initial_tokens = 8.0;
  double max_tokens = 8.0;
  /// Earned per recorded success; 0.1 = "retries may be 10% of successes".
  double tokens_per_success = 0.1;
  double cost_per_retry = 1.0;
};

/// Thread-safe token bucket shared by every request of a service.  Also
/// reused as the shard router's hedge budget — same economics, different
/// spender (a fired hedge instead of a retry).
class RetryBudget {
 public:
  /// `exhausted_metric` is the counter bumped on a denied try_spend;
  /// the service uses the default, the router's hedge budget publishes
  /// "router.hedge_budget_exhausted_total" instead.
  explicit RetryBudget(
      RetryBudgetConfig config = {},
      std::string exhausted_metric = "service.retry_budget_exhausted_total");

  /// Spends one retry's worth of tokens; false (and counts the exhaustion,
  /// publishing "service.retry_budget_exhausted_total") when the bucket
  /// cannot cover it.
  bool try_spend();

  /// Earns tokens_per_success, capped at max_tokens.
  void record_success();

  /// Returns one retry's worth of tokens (capped at max_tokens) when a
  /// spent retry was never taken — e.g. the request's deadline expired
  /// during the backoff sleep.  Does not undo the exhausted count.
  void refund();

  double tokens() const;
  std::uint64_t exhausted() const;  ///< denied try_spend calls so far

 private:
  RetryBudgetConfig config_;
  std::string exhausted_metric_;
  mutable std::mutex mu_;
  double tokens_value_;
  std::uint64_t exhausted_ = 0;
};

/// Exponential backoff shape: delay(i) = min(base * multiplier^i, cap),
/// then jittered to delay * (1 - jitter + jitter * u) with u ~ U[0,1) drawn
/// from a caller-owned seeded Rng.
struct BackoffPolicy {
  std::uint64_t base_us = 100;
  double multiplier = 2.0;
  std::uint64_t cap_us = 20000;
  /// Fraction of the delay that is randomized (0 = none, 1 = full jitter).
  double jitter = 0.5;
};

/// Delay before retry number `retry_index` (0-based).  Deterministic given
/// the Rng state; callers give each request its own split() Rng so the
/// jitter stream does not depend on thread interleaving.
std::uint64_t backoff_delay_us(const BackoffPolicy& policy, int retry_index,
                               Rng& rng);

}  // namespace sysrle
