#include "service/service.hpp"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include <optional>

#include "common/assert.hpp"
#include "core/row_executor.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/request_context.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

/// Counts a shed decision into the typed-shed metric family.
void count_shed(RejectReason reason) {
  if (!telemetry_enabled()) return;
  global_metrics().add(std::string("service.shed_total.") + to_string(reason));
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Per-row retry gate: a retry is allowed only while the request deadline
/// holds AND the shared bucket has tokens; an allowed retry first sleeps
/// its jittered exponential backoff.  Fresh per row, so the backoff ladder
/// restarts for every row's independent retry sequence.
class BudgetedRetryGate : public RetryGate {
 public:
  BudgetedRetryGate(RetryBudget& budget, const Deadline& deadline,
                    const BackoffPolicy& backoff, Rng& jitter_rng,
                    std::atomic<std::uint64_t>& retries_taken)
      : budget_(budget),
        deadline_(deadline),
        backoff_(backoff),
        jitter_rng_(jitter_rng),
        retries_taken_(retries_taken) {}

  bool allow_retry() override {
    if (deadline_.expired()) return false;
    if (!budget_.try_spend()) return false;
    // Always draw the delay so the jitter stream stays deterministic
    // regardless of how the deadline interleaves.
    const std::uint64_t delay = backoff_delay_us(backoff_, attempt_++,
                                                 jitter_rng_);
    if (const auto remaining = deadline_.remaining_us();
        remaining && delay >= *remaining) {
      // The required backoff outlasts the deadline: the retry cannot run,
      // so return the token instead of blocking a worker sleeping toward
      // an expiry.
      budget_.refund();
      return false;
    }
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    if (deadline_.expired()) {
      budget_.refund();
      return false;
    }
    retries_taken_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  RetryBudget& budget_;
  const Deadline& deadline_;
  const BackoffPolicy& backoff_;
  Rng& jitter_rng_;
  std::atomic<std::uint64_t>& retries_taken_;
  int attempt_ = 0;
};

}  // namespace

DiffService::DiffService(ServiceConfig config, Completion on_complete)
    : config_(config),
      on_complete_(std::move(on_complete)),
      queue_(config.admission, config.seed),
      budget_(config.retry_budget),
      epoch_(std::chrono::steady_clock::now()),
      breaker_(config.breaker, "service") {
  // Worker sizing shares the row executor's resolution rule: 0 = auto
  // (hardware_concurrency, never 0), explicit counts honoured and capped.
  config_.workers = RowExecutor::resolve_threads(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

DiffService::~DiffService() { drain(); }

std::uint64_t DiffService::now_us() const {
  return static_cast<std::uint64_t>(us_between(
      epoch_, std::chrono::steady_clock::now()));
}

std::optional<RejectReason> DiffService::try_submit(ServiceRequest request) {
  SYSRLE_REQUIRE(request.ref_image().width() == request.scan_image().width() &&
                     request.ref_image().height() ==
                         request.scan_image().height(),
                 "DiffService: request image dimensions differ");
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_enabled()) global_metrics().add("service.requests_offered");

  // Standalone submissions self-stamp an unrouted context; the shard router
  // pre-stamps routed ones (client id + attempt + shard/replica).
  if (!request.ctx.active) {
    request.ctx.active = true;
    request.ctx.request_id = request.id;
  }
  // Copy before the queue push can move the request away.
  const RequestContext ctx = request.ctx;
  const Priority priority = request.priority;

  auto shed = [&](RejectReason reason,
                  std::atomic<std::uint64_t>& counter) -> RejectReason {
    counter.fetch_add(1, std::memory_order_relaxed);
    count_shed(reason);
    flight_record(FlightEventKind::kShed, ctx, to_string(reason));
    flight_retain(ctx.request_id, "shed");
    return reason;
  };

  if (draining_.load(std::memory_order_acquire))
    return shed(RejectReason::kShutdown, shed_shutdown_);
  if (request.deadline.expired()) {
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_enabled())
      global_metrics().add("service.deadline_miss_total");
    return shed(RejectReason::kDeadlineExpired, shed_deadline_at_submit_);
  }
  {
    std::lock_guard<std::mutex> lk(breaker_mu_);
    if (!breaker_.allow(now_us()))
      return shed(RejectReason::kCircuitOpen, shed_circuit_open_);
  }
  if (const auto reason = queue_.try_push(std::move(request))) {
    {
      // The breaker admitted this request (possibly taking a half-open
      // probe slot) but the queue refused it, so no outcome will ever be
      // recorded: give the slot back or the breaker wedges half-open.
      std::lock_guard<std::mutex> lk(breaker_mu_);
      breaker_.release_probe();
    }
    if (*reason == RejectReason::kQueueFull)
      return shed(RejectReason::kQueueFull, shed_queue_full_);
    return shed(RejectReason::kShutdown, shed_shutdown_);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_enabled()) global_metrics().add("service.requests_admitted");
  flight_record(FlightEventKind::kEnqueue, ctx, to_string(priority));
  return std::nullopt;
}

void DiffService::worker_loop() {
  while (auto item = queue_.pop()) process(std::move(*item));
}

void DiffService::process(AdmissionQueue::Item item) {
  ServiceRequest& req = item.request;

  // Install the request's identity on this worker thread for the duration:
  // every span the engines record underneath (stream.push_row, checked.row)
  // and every flight event picks it up automatically.  The scope outlives
  // the span below, so the span's destructor still sees the context.
  RequestContextScope ctx_scope(req.ctx);

  // Routed requests get a per-replica span label (owned-name small-buffer
  // storage: the string dies with this frame, the event does not).
  std::optional<TelemetrySpan> span;
  if (telemetry_enabled() && req.ctx.shard >= 0) {
    span.emplace("service.request.s" + std::to_string(req.ctx.shard) + ".r" +
                     std::to_string(req.ctx.replica),
                 "service");
  } else {
    span.emplace("service.request", "service");
  }

  const auto dequeued = std::chrono::steady_clock::now();
  flight_record(FlightEventKind::kDequeue, req.ctx, "",
                static_cast<std::uint64_t>(us_between(item.enqueued,
                                                      dequeued)));

  ServiceResponse response;
  response.id = req.id;
  response.priority = req.priority;
  response.queue_us = us_between(item.enqueued, dequeued);

  // Request-local retry count: the response carries this request's view,
  // the service-wide retries_ aggregates it at finish.
  std::atomic<std::uint64_t> request_retries{0};

  auto finish = [&](ServiceResponse::Status status) {
    response.status = status;
    response.retries = request_retries.load(std::memory_order_relaxed);
    retries_.fetch_add(response.retries, std::memory_order_relaxed);
    const auto done = std::chrono::steady_clock::now();
    response.service_us = us_between(dequeued, done);
    response.total_us = us_between(item.enqueued, done);
    respond(std::move(response));
  };

  if (req.deadline.expired() || req.cancelled()) {
    // Expired or cancelled while queued: shed before the engine sees a
    // single run.  Cancellation is checked second so a request that is both
    // expired and cancelled reports the deadline (the stronger signal).
    response.reject_reason = req.deadline.expired()
                                 ? RejectReason::kDeadlineExpired
                                 : RejectReason::kCancelled;
    flight_record(response.reject_reason == RejectReason::kDeadlineExpired
                      ? FlightEventKind::kDeadlineExpired
                      : FlightEventKind::kCancelled,
                  req.ctx, "in_queue");
    finish(ServiceResponse::Status::kRejected);
    return;
  }

  // Per-request deterministic jitter stream: seed ^ id, independent of
  // worker/thread interleaving.
  Rng jitter_rng(config_.seed ^ (0x5ee0bacull + req.id * 0x9e3779b97f4a7c15ull));
  std::uint64_t checked_fallbacks = 0;
  std::uint64_t unrecovered = 0;

  // By-handle requests carry pinned store images; by-value ones carry their
  // own.  Everything below reads through these, never req.reference/scan.
  const RleImage& reference = req.ref_image();
  const RleImage& scan = req.scan_image();

  std::vector<RleRow> diff_rows;
  if (req.keep_diff)
    diff_rows.reserve(static_cast<std::size_t>(reference.height()));

  StreamDiffer differ(req.options, [&](pos_t, const RleRow& d) {
    if (req.keep_diff) diff_rows.push_back(d);
  });
  differ.set_deadline(
      [&req] { return req.deadline.expired() || req.cancelled(); });

  if (req.engine_override) {
    // Test/bench hook: service-level retries around the injected engine; a
    // final denial rethrows and StreamDiffer's sequential fallback serves
    // the row.
    differ.set_engine_override([&](const RleRow& a, const RleRow& b,
                                   SystolicCounters& c) -> RleRow {
      BudgetedRetryGate gate(budget_, req.deadline, config_.backoff,
                             jitter_rng, request_retries);
      while (true) {
        try {
          RleRow out = req.engine_override(a, b, c);
          budget_.record_success();
          return out;
        } catch (const std::exception&) {
          if (!gate.allow_retry()) throw;
        }
      }
    });
  } else if (config_.use_checked_engine || req.fault.has_value()) {
    differ.set_engine_override([&](const RleRow& a, const RleRow& b,
                                   SystolicCounters& c) -> RleRow {
      BudgetedRetryGate gate(budget_, req.deadline, config_.backoff,
                             jitter_rng, request_retries);
      RecoveryPolicy policy = config_.recovery;
      policy.retry_gate = &gate;
      FaultInjection injection;
      if (req.fault.has_value()) injection.spec = &*req.fault;
      CheckedRowResult r = checked_xor(a, b, policy, injection);
      c.iterations = r.record.total_cycles;
      if (r.record.outcome == RecoveryOutcome::kFellBack) ++checked_fallbacks;
      if (!r.record.ok()) {
        ++unrecovered;
        return RleRow{};
      }
      budget_.record_success();
      return std::move(r.output);
    });
  }

  engine_invocations_.fetch_add(1, std::memory_order_relaxed);
  bool expired_mid_image = false;
  for (pos_t y = 0; y < reference.height(); ++y) {
    if (!differ.push_row(reference.row(y), scan.row(y))) {
      expired_mid_image = true;
      break;
    }
  }

  const StreamSummary& summary = differ.finish();
  response.rows_processed = summary.rows;
  response.fallback_rows = summary.fallback_rows + checked_fallbacks;
  response.unrecovered_rows = unrecovered;
  fallback_rows_.fetch_add(response.fallback_rows,
                           std::memory_order_relaxed);
  unrecovered_rows_.fetch_add(unrecovered, std::memory_order_relaxed);
  if (req.keep_diff)
    response.diff = RleImage(reference.width(), std::move(diff_rows));

  if (expired_mid_image) {
    response.reject_reason = req.deadline.expired()
                                 ? RejectReason::kDeadlineExpired
                                 : RejectReason::kCancelled;
    flight_record(response.reject_reason == RejectReason::kDeadlineExpired
                      ? FlightEventKind::kDeadlineExpired
                      : FlightEventKind::kCancelled,
                  req.ctx, "mid_image", response.rows_processed);
    finish(ServiceResponse::Status::kRejected);
  } else if (unrecovered > 0) {
    finish(ServiceResponse::Status::kFailed);
  } else {
    finish(ServiceResponse::Status::kCompleted);
  }
}

void DiffService::respond(ServiceResponse response) {
  const bool telem = telemetry_enabled();
  // The worker's RequestContextScope is still installed here, so flight
  // events carry the request identity without threading it through.
  const RequestContext& ctx = current_request_context();
  switch (response.status) {
    case ServiceResponse::Status::kCompleted:
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (telem) global_metrics().add("service.requests_completed");
      {
        std::lock_guard<std::mutex> lk(breaker_mu_);
        breaker_.record_success(now_us());
      }
      break;
    case ServiceResponse::Status::kFailed: {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (telem) global_metrics().add("service.requests_failed");
      bool tripped = false;
      {
        std::lock_guard<std::mutex> lk(breaker_mu_);
        const BreakerState before = breaker_.state();
        breaker_.record_failure(now_us());
        tripped = before != BreakerState::kOpen &&
                  breaker_.state() == BreakerState::kOpen;
      }
      if (tripped) {
        flight_record(FlightEventKind::kBreakerTrip, ctx, "service");
        flight_retain(ctx.request_id, "breaker_trip");
      }
      break;
    }
    case ServiceResponse::Status::kRejected:
      if (response.reject_reason == RejectReason::kCancelled) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
      } else {
        shed_deadline_after_admit_.fetch_add(1, std::memory_order_relaxed);
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        if (telem) global_metrics().add("service.deadline_miss_total");
        flight_retain(ctx.request_id, "deadline_expired");
      }
      {
        // A deadline expiry (or a hedge cancellation) says nothing about
        // backend health, but the request may hold a half-open probe slot
        // from admission: release it so abandoned probes cannot wedge the
        // breaker half-open.
        std::lock_guard<std::mutex> lk(breaker_mu_);
        breaker_.release_probe();
      }
      if (telem) count_shed(response.reject_reason);
      break;
  }
  if (telem) {
    MetricsRegistry& m = global_metrics();
    m.observe("service.queue_wait_us", response.queue_us);
    m.observe(std::string("service.latency_us.") +
                  to_string(response.priority),
              response.total_us);
  }
  flight_record(FlightEventKind::kRespond, ctx, to_string(response.status),
                static_cast<std::uint64_t>(response.total_us));
  if (on_complete_) on_complete_(std::move(response));
}

void DiffService::drain() {
  std::call_once(drain_once_, [this] {
    draining_.store(true, std::memory_order_release);
    queue_.close();
    for (std::thread& t : workers_) t.join();
    if (telemetry_enabled()) {
      // Flush gauges to their drained baseline so an exported snapshot
      // cannot advertise phantom queued work.
      MetricsRegistry& m = global_metrics();
      m.set_gauge("service.queue_depth", 0.0);
      m.set_gauge("service.queue_depth.interactive", 0.0);
      m.set_gauge("service.queue_depth.batch", 0.0);
    }
  });
}

ServiceStats DiffService::stats() const {
  ServiceStats s;
  s.offered = offered_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_circuit_open = shed_circuit_open_.load(std::memory_order_relaxed);
  s.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  s.shed_deadline_at_submit =
      shed_deadline_at_submit_.load(std::memory_order_relaxed);
  s.shed_deadline_after_admit =
      shed_deadline_after_admit_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.engine_invocations = engine_invocations_.load(std::memory_order_relaxed);
  s.retry_budget_exhausted = budget_.exhausted();
  s.fallback_rows = fallback_rows_.load(std::memory_order_relaxed);
  s.unrecovered_rows = unrecovered_rows_.load(std::memory_order_relaxed);
  return s;
}

BreakerState DiffService::breaker_state() const {
  std::lock_guard<std::mutex> lk(breaker_mu_);
  return breaker_.state();
}

}  // namespace sysrle
