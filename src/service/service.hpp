#pragma once
// DiffService: the overload-safe front door to the diff engines.
//
// Wraps the existing row engines (systolic / bus / sequential — and
// checked_xor when checked mode is on) behind a concurrent request executor
// with the serving-side protections production RLE pipelines rely on:
//
//   admission   bounded two-class queue, typed load shedding (never a
//               silent drop: offered == admitted + shed, and every admitted
//               request gets exactly one response);
//   deadlines   propagated into the engine — checked at dequeue and between
//               rows, so an expired request stops consuming machine cycles
//               mid-image;
//   retries     the shared token-bucket RetryBudget gates every checked-
//               engine retry, with exponential backoff + seeded jitter;
//   breaker     a service-level circuit breaker opens after consecutive
//               request failures and rejects with Rejected{circuit_open}
//               until a half-open probe succeeds (per-machine breakers live
//               in core/machine_farm);
//   drain       stop admitting, finish queued + in-flight work, deliver
//               every response, flush telemetry gauges.
//
// Metrics (docs/OBSERVABILITY.md): service.queue_depth,
// service.shed_total.<reason>, service.deadline_miss_total,
// service.retry_budget_exhausted_total, service.breaker_state.service,
// service.queue_wait_us, service.latency_us.{interactive,batch}.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/checked_diff.hpp"
#include "core/circuit_breaker.hpp"
#include "service/admission_queue.hpp"
#include "service/retry_budget.hpp"
#include "service/types.hpp"

namespace sysrle {

/// Service shape and policies.
struct ServiceConfig {
  /// Worker threads.  0 = auto, resolved by the same rule as the row
  /// executor (RowExecutor::resolve_threads): hardware_concurrency with
  /// "unknown" treated as 1, capped at kMaxThreads.
  std::size_t workers = 2;
  AdmissionConfig admission;
  RetryBudgetConfig retry_budget;
  BackoffPolicy backoff;

  /// Recovery policy for checked mode; its retry_gate is overwritten per
  /// request with the budget+deadline gate.
  RecoveryPolicy recovery;
  /// Run rows through checked_xor (checkers + watchdog + gated retries).
  /// Off: the engine from ServiceRequest::options runs bare, still with the
  /// per-row sequential fallback of StreamDiffer.
  bool use_checked_engine = false;

  /// Service-level breaker over request failures (kFailed responses).
  BreakerPolicy breaker{.failure_threshold = 3,
                        .open_duration = 50000,  // µs of service uptime
                        .probe_successes_to_close = 1};

  /// Seeds backoff jitter and batch early-shed sampling; equal seeds give
  /// byte-identical retry/shed behaviour (docs/TESTING.md).
  std::uint64_t seed = 42;
};

/// Monotonic counters over the service lifetime (one snapshot, coherent
/// enough for accounting: offered == admitted + shed_submit_* always holds
/// after drain()).
struct ServiceStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  // Submit-time sheds (returned synchronously, no response delivered).
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_circuit_open = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t shed_deadline_at_submit = 0;

  // Post-admission sheds (delivered as kRejected responses).
  std::uint64_t shed_deadline_after_admit = 0;
  std::uint64_t cancelled = 0;  ///< kRejected{cancelled} responses (hedging)

  std::uint64_t deadline_misses = 0;  ///< all deadline-expired outcomes
  std::uint64_t retries = 0;          ///< budgeted retries actually taken
  /// Requests that actually entered the engine row loop.  The result cache
  /// asserts its contract against this: a cache hit must not move it.
  std::uint64_t engine_invocations = 0;
  std::uint64_t retry_budget_exhausted = 0;
  std::uint64_t fallback_rows = 0;
  std::uint64_t unrecovered_rows = 0;

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_circuit_open + shed_shutdown +
           shed_deadline_at_submit + shed_deadline_after_admit + cancelled;
  }
  std::uint64_t responses() const {
    return completed + failed + shed_deadline_after_admit + cancelled;
  }
};

/// Concurrent request executor.  Responses are delivered on worker threads
/// through the completion callback; the callback must be thread-safe.
class DiffService {
 public:
  using Completion = std::function<void(ServiceResponse)>;

  DiffService(ServiceConfig config, Completion on_complete);
  /// Drains (finishing queued and in-flight work) if not already drained.
  ~DiffService();

  DiffService(const DiffService&) = delete;
  DiffService& operator=(const DiffService&) = delete;

  /// Admits or sheds the request.  Returns std::nullopt when admitted (a
  /// response will follow), the typed rejection otherwise (no response).
  std::optional<RejectReason> try_submit(ServiceRequest request);

  /// Graceful shutdown: stop admitting, finish queued + in-flight requests,
  /// join workers, flush telemetry gauges.  Idempotent.
  void drain();

  ServiceStats stats() const;
  BreakerState breaker_state() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  const RetryBudget& retry_budget() const { return budget_; }

 private:
  void worker_loop();
  void process(AdmissionQueue::Item item);
  void respond(ServiceResponse response);
  /// Microseconds since service construction (the breaker's clock).
  std::uint64_t now_us() const;

  ServiceConfig config_;
  Completion on_complete_;
  AdmissionQueue queue_;
  RetryBudget budget_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex breaker_mu_;
  CircuitBreaker breaker_;

  std::atomic<bool> draining_{false};
  std::once_flag drain_once_;

  // Stats (atomics: workers and submitters update concurrently).
  std::atomic<std::uint64_t> offered_{0}, admitted_{0}, completed_{0},
      failed_{0}, shed_queue_full_{0}, shed_circuit_open_{0},
      shed_shutdown_{0}, shed_deadline_at_submit_{0},
      shed_deadline_after_admit_{0}, cancelled_{0}, deadline_misses_{0},
      retries_{0}, engine_invocations_{0}, fallback_rows_{0},
      unrecovered_rows_{0};

  std::vector<std::thread> workers_;
};

}  // namespace sysrle
