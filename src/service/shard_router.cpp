#include "service/shard_router.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

/// Router-level (unrouted) flight context for a client request: events at
/// admission/response granularity, before/after any shard placement.
RequestContext client_ctx(std::uint64_t request_id) {
  RequestContext ctx;
  ctx.active = true;
  ctx.request_id = request_id;
  return ctx;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Pops the earliest entry of a min-heap on fire_at.
struct HedgeEarlier {
  bool operator()(const auto& a, const auto& b) const {
    return a.fire_at > b.fire_at;  // std::*_heap are max-heaps; invert
  }
};

}  // namespace

ShardRouter::ShardRouter(RouterConfig config, Completion on_complete)
    : config_(config),
      on_complete_(std::move(on_complete)),
      epoch_(std::chrono::steady_clock::now()),
      hedge_budget_(config.hedge.budget,
                    "router.hedge_budget_exhausted_total") {
  SYSRLE_REQUIRE(config_.shards >= 1, "ShardRouter: need at least one shard");
  SYSRLE_REQUIRE(config_.replicas >= 1,
                 "ShardRouter: need at least one replica per shard");
  SYSRLE_REQUIRE(config_.virtual_nodes >= 1,
                 "ShardRouter: need at least one virtual node per shard");

  sets_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    ReplicaSetConfig rsc;
    rsc.replicas = config_.replicas;
    rsc.service = config_.replica_service;
    rsc.service.seed = config_.replica_service.seed ^ mix64(s + 0x5a4d);
    rsc.breaker = config_.replica_breaker;
    sets_.push_back(std::make_unique<ReplicaSet>(
        s, rsc, [this, s](std::size_t r) -> DiffService::Completion {
          return [this, s, r](ServiceResponse resp) {
            on_replica_response(s, r, std::move(resp));
          };
        }));
  }

  ring_.reserve(config_.shards * config_.virtual_nodes);
  for (std::size_t s = 0; s < config_.shards; ++s)
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v)
      ring_.emplace_back(
          mix64(config_.seed ^ mix64(s * config_.virtual_nodes + v + 1)), s);
  std::sort(ring_.begin(), ring_.end());

  if (config_.hedge.enabled)
    hedge_thread_ = std::thread([this] { hedge_loop(); });
}

ShardRouter::~ShardRouter() { drain(); }

std::uint64_t ShardRouter::now_us() const {
  return static_cast<std::uint64_t>(
      us_between(epoch_, std::chrono::steady_clock::now()));
}

void ShardRouter::count_metric(const char* name) const {
  if (telemetry_enabled()) global_metrics().add(name);
}

std::uint64_t ShardRouter::route_key_of(const ServiceRequest& request) {
  if (request.route_key != 0) return request.route_key;
  // By-handle requests route on their handles: the handle IS the content
  // fingerprint, so re-submissions of the same pair land on the same shard
  // without hashing any image bytes.
  if (request.by_handle())
    return mix64(request.ref_handle ^ mix64(request.scan_handle));
  return mix64(image_fingerprint(request.reference) ^
               mix64(image_fingerprint(request.scan)));
}

std::size_t ShardRouter::shard_of(std::uint64_t key) const {
  const std::uint64_t point = mix64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::optional<RejectReason> ShardRouter::try_submit(ServiceRequest request) {
  SYSRLE_REQUIRE(request.by_handle() ||
                     (request.reference.width() == request.scan.width() &&
                      request.reference.height() == request.scan.height()),
                 "ShardRouter: request image dimensions differ");
  std::vector<Delivery> deliveries;
  std::optional<RejectReason> result;
  {
    std::unique_lock<std::mutex> lk(mu_);
    ++stats_.offered;
    count_metric("router.requests_offered");
    const RequestContext cctx = client_ctx(request.id);

    // Resolve by-handle operands before any routing decision: the pinned
    // images ride inside the request for its whole lifetime (the pin blocks
    // store eviction until the last dispatch copy dies).
    bool unknown_handle = false;
    if (request.by_handle()) {
      if (config_.store) {
        if (request.ref_handle != 0)
          request.pinned_ref = config_.store->acquire(request.ref_handle);
        if (request.scan_handle != 0)
          request.pinned_scan = config_.store->acquire(request.scan_handle);
      }
      unknown_handle = !request.pinned_ref || !request.pinned_scan;
    }

    if (draining_) {
      ++stats_.shed_shutdown;
      result = RejectReason::kShutdown;
      flight_record(FlightEventKind::kShed, cctx, to_string(*result));
      flight_retain(cctx.request_id, "shed");
    } else if (request.deadline.expired()) {
      ++stats_.shed_deadline_at_submit;
      result = RejectReason::kDeadlineExpired;
      flight_record(FlightEventKind::kShed, cctx, to_string(*result));
      flight_retain(cctx.request_id, "shed");
    } else if (unknown_handle) {
      // Typed shed: the operand was never registered (or already evicted).
      // The caller re-registers and re-submits; nothing is silently dropped.
      ++stats_.shed_unknown_handle;
      result = RejectReason::kUnknownHandle;
      count_metric("router.unknown_handle_sheds");
      flight_record(FlightEventKind::kShed, cctx, to_string(*result));
      flight_retain(cctx.request_id, "shed");
    } else {
      SYSRLE_REQUIRE(
          request.ref_image().width() == request.scan_image().width() &&
              request.ref_image().height() == request.scan_image().height(),
          "ShardRouter: by-handle image dimensions differ");
      const std::uint64_t key = route_key_of(request);
      const std::size_t home = shard_of(key);

      // Result cache: only by-handle requests are eligible — their key is
      // the verified store fingerprint pair, so a hit is answerable without
      // re-hashing anything.  Hooked requests (fault injection, engine
      // override) change behaviour per request and bypass the cache.
      const bool cacheable = config_.cache != nullptr && request.by_handle() &&
                             !request.fault && !request.engine_override;
      ResultKey rkey;
      bool served_from_cache = false;
      if (cacheable) {
        rkey.fp_a = request.ref_handle;
        rkey.fp_b = request.scan_handle;
        rkey.engine = request.options.engine;
        rkey.canonicalize = request.options.canonicalize_output;
        if (const std::shared_ptr<const CachedDiff> hit = config_.cache->lookup(
                rkey, request.ref_image(), request.scan_image())) {
          // Bit-identical replay of the original completion; no engine, no
          // queue, no dispatch.  Delivered outside the lock like every
          // other response.
          ++stats_.admitted;
          ++stats_.completed;
          ++stats_.cache_hits;
          count_metric("router.cache_hits");
          flight_record(FlightEventKind::kAdmit, cctx, "cache");
          flight_record(FlightEventKind::kCacheHit, cctx, "", rkey.fp_a);
          ServiceResponse resp;
          resp.id = request.id;
          resp.priority = request.priority;
          resp.status = ServiceResponse::Status::kCompleted;
          resp.from_cache = true;
          if (request.keep_diff) resp.diff = hit->diff;
          resp.rows_processed = hit->rows_processed;
          resp.fallback_rows = hit->fallback_rows;
          flight_record(FlightEventKind::kRespond, cctx,
                        to_string(resp.status));
          deliveries.push_back({std::move(resp)});
          served_from_cache = true;
        } else {
          ++stats_.cache_misses;
          count_metric("router.cache_misses");
          flight_record(FlightEventKind::kCacheMiss, cctx, "", rkey.fp_a);
        }
      }

      if (served_from_cache) {
        // result stays nullopt: the response above is the one delivery.
      } else {
      // Coalescing: requests carrying per-request behaviour hooks (fault
      // injection, engine overrides) never share a computation.
      const bool coalescible = config_.coalesce && !request.fault &&
                               !request.engine_override;
      bool registered = false;
      CoalesceKey ckey;
      if (coalescible) {
        // By-handle keys reuse the store fingerprints directly — no image
        // hashing; the equality check below still defeats collisions.
        if (request.by_handle()) {
          ckey.fp_a = request.ref_handle;
          ckey.fp_b = request.scan_handle;
          ckey.engine = request.options.engine;
          ckey.canonicalize = request.options.canonicalize_output;
        } else {
          ckey =
              coalesce_key(request.reference, request.scan, request.options);
        }
        const Coalescer::AdmitResult admit = coalescer_.admit(
            ckey, request.ref_image(), request.scan_image(), next_call_id_);
        // A collision runs uncoalesced AND unregistered — it must never
        // finish() a key another computation owns.
        registered = admit.primary && !admit.collision;
        if (!admit.primary) {
          auto owner = calls_.find(admit.owner);
          SYSRLE_REQUIRE(owner != calls_.end(),
                         "ShardRouter: coalescer owner is not a live call");
          flight_record(FlightEventKind::kAdmit, cctx, "coalesced");
          flight_record(FlightEventKind::kCoalesceJoined, cctx, "",
                        owner->second->request.id);
          owner->second->waiters.push_back(
              {std::move(request), std::chrono::steady_clock::now()});
          ++stats_.coalesced;
          ++stats_.admitted;
          count_metric("router.coalesced");
          return std::nullopt;
        }
      }

      auto call = std::make_shared<Call>();
      call->call_id = next_call_id_++;  // the id admit() registered above
      call->request = std::move(request);
      call->accepted = std::chrono::steady_clock::now();
      call->key = key;
      call->home_shard = home;
      call->ckey = ckey;
      call->coalesce_registered = registered;
      call->cacheable = cacheable;
      call->rkey = rkey;

      result = dispatch_locked(call, /*is_hedge=*/false,
                               /*exclude_replica=*/SIZE_MAX, deliveries);
      if (result) {
        if (call->coalesce_registered) coalescer_.finish(call->ckey);
        if (*result == RejectReason::kShardDown) {
          ++stats_.shed_shard_down;
          count_metric("router.shard_down_sheds");
        } else {
          ++stats_.shed_shutdown;
        }
        flight_record(FlightEventKind::kShed, cctx, to_string(*result));
        flight_retain(cctx.request_id, "shed");
      } else {
        ++stats_.admitted;
        flight_record(FlightEventKind::kAdmit, cctx, "primary");
        calls_.emplace(call->call_id, call);
        if (config_.hedge.enabled &&
            call->request.priority == Priority::kInteractive) {
          call->hedge_scheduled = true;
          hedge_heap_.push_back(
              {call->accepted + std::chrono::microseconds(
                                    current_hedge_delay_us()),
               call->call_id});
          std::push_heap(hedge_heap_.begin(), hedge_heap_.end(),
                         HedgeEarlier{});
          hedge_cv_.notify_one();
        }
      }
      }  // !served_from_cache
    }
  }
  deliver(deliveries);
  return result;
}

std::optional<RejectReason> ShardRouter::dispatch_locked(
    const std::shared_ptr<Call>& call, bool is_hedge,
    std::size_t exclude_replica, std::vector<Delivery>& out) {
  (void)out;
  const bool interactive = call->request.priority == Priority::kInteractive;
  bool crossed_shard = false;

  // Shard order: home first, then — interactive only — the rest of the
  // ring.  Batch work is keyed to its shard (its handles, its cache
  // locality); when the whole shard is down it sheds typed instead of
  // spilling onto healthy shards that interactive traffic needs.
  for (std::size_t hop = 0; hop < sets_.size(); ++hop) {
    if (hop > 0 && !interactive) break;
    const std::size_t shard = (call->home_shard + hop) % sets_.size();
    ReplicaSet& set = *sets_[shard];
    const std::vector<std::size_t> order = set.preference(call->key);

    // Each failed submission records a breaker failure, so this loop
    // terminates: every iteration moves some breaker toward open.
    std::size_t attempts = 0;
    const std::size_t max_attempts =
        set.size() *
        (static_cast<std::size_t>(config_.replica_breaker.failure_threshold) +
         2);
    while (attempts++ < max_attempts) {
      const std::optional<std::size_t> r =
          set.pick(call->key, now_us(), hop == 0 ? exclude_replica : SIZE_MAX);
      if (!r) break;
      if (submit_to_replica_locked(call, shard, *r, is_hedge)) {
        if (*r != order.front() && !is_hedge) {
          ++stats_.failovers;
          count_metric("router.failovers");
          flight_record(FlightEventKind::kFailover, call->last_dispatch_ctx,
                        hop > 0 ? "cross_shard" : "in_shard");
        }
        if (crossed_shard || hop > 0) {
          ++stats_.cross_shard_failovers;
          count_metric("router.cross_shard_failovers");
        }
        return std::nullopt;
      }
    }
    crossed_shard = true;
  }
  return RejectReason::kShardDown;
}

bool ShardRouter::submit_to_replica_locked(const std::shared_ptr<Call>& call,
                                           std::size_t shard,
                                           std::size_t replica,
                                           bool is_hedge) {
  Dispatch d;
  d.call = call;
  d.shard = shard;
  d.replica = replica;
  d.is_hedge = is_hedge;
  d.cancel = std::make_shared<std::atomic<bool>>(false);

  ServiceRequest backend = call->request;  // deep copy: hedges need another
  const std::uint64_t dispatch_id = next_dispatch_id_++;
  backend.id = dispatch_id;
  backend.cancel = d.cancel;

  // Observability identity: client request id (stable across failover,
  // hedging, promotion), this dispatch's ordinal, and where it landed.
  RequestContext ctx;
  ctx.active = true;
  ctx.request_id = call->request.id;
  ctx.attempt = call->dispatch_count++;
  ctx.shard = static_cast<std::int32_t>(shard);
  ctx.replica = static_cast<std::int32_t>(replica);
  backend.ctx = ctx;
  d.ctx = ctx;

  const std::shared_ptr<DiffService> service =
      sets_[shard]->replica(replica);
  const std::optional<RejectReason> reason =
      service->try_submit(std::move(backend));
  if (reason) {
    // A shed — queue_full, shutdown (killed replica), circuit_open — is the
    // router-level health signal: it counts as a replica failure so a
    // replica that keeps shedding gets quarantined.
    const BreakerState before = sets_[shard]->breaker_state(replica);
    const BreakerState after = sets_[shard]->record_failure(replica, now_us());
    if (before != BreakerState::kOpen && after == BreakerState::kOpen) {
      flight_record(FlightEventKind::kBreakerTrip, ctx, to_string(*reason));
      flight_retain(ctx.request_id, "breaker_trip");
    }
    return false;
  }
  flight_record(FlightEventKind::kDispatch, ctx,
                is_hedge ? "hedge" : "primary", dispatch_id);
  ++call->pending_dispatches;
  if (!is_hedge) {
    call->primary_shard = shard;
    call->primary_replica = replica;
  }
  call->last_dispatch_ctx = ctx;
  call->dispatch_ids.push_back(dispatch_id);
  dispatches_.emplace(dispatch_id, std::move(d));
  return true;
}

void ShardRouter::on_replica_response(std::size_t shard, std::size_t replica,
                                      ServiceResponse response) {
  std::vector<Delivery> deliveries;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = dispatches_.find(response.id);
    SYSRLE_REQUIRE(it != dispatches_.end(),
                   "ShardRouter: response for unknown dispatch");
    const Dispatch dispatch = std::move(it->second);
    dispatches_.erase(it);
    const std::shared_ptr<Call>& call = dispatch.call;
    --call->pending_dispatches;

    // Router-level breaker accounting for the replica that served it.  A
    // deadline expiry or hedge cancellation says nothing about replica
    // health; release the probe slot pick() may have taken.
    switch (response.status) {
      case ServiceResponse::Status::kCompleted:
        sets_[shard]->record_success(replica, now_us());
        break;
      case ServiceResponse::Status::kFailed: {
        const BreakerState before = sets_[shard]->breaker_state(replica);
        const BreakerState after =
            sets_[shard]->record_failure(replica, now_us());
        if (before != BreakerState::kOpen && after == BreakerState::kOpen) {
          flight_record(FlightEventKind::kBreakerTrip, dispatch.ctx,
                        "replica_failed");
          flight_retain(dispatch.ctx.request_id, "breaker_trip");
        }
        break;
      }
      case ServiceResponse::Status::kRejected:
        sets_[shard]->release_probe(replica);
        break;
    }

    if (call->finished) {
      // The losing half of a hedged pair (cancelled, or it finished after
      // the winner): swallow — the client already has its one response.
      if (dispatch.is_hedge) {
        ++stats_.hedges_lost;
        count_metric("router.hedges_lost");
        flight_record(FlightEventKind::kHedgeLost, dispatch.ctx,
                      to_string(response.status));
      }
      if (call->pending_dispatches == 0) calls_.erase(call->call_id);
    } else if (response.status == ServiceResponse::Status::kCompleted) {
      finish_call_locked(call, response, dispatch.is_hedge, dispatch.ctx,
                         deliveries);
    } else if (call->pending_dispatches > 0) {
      // A failure, but a hedge twin is still running — it may yet rescue
      // the request.  Keep the more informative outcome for the case where
      // nothing succeeds: an engine failure beats a deadline rejection.
      if (!call->provisional ||
          response.status == ServiceResponse::Status::kFailed)
        call->provisional = std::move(response);
    } else {
      ServiceResponse final_response = std::move(response);
      if (call->provisional &&
          call->provisional->status == ServiceResponse::Status::kFailed &&
          final_response.status != ServiceResponse::Status::kFailed)
        final_response = std::move(*call->provisional);
      finish_call_locked(call, final_response, dispatch.is_hedge,
                         dispatch.ctx, deliveries);
    }
  }
  deliver(deliveries);
}

ServiceResponse ShardRouter::client_response_locked(
    const Call& call, const ServiceResponse& winner) const {
  ServiceResponse r = winner;
  r.id = call.request.id;
  r.priority = call.request.priority;
  r.total_us = us_between(call.accepted, std::chrono::steady_clock::now());
  return r;
}

void ShardRouter::finish_call_locked(const std::shared_ptr<Call>& call,
                                     const ServiceResponse& winner,
                                     bool winner_is_hedge,
                                     const RequestContext& winner_ctx,
                                     std::vector<Delivery>& out) {
  call->finished = true;

  // Cancel the losing dispatch (if a hedge twin is still in flight): the
  // token trips the backend's deadline machinery at its next check.
  for (const std::uint64_t id : call->dispatch_ids) {
    auto it = dispatches_.find(id);
    if (it != dispatches_.end())
      it->second.cancel->store(true, std::memory_order_release);
  }

  if (winner_is_hedge &&
      winner.status == ServiceResponse::Status::kCompleted) {
    ++stats_.hedges_won;
    count_metric("router.hedges_won");
    // A hedge win is an anomaly worth keeping whole: the retained timeline
    // shows the slow primary, the hedge decision, and the win.
    flight_record(FlightEventKind::kHedgeWon, winner_ctx);
    flight_retain(winner_ctx.request_id, "hedge_won");
  }

  // Feed the result cache: a cache-eligible completion with a payload (the
  // diff was kept) becomes the stored answer for this fingerprint pair.
  // The operand references are non-pinning shares of the store entries, so
  // caching never blocks store eviction.
  if (call->cacheable && config_.cache &&
      winner.status == ServiceResponse::Status::kCompleted &&
      call->request.keep_diff) {
    config_.cache->insert(
        call->rkey, call->request.pinned_ref.share(),
        call->request.pinned_scan.share(),
        CachedDiff{winner.diff, winner.rows_processed, winner.fallback_rows});
    ++stats_.cache_stores;
    count_metric("router.cache_stores");
  }

  // The client's one response.
  const ServiceResponse client = client_response_locked(*call, winner);
  switch (client.status) {
    case ServiceResponse::Status::kCompleted:
      ++stats_.completed;
      hedge_budget_.record_success();
      if (client.priority == Priority::kInteractive)
        interactive_latency_us_.add(client.total_us);
      break;
    case ServiceResponse::Status::kFailed:
      ++stats_.failed;
      break;
    case ServiceResponse::Status::kRejected:
      ++stats_.rejected;
      break;
  }
  flight_record(FlightEventKind::kRespond, client_ctx(client.id),
                to_string(client.status),
                static_cast<std::uint64_t>(client.total_us));
  out.push_back({client});

  // Waiters.  A completed or failed outcome propagates typed to every
  // waiter (bit-identical response copy for completions).  A rejected
  // outcome (the primary's deadline expired or it was shed mid-flight)
  // promotes the first waiter whose own deadline still holds into a fresh
  // primary — the computation is still wanted, just not by the original
  // requester.
  std::vector<Waiter> waiters = std::move(call->waiters);
  call->waiters.clear();
  const bool propagate =
      winner.status != ServiceResponse::Status::kRejected;
  const auto now = std::chrono::steady_clock::now();

  std::size_t w = 0;
  if (propagate) {
    for (; w < waiters.size(); ++w) {
      Waiter& waiter = waiters[w];
      ServiceResponse wr;
      if (waiter.request.deadline.expired()) {
        // The waiter's own (shorter) deadline lapsed while the primary ran.
        wr.status = ServiceResponse::Status::kRejected;
        wr.reject_reason = RejectReason::kDeadlineExpired;
        ++stats_.waiter_deadline_sheds;
        ++stats_.rejected;
        flight_record(FlightEventKind::kDeadlineExpired,
                      client_ctx(waiter.request.id), "waiter");
        flight_retain(waiter.request.id, "deadline_expired");
      } else {
        wr = winner;  // same diff bytes as the primary's response
        switch (wr.status) {
          case ServiceResponse::Status::kCompleted:
            ++stats_.completed;
            break;
          case ServiceResponse::Status::kFailed:
            ++stats_.failed;
            break;
          case ServiceResponse::Status::kRejected:
            ++stats_.rejected;
            break;
        }
      }
      wr.id = waiter.request.id;
      wr.priority = waiter.request.priority;
      wr.queue_us = 0.0;
      wr.total_us = us_between(waiter.arrived, now);
      flight_record(FlightEventKind::kRespond, client_ctx(wr.id),
                    to_string(wr.status),
                    static_cast<std::uint64_t>(wr.total_us));
      out.push_back({std::move(wr)});
    }
    if (call->coalesce_registered) coalescer_.finish(call->ckey);
  } else {
    bool promoted = false;
    for (; w < waiters.size(); ++w) {
      Waiter& waiter = waiters[w];
      if (waiter.request.deadline.expired()) {
        ServiceResponse wr;
        wr.status = ServiceResponse::Status::kRejected;
        wr.reject_reason = RejectReason::kDeadlineExpired;
        wr.id = waiter.request.id;
        wr.priority = waiter.request.priority;
        wr.total_us = us_between(waiter.arrived, now);
        ++stats_.waiter_deadline_sheds;
        ++stats_.rejected;
        flight_record(FlightEventKind::kDeadlineExpired,
                      client_ctx(wr.id), "waiter");
        flight_retain(wr.id, "deadline_expired");
        flight_record(FlightEventKind::kRespond, client_ctx(wr.id),
                      to_string(wr.status),
                      static_cast<std::uint64_t>(wr.total_us));
        out.push_back({std::move(wr)});
        continue;
      }
      // Promote: this waiter becomes the new primary of the same key.
      auto next = std::make_shared<Call>();
      next->call_id = next_call_id_++;
      next->request = std::move(waiter.request);
      next->accepted = waiter.arrived;
      next->key = call->key;
      next->home_shard = call->home_shard;
      next->ckey = call->ckey;
      next->coalesce_registered = call->coalesce_registered;
      const std::optional<RejectReason> reason =
          dispatch_locked(next, /*is_hedge=*/false, SIZE_MAX, out);
      if (reason) {
        // Nowhere to run it: the waiter was admitted, so it gets a typed
        // response (shard_down / shutdown), never silence.
        ServiceResponse wr;
        wr.status = ServiceResponse::Status::kRejected;
        wr.reject_reason = *reason;
        wr.id = next->request.id;
        wr.priority = next->request.priority;
        wr.total_us = us_between(waiter.arrived, now);
        ++stats_.rejected;
        if (*reason == RejectReason::kShardDown)
          count_metric("router.shard_down_sheds");
        flight_record(FlightEventKind::kRespond, client_ctx(wr.id),
                      to_string(wr.status),
                      static_cast<std::uint64_t>(wr.total_us));
        out.push_back({std::move(wr)});
        continue;
      }
      next->waiters.assign(std::make_move_iterator(waiters.begin() + w + 1),
                           std::make_move_iterator(waiters.end()));
      if (next->coalesce_registered)
        coalescer_.reassign(next->ckey, next->call_id);
      calls_.emplace(next->call_id, next);
      ++stats_.coalesce_promotions;
      count_metric("router.coalesce_promotions");
      flight_record(FlightEventKind::kCoalescePromoted,
                    client_ctx(next->request.id), "", call->request.id);
      if (config_.hedge.enabled &&
          next->request.priority == Priority::kInteractive) {
        next->hedge_scheduled = true;
        hedge_heap_.push_back(
            {std::chrono::steady_clock::now() +
                 std::chrono::microseconds(current_hedge_delay_us()),
             next->call_id});
        std::push_heap(hedge_heap_.begin(), hedge_heap_.end(),
                       HedgeEarlier{});
        hedge_cv_.notify_one();
      }
      promoted = true;
      break;
    }
    if (!promoted && call->coalesce_registered)
      coalescer_.finish(call->ckey);
  }

  if (call->pending_dispatches == 0) calls_.erase(call->call_id);
}

std::uint64_t ShardRouter::current_hedge_delay_us() const {
  const HedgePolicy& h = config_.hedge;
  if (h.fixed_delay_us > 0) return h.fixed_delay_us;
  if (interactive_latency_us_.count() <
      static_cast<std::size_t>(h.min_samples))
    return h.initial_delay_us;
  const double p99 = interactive_latency_us_.p99();
  return std::clamp(static_cast<std::uint64_t>(p99), h.min_delay_us,
                    h.max_delay_us);
}

void ShardRouter::fire_hedge_locked(const std::shared_ptr<Call>& call,
                                    std::vector<Delivery>& out) {
  (void)out;
  call->hedge_fired = true;
  if (!hedge_budget_.try_spend()) {
    ++stats_.hedges_suppressed;
    count_metric("router.hedges_suppressed");
    flight_record(FlightEventKind::kHedgeSuppressed,
                  client_ctx(call->request.id), "budget");
    return;
  }

  // Second copy to a different replica: same shard first (excluding the
  // primary's replica), then — the request is interactive by construction —
  // any other shard.
  const std::size_t home = call->home_shard;
  std::size_t attempts = 0;
  for (std::size_t hop = 0; hop < sets_.size(); ++hop) {
    const std::size_t shard = (home + hop) % sets_.size();
    ReplicaSet& set = *sets_[shard];
    const std::size_t exclude =
        (hop == 0 && call->primary_shard == shard) ? call->primary_replica
                                                   : SIZE_MAX;
    const std::size_t max_attempts =
        set.size() *
        (static_cast<std::size_t>(config_.replica_breaker.failure_threshold) +
         2);
    while (attempts++ < max_attempts) {
      const std::optional<std::size_t> r =
          set.pick(call->key, now_us(), exclude);
      if (!r) break;
      if (submit_to_replica_locked(call, shard, *r, /*is_hedge=*/true)) {
        ++stats_.hedges_fired;
        count_metric("router.hedges_fired");
        flight_record(FlightEventKind::kHedgeFired, call->last_dispatch_ctx,
                      hop == 0 ? "in_shard" : "cross_shard");
        return;
      }
    }
  }
  // No second replica could take it: give the token back — nothing fired.
  hedge_budget_.refund();
  ++stats_.hedges_unroutable;
  count_metric("router.hedges_unroutable");
  flight_record(FlightEventKind::kHedgeUnroutable,
                client_ctx(call->request.id));
}

void ShardRouter::hedge_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!draining_) {
    if (hedge_heap_.empty()) {
      hedge_cv_.wait(lk);
      continue;
    }
    const auto fire_at = hedge_heap_.front().fire_at;
    if (std::chrono::steady_clock::now() < fire_at) {
      hedge_cv_.wait_until(lk, fire_at);
      continue;
    }
    std::pop_heap(hedge_heap_.begin(), hedge_heap_.end(), HedgeEarlier{});
    const HedgeEntry entry = hedge_heap_.back();
    hedge_heap_.pop_back();
    auto it = calls_.find(entry.call_id);
    if (it == calls_.end()) continue;
    const std::shared_ptr<Call> call = it->second;
    if (call->finished || call->hedge_fired) continue;
    std::vector<Delivery> deliveries;
    fire_hedge_locked(call, deliveries);
    if (!deliveries.empty()) {
      lk.unlock();
      deliver(deliveries);
      lk.lock();
    }
  }
}

void ShardRouter::deliver(std::vector<Delivery>& deliveries) {
  if (!on_complete_) return;
  for (Delivery& d : deliveries) on_complete_(std::move(d.response));
}

void ShardRouter::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) {
      // Idempotent: a second drain() (e.g. the destructor after an explicit
      // drain) must not re-join the hedge thread.
    }
    draining_ = true;
    hedge_cv_.notify_all();
  }
  if (hedge_thread_.joinable()) hedge_thread_.join();
  // Replica drains deliver every outstanding response; those responses
  // resolve every pending call (and its waiters) through
  // on_replica_response, which still runs during drain.
  for (const auto& set : sets_) set->drain();
}

RouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  RouterStats s = stats_;
  s.coalesce_collisions = coalescer_.collisions();
  return s;
}

ServiceStats ShardRouter::backend_stats() const {
  ServiceStats total;
  for (const auto& set : sets_) {
    const ServiceStats s = set->aggregate_stats();
    total.offered += s.offered;
    total.admitted += s.admitted;
    total.completed += s.completed;
    total.failed += s.failed;
    total.shed_queue_full += s.shed_queue_full;
    total.shed_circuit_open += s.shed_circuit_open;
    total.shed_shutdown += s.shed_shutdown;
    total.shed_deadline_at_submit += s.shed_deadline_at_submit;
    total.shed_deadline_after_admit += s.shed_deadline_after_admit;
    total.cancelled += s.cancelled;
    total.deadline_misses += s.deadline_misses;
    total.retries += s.retries;
    total.engine_invocations += s.engine_invocations;
    total.retry_budget_exhausted += s.retry_budget_exhausted;
    total.fallback_rows += s.fallback_rows;
    total.unrecovered_rows += s.unrecovered_rows;
  }
  return total;
}

BreakerState ShardRouter::replica_breaker_state(std::size_t shard,
                                                std::size_t replica) const {
  return sets_.at(shard)->breaker_state(replica);
}

std::size_t ShardRouter::healthy_replicas() const {
  std::size_t healthy = 0;
  for (const auto& set : sets_)
    for (std::size_t r = 0; r < set->size(); ++r)
      if (set->breaker_state(r) != BreakerState::kOpen) ++healthy;
  return healthy;
}

void ShardRouter::kill_replica(std::size_t shard, std::size_t replica) {
  sets_.at(shard)->kill(replica);
}

void ShardRouter::revive_replica(std::size_t shard, std::size_t replica) {
  sets_.at(shard)->revive(replica);
}

}  // namespace sysrle
