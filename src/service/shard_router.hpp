#pragma once
// ShardRouter: the replicated, failover-capable front door of the farm.
//
// DiffService protects one process from overload; the router makes *loss of
// a backend* invisible, the way the paper's array keeps computing when work
// is spread over many identical cells.  It consistent-hashes request route
// keys (image handles) over N shards of R replicas each and layers four
// mechanisms on top (docs/ROBUSTNESS.md, "Sharded serving and failover"):
//
//   failover     per-replica circuit breakers at the router (ReplicaSet)
//                quarantine a replica that keeps shedding or failing; its
//                keys route to the next replica in rendezvous order, and a
//                half-open probe re-admits it when it recovers;
//   hedging      an interactive request still pending after a p99-derived
//                hedge delay is dispatched a second time to a different
//                replica; the first response wins and the loser is
//                cancelled through the deadline machinery (it stops at the
//                next row boundary, responds Rejected{cancelled}, and the
//                router swallows the duplicate).  A token-bucket hedge
//                budget (reusing RetryBudget) bounds hedges to a fraction
//                of successful work, so hedging can never double offered
//                load under overload — suppressed hedges are counted, not
//                fired;
//   coalescing   identical in-flight diffs (same images, same engine)
//                share one computation; waiters get a bit-identical copy of
//                the primary's response, a typed copy of its failure, or —
//                when the primary's own deadline expired but a waiter's
//                still holds — promotion: the waiter re-dispatches as the
//                new primary (Coalescer);
//   degraded     when every replica of a shard is quarantined, batch
//                traffic sheds with typed kShardDown and interactive
//                traffic fails over cross-shard to the next shard on the
//                ring.
//
// Accounting contract (bench_overload asserts it across a replica kill):
// every offered request gets exactly one client-visible outcome — a typed
// synchronous rejection from try_submit, or exactly one delivered
// ServiceResponse.  Never both, never neither, no matter which replicas
// die mid-flight.
//
// Metrics (docs/OBSERVABILITY.md): router.failovers,
// router.cross_shard_failovers, router.hedges_fired, router.hedges_won,
// router.hedges_suppressed, router.coalesced, router.coalesce_promotions,
// router.shard_down_sheds, plus per-replica
// service.breaker_state.shard<S>.replica<R> gauges.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "service/coalescer.hpp"
#include "service/replica_set.hpp"
#include "service/retry_budget.hpp"
#include "service/service.hpp"
#include "service/types.hpp"
#include "store/image_store.hpp"
#include "store/result_cache.hpp"

namespace sysrle {

/// When and how aggressively to hedge interactive requests.
struct HedgePolicy {
  bool enabled = true;

  /// Fixed hedge delay; 0 = derive from the observed interactive p99
  /// (clamped to [min_delay_us, max_delay_us]).
  std::uint64_t fixed_delay_us = 0;
  std::uint64_t min_delay_us = 500;
  std::uint64_t max_delay_us = 200000;
  /// Until this many interactive latencies are observed, the p99-derived
  /// delay falls back to initial_delay_us.
  std::size_t min_samples = 16;
  std::uint64_t initial_delay_us = 10000;

  /// Token bucket bounding hedges: each fired hedge spends one token,
  /// completed requests earn tokens_per_success.  Exhausted bucket =
  /// hedge suppressed (counted), request continues unhedged.
  RetryBudgetConfig budget{.initial_tokens = 8.0,
                           .max_tokens = 8.0,
                           .tokens_per_success = 0.1,
                           .cost_per_retry = 1.0};
};

struct RouterConfig {
  std::size_t shards = 2;
  std::size_t replicas = 2;
  /// Ring points per shard; more = smoother key spread.
  std::size_t virtual_nodes = 32;

  /// Per-replica backend shape.
  ServiceConfig replica_service;
  /// Router-level per-replica breaker (clocked in µs of router uptime).
  BreakerPolicy replica_breaker{.failure_threshold = 3,
                                .open_duration = 50000,
                                .probe_successes_to_close = 1};
  HedgePolicy hedge;
  bool coalesce = true;

  /// Persistent image store for by-handle requests (ServiceRequest::
  /// ref_handle/scan_handle).  Null: by-handle requests shed with
  /// kUnknownHandle.  Shared so the caller can register images and read
  /// store stats alongside the router.
  std::shared_ptr<ImageStore> store;
  /// Content-addressed result cache over completed by-handle diffs.  Null:
  /// every request runs an engine.  Only by-handle requests are cached —
  /// their operand identity is the store fingerprint, already verified.
  std::shared_ptr<ResultCache> cache;

  /// Seeds the ring and rendezvous salts (and, xored per replica, the
  /// backend seeds).
  std::uint64_t seed = 42;
};

/// Monotonic counters over the router lifetime.
struct RouterStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;  ///< offered - synchronous sheds

  // Synchronous sheds (try_submit returned a reason; no response follows).
  std::uint64_t shed_shutdown = 0;
  std::uint64_t shed_deadline_at_submit = 0;
  std::uint64_t shed_shard_down = 0;
  std::uint64_t shed_unknown_handle = 0;  ///< by-handle operand not resident

  // Delivered client responses by status.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;  ///< kRejected responses (deadline/shard_down)

  std::uint64_t failovers = 0;  ///< dispatches not on the preferred replica
  std::uint64_t cross_shard_failovers = 0;

  std::uint64_t hedges_fired = 0;
  std::uint64_t hedges_won = 0;   ///< hedge finished first with a result
  std::uint64_t hedges_lost = 0;  ///< hedge cancelled/beaten by the primary
  std::uint64_t hedges_suppressed = 0;   ///< denied by the hedge budget
  std::uint64_t hedges_unroutable = 0;   ///< no second healthy replica

  std::uint64_t coalesced = 0;  ///< requests attached as waiters
  std::uint64_t coalesce_promotions = 0;
  std::uint64_t coalesce_collisions = 0;
  std::uint64_t waiter_deadline_sheds = 0;

  std::uint64_t cache_hits = 0;    ///< responses served from the result cache
  std::uint64_t cache_misses = 0;  ///< cache-eligible requests that ran
  std::uint64_t cache_stores = 0;  ///< completions inserted into the cache

  std::uint64_t responses() const { return completed + failed + rejected; }
  std::uint64_t shed_submit_total() const {
    return shed_shutdown + shed_deadline_at_submit + shed_shard_down +
           shed_unknown_handle;
  }
  /// The zero-silent-drops identity.
  bool accounted() const {
    return offered == admitted + shed_submit_total() &&
           responses() == admitted;
  }
};

/// Routes requests over shards × replicas of in-process DiffServices.
class ShardRouter {
 public:
  using Completion = std::function<void(ServiceResponse)>;

  ShardRouter(RouterConfig config, Completion on_complete);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Admits, coalesces, or sheds.  std::nullopt: exactly one response will
  /// be delivered later.  A returned reason is final — no response follows.
  std::optional<RejectReason> try_submit(ServiceRequest request);

  /// Stops admitting, finishes all in-flight work on every replica,
  /// delivers every pending response (including waiters), joins the hedge
  /// timer.  Idempotent.
  void drain();

  RouterStats stats() const;
  /// Sum of backend DiffService stats across all live replicas.
  ServiceStats backend_stats() const;

  /// The routing key try_submit would use for `request`.
  static std::uint64_t route_key_of(const ServiceRequest& request);
  /// Ring lookup (stable for the router's lifetime).
  std::size_t shard_of(std::uint64_t key) const;
  std::size_t shards() const { return sets_.size(); }
  std::size_t replicas() const { return config_.replicas; }

  /// The hedge delay a request admitted now would get (µs).
  std::uint64_t current_hedge_delay_us() const;

  BreakerState replica_breaker_state(std::size_t shard,
                                     std::size_t replica) const;
  /// Closed / half-open replica breakers across the fleet.
  std::size_t healthy_replicas() const;

  /// Fault-injection hooks (bench_overload's kill-a-replica phase, tests).
  void kill_replica(std::size_t shard, std::size_t replica);
  void revive_replica(std::size_t shard, std::size_t replica);

 private:
  struct Waiter {
    ServiceRequest request;
    std::chrono::steady_clock::time_point arrived;
  };

  struct Call {
    std::uint64_t call_id = 0;
    ServiceRequest request;  ///< client's original (no cancel token)
    std::chrono::steady_clock::time_point accepted;
    std::uint64_t key = 0;
    std::size_t home_shard = 0;

    CoalesceKey ckey;
    bool coalesce_registered = false;
    std::vector<Waiter> waiters;

    /// Cache-eligible by-handle call: its completion is inserted under rkey.
    bool cacheable = false;
    ResultKey rkey;

    /// Where the primary (non-hedge) dispatch landed; the hedge excludes
    /// this replica when picking its second target.
    std::size_t primary_shard = 0;
    std::size_t primary_replica = 0;
    /// Every dispatch issued for this call (primary + hedge); used to
    /// cancel the loser once a winner is chosen.
    std::vector<std::uint64_t> dispatch_ids;

    int pending_dispatches = 0;
    bool finished = false;
    bool hedge_fired = false;
    bool hedge_scheduled = false;
    /// Best failure response seen so far while another dispatch is still
    /// pending (delivered only if nothing succeeds).
    std::optional<ServiceResponse> provisional;

    /// Dispatch ordinal source: attempt 0 is the first backend submission,
    /// 1+ are failover re-submissions and hedges (RequestContext::attempt).
    std::uint32_t dispatch_count = 0;
    /// Context of the most recent successful backend submission (flight
    /// recorder: failover / hedge_fired events name where work landed).
    RequestContext last_dispatch_ctx;
  };

  struct Dispatch {
    std::shared_ptr<Call> call;
    std::size_t shard = 0;
    std::size_t replica = 0;
    bool is_hedge = false;
    std::shared_ptr<std::atomic<bool>> cancel;
    /// Identity stamped on the backend submission (client id + attempt +
    /// shard/replica) — reused for hedge_won/hedge_lost flight events.
    RequestContext ctx;
  };

  struct HedgeEntry {
    std::chrono::steady_clock::time_point fire_at;
    std::uint64_t call_id = 0;
  };

  /// One client-visible delivery, built under the lock, invoked outside it.
  struct Delivery {
    ServiceResponse response;
  };

  std::uint64_t now_us() const;

  /// Dispatches `call`'s request to shard `shard` (failing over across its
  /// replicas, then — for interactive — across shards).  Returns the shed
  /// reason when no backend admitted it.  Lock held.
  std::optional<RejectReason> dispatch_locked(
      const std::shared_ptr<Call>& call, bool is_hedge,
      std::size_t exclude_replica, std::vector<Delivery>& out);

  /// One replica-level submission attempt.  True = admitted.
  bool submit_to_replica_locked(const std::shared_ptr<Call>& call,
                                std::size_t shard, std::size_t replica,
                                bool is_hedge);

  void on_replica_response(std::size_t shard, std::size_t replica,
                           ServiceResponse response);

  /// Finishes `call` with the winning response; fans out to waiters,
  /// promotes on deadline expiry.  Lock held; deliveries collected.
  /// `winner_ctx` is the winning dispatch's stamped context (flight
  /// recorder: hedge_won is attributed to the replica that won).
  void finish_call_locked(const std::shared_ptr<Call>& call,
                          const ServiceResponse& winner, bool winner_is_hedge,
                          const RequestContext& winner_ctx,
                          std::vector<Delivery>& out);

  /// Builds the client-visible response for `call` from `winner`.
  ServiceResponse client_response_locked(const Call& call,
                                         const ServiceResponse& winner) const;

  void hedge_loop();
  void fire_hedge_locked(const std::shared_ptr<Call>& call,
                         std::vector<Delivery>& out);
  void deliver(std::vector<Delivery>& deliveries);

  void count_metric(const char* name) const;

  RouterConfig config_;
  Completion on_complete_;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<std::unique_ptr<ReplicaSet>> sets_;
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;  ///< sorted

  mutable std::mutex mu_;
  Coalescer coalescer_;
  RetryBudget hedge_budget_;
  RunningStat interactive_latency_us_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Call>> calls_;
  std::unordered_map<std::uint64_t, Dispatch> dispatches_;
  std::vector<HedgeEntry> hedge_heap_;  ///< min-heap on fire_at
  std::uint64_t next_call_id_ = 1;
  std::uint64_t next_dispatch_id_ = 1;
  bool draining_ = false;

  std::condition_variable hedge_cv_;
  std::thread hedge_thread_;

  // Stats (under mu_).
  RouterStats stats_;
};

}  // namespace sysrle
