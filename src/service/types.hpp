#pragma once
// Shared vocabulary of the overload-safe serving layer (src/service): what a
// request is, how it can be refused, and how its deadline is carried.
//
// The ROADMAP's north star is a system "serving heavy traffic from millions
// of users"; the paper's pitch is bounded per-row latency.  This layer keeps
// that promise under load the engines cannot absorb: every request either
// completes or is *shed with a typed reason* — never silently dropped — and
// an expired request stops consuming machine cycles the moment its deadline
// passes.  docs/ROBUSTNESS.md ("Serving under overload") has the full state
// machines.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/faults.hpp"
#include "core/image_diff.hpp"
#include "core/stream_diff.hpp"
#include "rle/rle_image.hpp"
#include "store/image_store.hpp"
#include "telemetry/request_context.hpp"

namespace sysrle {

/// Request class.  Interactive requests (an operator waiting at a review
/// station) are always dequeued before batch requests (offline re-scans).
enum class Priority {
  kInteractive,
  kBatch,
};

/// Human-readable priority name.
const char* to_string(Priority priority);

/// Why a request was refused.  Every shed path names one of these — the
/// "Rejected{...}" outcome of the ISSUE — so offered == admitted + shed is
/// checkable by the caller (and checked by bench_overload).
enum class RejectReason {
  kQueueFull,        ///< the admission queue for the class was at capacity
  kDeadlineExpired,  ///< the deadline passed before/while the request ran
  kCircuitOpen,      ///< the service breaker is open (backend failing hard)
  kShutdown,         ///< the service is draining and admits nothing new
  kCancelled,        ///< the caller cancelled (hedged-request loser)
  kShardDown,        ///< every replica of the routed shard is quarantined
  kUnknownHandle,    ///< a by-handle operand is not resident in the store
};

/// Human-readable rejection name (doubles as the metric label suffix of
/// "service.shed_total.<reason>").
const char* to_string(RejectReason reason);

/// An absolute point in time after which a request must stop consuming
/// resources.  Default-constructed: no deadline.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `d` from now.
  static Deadline after(std::chrono::microseconds d) {
    Deadline dl;
    dl.at_ = std::chrono::steady_clock::now() + d;
    return dl;
  }
  static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::microseconds(ms * 1000));
  }

  bool has_deadline() const { return at_.has_value(); }

  /// True when the deadline has passed (never true without a deadline).
  bool expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

  /// Microseconds until expiry, clamped at 0; nullopt without a deadline.
  /// Backoff sleeps clamp to this so a retry never blocks a worker past
  /// the point where the request could still complete.
  std::optional<std::uint64_t> remaining_us() const {
    if (!at_.has_value()) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        *at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<std::uint64_t>(left.count()) : 0u;
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

/// One unit of service work: diff a reference/scan image pair.
struct ServiceRequest {
  std::uint64_t id = 0;
  Priority priority = Priority::kBatch;
  Deadline deadline;  ///< default: none

  /// Cooperative cancellation, checked everywhere the deadline is checked
  /// (dequeue and between rows).  The shard router sets the loser's token
  /// when a hedged request's first response wins; the loser stops consuming
  /// engine cycles at the next row boundary and responds
  /// Rejected{cancelled}.  Null: not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;

  bool cancelled() const {
    return cancel && cancel->load(std::memory_order_acquire);
  }

  /// Routing handle for the shard router: requests with equal keys land on
  /// the same shard (and replica preference order).  0 = derive from the
  /// image content fingerprints, so re-submissions of the same pair route
  /// identically without the caller managing handles.
  std::uint64_t route_key = 0;

  RleImage reference{0, 0};
  RleImage scan{0, 0};
  ImageDiffOptions options;

  /// By-handle operands: non-zero handles name images registered in the
  /// router's ImageStore (handle = canonical-bytes fingerprint, see
  /// store/image_store.hpp), replacing the by-value images above.  The
  /// router resolves them at submit (unknown handle = typed shed,
  /// kUnknownHandle) and pins the resolved images for the request's
  /// lifetime in pinned_ref/pinned_scan; the engines then read through
  /// ref_image()/scan_image(), which prefer the pinned parse.
  ImageHandle ref_handle = 0;
  ImageHandle scan_handle = 0;
  PinnedImage pinned_ref;
  PinnedImage pinned_scan;

  bool by_handle() const { return ref_handle != 0 || scan_handle != 0; }

  /// The reference/scan operand actually in effect: the pinned store image
  /// for by-handle requests, the by-value member otherwise.
  const RleImage& ref_image() const {
    return pinned_ref ? pinned_ref.image() : reference;
  }
  const RleImage& scan_image() const {
    return pinned_scan ? pinned_scan.image() : scan;
  }

  /// Inject this fault into every checked-engine row (tests, bench,
  /// campaign integration); requires the service's checked mode.
  std::optional<FaultSpec> fault;

  /// Test hook: replaces the row engine exactly like
  /// StreamDiffer::set_engine_override, with service-level retries applied
  /// around it.
  StreamDiffer::RowEngine engine_override;

  /// When false the per-row outputs are discarded (load benches that only
  /// measure latency).
  bool keep_diff = true;

  /// Observability identity (telemetry/request_context.hpp).  The shard
  /// router stamps it on every backend submission (client id, dispatch
  /// attempt, shard/replica); a standalone DiffService self-stamps an
  /// unrouted context at admission.  Spans and flight-recorder events
  /// recorded while the request runs carry this identity.
  RequestContext ctx;
};

/// What happened to one admitted request.  Exactly one response is
/// delivered per admitted request; submit-time rejections are returned
/// synchronously and produce no response.
struct ServiceResponse {
  enum class Status {
    kCompleted,  ///< every row computed (possibly via retry or fallback)
    kRejected,   ///< shed after admission; see reject_reason
    kFailed,     ///< some rows unrecovered (fallback disabled); diff partial
  };

  std::uint64_t id = 0;
  Priority priority = Priority::kBatch;
  Status status = Status::kCompleted;
  RejectReason reject_reason = RejectReason::kDeadlineExpired;  ///< kRejected

  RleImage diff{0, 0};  ///< rows processed so far (empty if !keep_diff)
  /// True when the router answered from the result cache: the payload is
  /// bit-identical to the original completion and no engine ran.
  bool from_cache = false;
  std::uint64_t rows_processed = 0;
  std::uint64_t fallback_rows = 0;     ///< rows served by sequential engine
  std::uint64_t unrecovered_rows = 0;  ///< rows nobody could compute
  std::uint64_t retries = 0;           ///< budgeted engine retries taken

  double queue_us = 0.0;    ///< admission -> dequeue
  double service_us = 0.0;  ///< dequeue -> done
  double total_us = 0.0;    ///< admission -> done
};

/// Human-readable status name.
const char* to_string(ServiceResponse::Status status);

}  // namespace sysrle
