#include "store/durable_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "rle/serialize.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

std::string store_journal_path(const std::string& dir) {
  return dir + "/store.journal";
}

std::string store_snapshot_path(const std::string& dir) {
  return dir + "/store.snapshot";
}

namespace {

/// Parses canonical SRLB bytes through the hardened reader.  Returns false
/// (instead of throwing) when the reader refuses them.
bool parse_image(const std::string& bytes, RleImage& out) {
  try {
    std::istringstream in(bytes);
    out = read_rle(in);
    return true;
  } catch (const contract_error&) {
    return false;
  }
}

/// Clips a journal file to its clean prefix so the append side can reopen
/// it.  A file whose header is bad is removed outright (it was never a
/// journal this version can extend).
void clip_journal_file(const std::string& path, const JournalLoadResult& load) {
  if (!load.file_present) return;
  if (!load.header_ok) {
    SYSRLE_REQUIRE(std::remove(path.c_str()) == 0,
                   "recovery: cannot remove unreadable journal " + path);
    return;
  }
  if (load.salvaged_tail_bytes == 0) return;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  SYSRLE_REQUIRE(fd >= 0, "recovery: cannot open journal for salvage: " +
                              path + ": " + std::strerror(errno));
  const int trc = ::ftruncate(fd, static_cast<off_t>(load.clean_bytes));
  const int frc = trc == 0 ? ::fsync(fd) : -1;
  ::close(fd);
  SYSRLE_REQUIRE(trc == 0 && frc == 0,
                 "recovery: journal salvage truncate failed for " + path);
}

}  // namespace

DurableStore::DurableStore(DurableStoreConfig cfg) : cfg_(std::move(cfg)) {
  SYSRLE_REQUIRE(!cfg_.dir.empty(), "DurableStore: dir must be set");

  // The store journals every eviction.  journal_ is still null while
  // recovery replays — replayed evictions are already on disk.
  StoreConfig store_cfg = cfg_.store;
  auto chained = store_cfg.on_evict;
  store_cfg.on_evict = [this, chained](ImageHandle handle) {
    if (journal_) journal_->append_evict(handle);
    if (chained) chained(handle);
  };
  store_ = std::make_shared<ImageStore>(store_cfg);

  const std::string snap_path = store_snapshot_path(cfg_.dir);
  const std::string jour_path = store_journal_path(cfg_.dir);
  SnapshotLoadResult snap = load_snapshot(snap_path);
  JournalLoadResult jour = load_journal(jour_path);

  recovery_.snapshot_present = snap.file_present;
  recovery_.snapshot_header_ok = snap.header_ok;
  recovery_.snapshot_entries = snap.entries.size();
  recovery_.snapshot_salvaged_bytes = snap.salvaged_tail_bytes;
  recovery_.snapshot_tail_reason = snap.tail_reason;
  recovery_.journal_present = jour.file_present;
  recovery_.journal_header_ok = jour.header_ok;
  recovery_.journal_records = jour.records.size();
  recovery_.journal_salvaged_bytes = jour.salvaged_tail_bytes;
  recovery_.journal_tail_reason = jour.tail_reason;

  for (const SnapshotEntry& entry : snap.entries)
    replay_register(entry.handle, entry.label, entry.bytes);
  for (const JournalRecord& record : jour.records) {
    if (record.kind == JournalRecordKind::kRegister) {
      replay_register(record.handle, record.label, record.bytes);
    } else {
      if (store_->evict(record.handle))
        ++recovery_.replayed_evicts;
      else
        ++recovery_.evicts_unmatched;
    }
  }

  // From here on the journal is live: clip the tail we refused to replay,
  // then reopen for appending.
  clip_journal_file(jour_path, jour);
  journal_ = std::make_unique<StoreJournal>(jour_path, cfg_.journal_fsync_every);

  const bool had_state = snap.file_present || !jour.records.empty() ||
                         recovery_.salvaged_bytes() > 0;
  if (cfg_.snapshot_on_recovery && had_state) {
    const std::lock_guard<std::mutex> lock(op_mu_);
    snapshot_locked();
  }

  if (telemetry_enabled()) {
    MetricsRegistry& m = global_metrics();
    m.add("store.recovery.replayed",
          recovery_.replayed_registers + recovery_.replayed_evicts);
    if (recovery_.dropped() > 0)
      m.add("store.recovery.dropped", recovery_.dropped());
    if (recovery_.salvaged_bytes() > 0)
      m.add("store.recovery.salvaged_bytes", recovery_.salvaged_bytes());
  }
}

std::uint64_t DurableStore::fingerprint_of(const RleImage& image) const {
  return cfg_.store.fingerprint_override ? cfg_.store.fingerprint_override(image)
                                         : canonical_fingerprint(image);
}

void DurableStore::replay_register(ImageHandle handle, const std::string& label,
                                   const std::string& bytes) {
  RleImage image(0, 0);
  if (!parse_image(bytes, image)) {
    ++recovery_.dropped_malformed;
    flight_record(FlightEventKind::kRecoveryDrop, RequestContext{}, "malformed",
                  handle);
    return;
  }
  // End-to-end content addressing: the bytes must hash to the handle they
  // were filed under, or they are not the image the journal acknowledged.
  if (fingerprint_of(image) != handle) {
    ++recovery_.dropped_fingerprint;
    flight_record(FlightEventKind::kRecoveryDrop, RequestContext{},
                  "fingerprint_mismatch", handle);
    return;
  }
  const ImageStore::RegisterResult result = store_->register_image(image);
  if (result.ok) {
    ++recovery_.replayed_registers;
    if (!label.empty()) {
      labels_[label] = result.handle;
      handle_label_.emplace(result.handle, label);
    }
  } else {
    ++recovery_.dropped_collision;
    flight_record(FlightEventKind::kRecoveryDrop, RequestContext{}, "collision",
                  handle);
  }
}

ImageStore::RegisterResult DurableStore::register_image(
    const RleImage& image, const std::string& label) {
  const std::lock_guard<std::mutex> lock(op_mu_);
  const ImageStore::RegisterResult result = store_->register_image(image);
  if (!result.ok) return result;
  journal_->append_register(result.handle, label, canonical_rle_bytes(image));
  if (!label.empty()) {
    labels_[label] = result.handle;
    handle_label_.emplace(result.handle, label);
  }
  ++records_since_snapshot_;
  if (cfg_.snapshot_every > 0 &&
      records_since_snapshot_ >= cfg_.snapshot_every)
    snapshot_locked();
  return result;
}

bool DurableStore::evict(ImageHandle handle) {
  const std::lock_guard<std::mutex> lock(op_mu_);
  // The store's on_evict hook journals the record.
  const bool ok = store_->evict(handle);
  if (ok) {
    ++records_since_snapshot_;
    if (cfg_.snapshot_every > 0 &&
        records_since_snapshot_ >= cfg_.snapshot_every)
      snapshot_locked();
  }
  return ok;
}

void DurableStore::sync() { journal_->sync(); }

void DurableStore::snapshot_now() {
  const std::lock_guard<std::mutex> lock(op_mu_);
  snapshot_locked();
}

void DurableStore::snapshot_locked() {
  std::vector<SnapshotEntry> entries;
  for (ImageStore::ResidentEntry& re : store_->resident_entries()) {
    SnapshotEntry entry;
    entry.handle = re.handle;
    auto found = handle_label_.find(re.handle);
    if (found != handle_label_.end()) entry.label = found->second;
    entry.bytes = std::move(re.bytes);
    entries.push_back(std::move(entry));
  }
  write_snapshot(store_snapshot_path(cfg_.dir), entries);
  // Only now — with the snapshot durably renamed in place — may the journal
  // forget the records it covers.
  journal_->truncate_to_header();
  records_since_snapshot_ = 0;
  ++snapshots_;
  last_snapshot_entries_ = entries.size();
  if (telemetry_enabled()) global_metrics().add("store.snapshot.writes");
  flight_record(FlightEventKind::kSnapshot, RequestContext{}, "",
                entries.size());
}

std::map<std::string, ImageHandle> DurableStore::labels() const {
  const std::lock_guard<std::mutex> lock(op_mu_);
  return labels_;
}

DurabilityStats DurableStore::durability_stats() const {
  const std::lock_guard<std::mutex> lock(op_mu_);
  DurabilityStats stats;
  stats.journal = journal_->stats();
  stats.journal_size_bytes = journal_->size_bytes();
  stats.snapshots = snapshots_;
  stats.last_snapshot_entries = last_snapshot_entries_;
  stats.recovery = recovery_;
  return stats;
}

FsckReport fsck_store_dir(const std::string& dir) {
  FsckReport report;
  const auto verify = [&report](ImageHandle handle, const std::string& bytes) {
    RleImage image(0, 0);
    if (!parse_image(bytes, image)) {
      ++report.malformed_images;
      return;
    }
    if (canonical_fingerprint(image) != handle) {
      ++report.fingerprint_mismatches;
      return;
    }
    ++report.verified_images;
  };

  const SnapshotLoadResult snap = load_snapshot(store_snapshot_path(dir));
  report.snapshot_present = snap.file_present;
  report.snapshot_header_ok = snap.header_ok;
  report.snapshot_entries = snap.entries.size();
  report.snapshot_salvaged_bytes = snap.salvaged_tail_bytes;
  report.snapshot_tail_reason = snap.tail_reason;
  for (const SnapshotEntry& entry : snap.entries)
    verify(entry.handle, entry.bytes);

  const JournalLoadResult jour = load_journal(store_journal_path(dir));
  report.journal_present = jour.file_present;
  report.journal_header_ok = jour.header_ok;
  report.journal_salvaged_bytes = jour.salvaged_tail_bytes;
  report.journal_tail_reason = jour.tail_reason;
  for (const JournalRecord& record : jour.records) {
    if (record.kind == JournalRecordKind::kRegister) {
      ++report.journal_registers;
      verify(record.handle, record.bytes);
    } else {
      ++report.journal_evicts;
    }
  }
  return report;
}

}  // namespace sysrle
