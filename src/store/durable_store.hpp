#pragma once
// DurableStore: crash-safe persistence around ImageStore.
//
// The in-memory store (image_store.hpp) is rebuilt from a directory of two
// files — a snapshot (store_snapshot.hpp) and a write-ahead journal
// (store_journal.hpp):
//
//   register  journaled (label + canonical bytes) after the in-memory
//             registration succeeds; acknowledged once the journal fsync
//             covering the record returns.
//   evict     journaled from inside the store's eviction path (budget or
//             explicit), so replay reproduces the same resident set.
//   snapshot  every `snapshot_every` journal records (and at the end of
//             every recovery) the resident set is compacted into a fresh
//             snapshot — write-temp, fsync, atomic rename, directory fsync —
//             and only then is the journal truncated back to its header.
//
// Recovery (the constructor) replays snapshot entries then journal records
// through the hardened SRLB reader and re-verifies every image's canonical
// fingerprint against its recorded handle.  Content addressing makes this
// end-to-end: a flipped bit in any at-rest byte either breaks a CRC (the
// record is salvaged away) or breaks the fingerprint match (the entry
// becomes a typed `recovery_dropped`) — a recovered handle can never serve
// bytes that do not fingerprint to it.  The prefix property follows from
// the salvage rules: the recovered store always equals the state after
// some prefix of the acknowledged record sequence.
//
// Thread-safe; mutations (register/evict/snapshot) serialize on one mutex
// so a snapshot can never truncate a journal record it did not capture.
// Lock order: DurableStore::op_mu_ -> ImageStore::mu_ -> StoreJournal::mu_.
//
// Metrics: store.journal.* (journal side), store.snapshot.writes,
// store.recovery.{replayed,dropped,salvaged_bytes}.  Flight events:
// journal_append, snapshot, recovery_drop (docs/OBSERVABILITY.md).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "store/image_store.hpp"
#include "store/store_journal.hpp"
#include "store/store_snapshot.hpp"

namespace sysrle {

/// On-disk layout inside a store directory.
std::string store_journal_path(const std::string& dir);
std::string store_snapshot_path(const std::string& dir);

struct DurableStoreConfig {
  std::string dir;    ///< required: the store directory (must exist)
  StoreConfig store;  ///< in-memory store config (capacity, slab, seams)
  /// Journal appends per fsync batch.  1 = every record is acknowledged
  /// before register_image returns.
  std::size_t journal_fsync_every = 1;
  /// Journal records between automatic snapshot compactions; 0 disables
  /// automatic snapshots (explicit snapshot_now() still works).
  std::uint64_t snapshot_every = 0;
  /// Compact once at the end of recovery when any prior state was found,
  /// leaving the directory canonical (fresh snapshot, empty journal).
  bool snapshot_on_recovery = true;
};

/// What the constructor's recovery pass found and did.
struct RecoveryReport {
  bool snapshot_present = false;
  bool snapshot_header_ok = true;
  std::uint64_t snapshot_entries = 0;  ///< clean entries loaded
  std::uint64_t snapshot_salvaged_bytes = 0;
  std::string snapshot_tail_reason;
  bool journal_present = false;
  bool journal_header_ok = true;
  std::uint64_t journal_records = 0;  ///< clean records loaded
  std::uint64_t journal_salvaged_bytes = 0;
  std::string journal_tail_reason;
  std::uint64_t replayed_registers = 0;  ///< accepted (dedup included)
  std::uint64_t replayed_evicts = 0;
  std::uint64_t dropped_malformed = 0;    ///< SRLB reader refused the bytes
  std::uint64_t dropped_fingerprint = 0;  ///< bytes do not hash to the handle
  std::uint64_t dropped_collision = 0;    ///< store refused (handle taken)
  std::uint64_t evicts_unmatched = 0;  ///< evict of a non-resident handle

  std::uint64_t dropped() const {
    return dropped_malformed + dropped_fingerprint + dropped_collision;
  }
  std::uint64_t salvaged_bytes() const {
    return snapshot_salvaged_bytes + journal_salvaged_bytes;
  }
};

/// One coherent snapshot of the durability counters, for the serve JSON
/// `durability{}` block.
struct DurabilityStats {
  JournalStats journal;
  std::uint64_t journal_size_bytes = 0;
  std::uint64_t snapshots = 0;  ///< snapshots written by this process
  std::uint64_t last_snapshot_entries = 0;
  RecoveryReport recovery;  ///< fixed at construction
};

class DurableStore {
 public:
  /// Recovers from cfg.dir (which must be an existing, writable directory)
  /// and opens the journal for appending.  Throws contract_error on I/O
  /// failure; at-rest *content* corruption never throws — it is salvaged or
  /// dropped and reported.
  explicit DurableStore(DurableStoreConfig cfg);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Registers and journals under `label`.  On ok (fresh or dedup) the
  /// record is appended and — at the default fsync batch of 1 — durable
  /// before this returns.  Collisions are refused and not journaled.
  ImageStore::RegisterResult register_image(const RleImage& image,
                                            const std::string& label);

  /// Explicit, journaled eviction.
  bool evict(ImageHandle handle);

  /// Forces pending journal appends to disk (for fsync batches > 1).
  void sync();

  /// Compacts now: snapshot the resident set, then truncate the journal.
  void snapshot_now();

  ImageStore& store() { return *store_; }
  const std::shared_ptr<ImageStore>& store_ptr() const { return store_; }

  const RecoveryReport& recovery() const { return recovery_; }
  /// label -> handle for every label ever journaled (recovered + live).
  std::map<std::string, ImageHandle> labels() const;
  DurabilityStats durability_stats() const;
  const std::string& dir() const { return cfg_.dir; }

 private:
  void replay_register(ImageHandle handle, const std::string& label,
                       const std::string& bytes);
  std::uint64_t fingerprint_of(const RleImage& image) const;
  void snapshot_locked();

  DurableStoreConfig cfg_;
  std::shared_ptr<ImageStore> store_;
  std::unique_ptr<StoreJournal> journal_;  ///< null only during replay
  RecoveryReport recovery_;
  mutable std::mutex op_mu_;
  std::map<std::string, ImageHandle> labels_;
  std::map<ImageHandle, std::string> handle_label_;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t last_snapshot_entries_ = 0;
};

/// Read-only integrity check of a store directory: structure, record CRCs,
/// SRLB parse, and canonical-fingerprint match for every image, without
/// modifying a byte.  Backs `sysrle store fsck`.
struct FsckReport {
  bool snapshot_present = false;
  bool snapshot_header_ok = true;
  std::uint64_t snapshot_entries = 0;
  std::uint64_t snapshot_salvaged_bytes = 0;
  std::string snapshot_tail_reason;
  bool journal_present = false;
  bool journal_header_ok = true;
  std::uint64_t journal_registers = 0;
  std::uint64_t journal_evicts = 0;
  std::uint64_t journal_salvaged_bytes = 0;
  std::string journal_tail_reason;
  std::uint64_t verified_images = 0;  ///< parsed + fingerprint-matched
  std::uint64_t malformed_images = 0;
  std::uint64_t fingerprint_mismatches = 0;

  bool clean() const {
    return snapshot_header_ok && journal_header_ok &&
           snapshot_salvaged_bytes == 0 && journal_salvaged_bytes == 0 &&
           malformed_images == 0 && fingerprint_mismatches == 0;
  }
};

FsckReport fsck_store_dir(const std::string& dir);

}  // namespace sysrle
