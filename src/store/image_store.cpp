#include "store/image_store.hpp"

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "rle/serialize.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

ImageStore::ImageStore(StoreConfig config)
    : config_(std::move(config)), arena_(config_.slab_bytes) {
  SYSRLE_REQUIRE(config_.capacity_bytes > 0,
                 "ImageStore: capacity must be positive");
}

void ImageStore::evict_for_locked(std::size_t incoming) {
  // Walk from the LRU tail; pinned entries are skipped (and counted), so a
  // fully pinned store simply overshoots its budget rather than refusing
  // the registration or yanking an image out from under a diff.
  auto it = lru_.end();
  while (resident_bytes_ + incoming > config_.capacity_bytes &&
         it != lru_.begin()) {
    --it;
    auto found = entries_.find(*it);
    SYSRLE_REQUIRE(found != entries_.end(), "ImageStore: LRU/map desync");
    Entry& entry = *found->second;
    if (entry.pins.load(std::memory_order_acquire) > 0) {
      ++evict_blocked_by_pin_;
      if (telemetry_enabled())
        global_metrics().add("store.evict_blocked_by_pin");
      continue;
    }
    const ImageHandle fp = entry.fingerprint;
    resident_bytes_ -= entry.bytes;
    arena_.release(entry.span);
    it = lru_.erase(it);  // next iteration re-decrements onto the new tail
    entries_.erase(found);
    ++evicted_;
    if (telemetry_enabled()) global_metrics().add("store.evictions");
    flight_record(FlightEventKind::kStoreEvict, RequestContext{}, "", fp);
    if (config_.on_evict) config_.on_evict(fp);
  }
}

bool ImageStore::evict(ImageHandle handle) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto found = entries_.find(handle);
  if (found == entries_.end()) return false;
  Entry& entry = *found->second;
  if (entry.pins.load(std::memory_order_acquire) > 0) {
    ++evict_blocked_by_pin_;
    if (telemetry_enabled())
      global_metrics().add("store.evict_blocked_by_pin");
    return false;
  }
  resident_bytes_ -= entry.bytes;
  arena_.release(entry.span);
  lru_.erase(entry.lru);
  entries_.erase(found);
  ++evicted_;
  if (telemetry_enabled()) {
    global_metrics().add("store.evictions");
    export_gauges_locked();
  }
  flight_record(FlightEventKind::kStoreEvict, RequestContext{}, "", handle);
  if (config_.on_evict) config_.on_evict(handle);
  return true;
}

std::vector<ImageStore::ResidentEntry> ImageStore::resident_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResidentEntry> out;
  out.reserve(entries_.size());
  // lru_ front = most recent; walk from the back so the result replays
  // oldest-first.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto found = entries_.find(*it);
    SYSRLE_REQUIRE(found != entries_.end(), "ImageStore: LRU/map desync");
    const Entry& entry = *found->second;
    ResidentEntry re;
    re.handle = entry.fingerprint;
    re.bytes.assign(static_cast<const char*>(
                        static_cast<const void*>(entry.span.data)),
                    entry.span.size);
    out.push_back(std::move(re));
  }
  return out;
}

ImageStore::RegisterResult ImageStore::register_image(const RleImage& image) {
  const std::uint64_t fp = config_.fingerprint_override
                               ? config_.fingerprint_override(image)
                               : canonical_fingerprint(image);
  std::string bytes = canonical_rle_bytes(image);

  const std::lock_guard<std::mutex> lock(mu_);
  RegisterResult result;
  result.handle = fp;
  auto found = entries_.find(fp);
  if (found != entries_.end()) {
    Entry& entry = *found->second;
    const bool same = entry.span.size == bytes.size() &&
                      std::memcmp(entry.span.data, bytes.data(),
                                  bytes.size()) == 0;
    if (same) {
      // Already resident: dedup, and refresh its recency.
      lru_.splice(lru_.begin(), lru_, entry.lru);
      ++dedup_hits_;
      if (telemetry_enabled()) global_metrics().add("store.dedup_hits");
      result.ok = true;
      result.deduplicated = true;
      return result;
    }
    // Fingerprint taken by different content.  Refuse — the caller gets a
    // typed failure instead of two images silently sharing one handle.
    ++collisions_;
    if (telemetry_enabled()) global_metrics().add("store.collisions");
    result.collision = true;
    return result;
  }

  evict_for_locked(bytes.size());
  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fp;
  // Store the canonical parse: by-handle diffs then never pay a per-request
  // canonicalization, and the resident image matches the canonical bytes.
  std::vector<RleRow> rows;
  rows.reserve(static_cast<std::size_t>(image.height()));
  for (const RleRow& row : image.rows())
    rows.push_back(row.is_canonical() ? row : row.canonical());
  entry->image = RleImage(image.width(), std::move(rows));
  entry->span = arena_.store(bytes.data(), bytes.size());
  entry->bytes = bytes.size();
  lru_.push_front(fp);
  entry->lru = lru_.begin();
  resident_bytes_ += entry->bytes;
  entries_.emplace(fp, std::move(entry));
  ++registered_;
  if (telemetry_enabled()) {
    global_metrics().add("store.registered");
    export_gauges_locked();
  }
  result.ok = true;
  return result;
}

PinnedImage ImageStore::acquire(ImageHandle handle) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto found = entries_.find(handle);
  if (found == entries_.end()) {
    ++lookup_misses_;
    if (telemetry_enabled()) global_metrics().add("store.lookup_misses");
    return PinnedImage{};
  }
  std::shared_ptr<Entry> entry = found->second;
  lru_.splice(lru_.begin(), lru_, entry->lru);
  ++acquires_;
  if (telemetry_enabled()) global_metrics().add("store.acquires");

  entry->pins.fetch_add(1, std::memory_order_acq_rel);
  PinnedImage pinned;
  // Aliasing pointer: shares the entry's lifetime but exposes the image, so
  // a cached share() outlives eviction without blocking it.
  pinned.image_ = std::shared_ptr<const RleImage>(entry, &entry->image);
  // One pin token per acquire; copies of the PinnedImage share it, and the
  // last copy's destructor releases the pin lock-free.
  pinned.pin_ = std::shared_ptr<void>(
      static_cast<void*>(nullptr), [entry](void*) {
        entry->pins.fetch_sub(1, std::memory_order_acq_rel);
      });
  pinned.handle_ = handle;
  pinned.bytes_ = entry->bytes;
  return pinned;
}

bool ImageStore::contains(ImageHandle handle) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(handle) != 0;
}

StoreStats ImageStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  StoreStats s;
  s.registered = registered_;
  s.dedup_hits = dedup_hits_;
  s.collisions = collisions_;
  s.evicted = evicted_;
  s.evict_blocked_by_pin = evict_blocked_by_pin_;
  s.acquires = acquires_;
  s.lookup_misses = lookup_misses_;
  s.resident = entries_.size();
  s.resident_bytes = resident_bytes_;
  for (const auto& [fp, entry] : entries_)
    if (entry->pins.load(std::memory_order_acquire) > 0) ++s.pinned;
  return s;
}

SlabArena::Stats ImageStore::arena_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return arena_.stats();
}

void ImageStore::export_gauges_locked() const {
  MetricsRegistry& m = global_metrics();
  m.set_gauge("store.resident", static_cast<double>(entries_.size()));
  m.set_gauge("store.resident_bytes", static_cast<double>(resident_bytes_));
}

}  // namespace sysrle
