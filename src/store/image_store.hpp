#pragma once
// ImageStore: a long-lived, content-addressed store of RLE images.
//
// The serving path used to re-parse every operand on every request; for the
// golden-panel workload (one hot reference image diffed by every scan) the
// parse dominated small-diff service time.  The store registers an image
// once under a content-addressed handle — the FNV-1a fingerprint of its
// canonical serialized bytes (rle/serialize.hpp) — and hot requests then
// submit by handle: the router resolves the handle to a pinned, already-
// parsed image, so the reference is parsed zero times per request and the
// handle doubles as a stable shard-routing key.
//
// Safety contracts:
//   collision  a register whose fingerprint is already taken by *different*
//              bytes is refused (RegisterResult::collision) — the Coalescer
//              idiom: a 64-bit collision degrades to "this image cannot be
//              stored", never to two images silently sharing a handle;
//   pinning    acquire() returns a PinnedImage holding a refcount; a pinned
//              entry is never evicted, so an image cannot vanish mid-diff.
//              Pins released after eviction-time store destruction remain
//              safe (the entry is shared-ptr-owned past the store);
//   budget     byte-budgeted LRU eviction over the canonical bytes; the
//              identity registered == resident + evicted always holds
//              (bench_store asserts it), and pinned entries may push the
//              store transiently over budget (evict_blocked_by_pin counts
//              every such skip).
//
// Thread-safe: all entry points lock; pin release is a lock-free atomic
// decrement so dropping a PinnedImage never contends with the serving path.
//
// Metrics (docs/OBSERVABILITY.md): store.registered, store.dedup_hits,
// store.collisions, store.evictions, store.evict_blocked_by_pin,
// store.acquires, store.lookup_misses, store.resident / .resident_bytes
// gauges.  Evictions record a FlightRecorder store_evict event.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rle/rle_image.hpp"
#include "store/slab_arena.hpp"

namespace sysrle {

/// Content-addressed image handle: the canonical-bytes fingerprint.  Equal
/// handles name equal pixels (the store refuses colliding registrations).
/// 0 is reserved for "no handle" in the service request vocabulary.
using ImageHandle = std::uint64_t;

struct StoreConfig {
  /// Byte budget over resident canonical bytes; registration evicts the LRU
  /// tail past it.  Pinned entries are skipped, so the budget can be
  /// overshot while pins hold.
  std::size_t capacity_bytes = std::size_t{64} << 20;
  std::size_t slab_bytes = std::size_t{1} << 20;
  /// Test seam: replaces canonical_fingerprint so fingerprint collisions
  /// (unconstructable for the real 64-bit hash) are testable.
  std::function<std::uint64_t(const RleImage&)> fingerprint_override;
  /// Durability seam: invoked (with the store lock held) for every eviction,
  /// budget-driven or explicit.  The callback must not re-enter the store.
  std::function<void(ImageHandle)> on_evict;
};

/// One coherent snapshot of the store counters.
struct StoreStats {
  std::uint64_t registered = 0;  ///< accepted registrations (dedup excluded)
  std::uint64_t dedup_hits = 0;  ///< re-registrations of a resident image
  std::uint64_t collisions = 0;  ///< refused: fingerprint taken by other bytes
  std::uint64_t evicted = 0;
  std::uint64_t evict_blocked_by_pin = 0;
  std::uint64_t acquires = 0;
  std::uint64_t lookup_misses = 0;  ///< acquire() of unknown/evicted handles
  std::size_t resident = 0;
  std::size_t resident_bytes = 0;  ///< canonical bytes of resident entries
  std::size_t pinned = 0;          ///< resident entries with a live pin

  /// Every accepted registration is still resident or was evicted.
  bool accounted() const { return registered == resident + evicted; }
};

class ImageStore;

/// A pinned, parsed image.  While any copy is alive the underlying store
/// entry cannot be evicted; copies share one pin (refcounted token), and
/// the last copy releases it with a single atomic decrement.  Safe to hold
/// across the owning store's eviction or destruction.
class PinnedImage {
 public:
  PinnedImage() = default;

  explicit operator bool() const { return image_ != nullptr; }
  const RleImage& image() const { return *image_; }
  ImageHandle handle() const { return handle_; }
  /// Canonical-bytes size (the entry's byte-budget charge).
  std::size_t bytes() const { return bytes_; }

  /// Shares the parsed image without pin semantics: the returned pointer
  /// keeps the image alive (past eviction) but does not block eviction.
  /// Store entries are stable, so pointer equality of two shares means
  /// same entry — the result cache's collision fast path.
  std::shared_ptr<const RleImage> share() const { return image_; }

 private:
  friend class ImageStore;
  std::shared_ptr<const RleImage> image_;  ///< aliases the store entry
  std::shared_ptr<void> pin_;              ///< shared pin token
  ImageHandle handle_ = 0;
  std::size_t bytes_ = 0;
};

/// The store.  See the header comment for the contracts.
class ImageStore {
 public:
  struct RegisterResult {
    bool ok = false;
    ImageHandle handle = 0;
    bool deduplicated = false;  ///< the image was already resident
    bool collision = false;     ///< refused: handle taken by different bytes
  };

  explicit ImageStore(StoreConfig config = {});

  ImageStore(const ImageStore&) = delete;
  ImageStore& operator=(const ImageStore&) = delete;

  /// Registers (a parsed copy of) `image` under its content handle.
  /// Re-registering resident content dedups to the existing handle.
  RegisterResult register_image(const RleImage& image);

  /// Pins and returns the image, or an empty PinnedImage when the handle is
  /// unknown (never registered, refused, or evicted).
  PinnedImage acquire(ImageHandle handle);

  bool contains(ImageHandle handle) const;

  /// Explicitly evicts one entry (journal replay / administrative drop).
  /// Returns false when the handle is unknown or the entry is pinned; a
  /// successful evict counts toward `evicted` exactly like a budget evict.
  bool evict(ImageHandle handle);

  struct ResidentEntry {
    ImageHandle handle = 0;
    std::string bytes;  ///< canonical SRLB bytes (a copy of the span)
  };
  /// Copies out every resident entry's canonical bytes, least recently used
  /// first, so replaying the list in order reproduces today's LRU order.
  std::vector<ResidentEntry> resident_entries() const;

  StoreStats stats() const;
  SlabArena::Stats arena_stats() const;
  std::size_t capacity_bytes() const { return config_.capacity_bytes; }

 private:
  struct Entry {
    ImageHandle fingerprint = 0;
    RleImage image{0, 0};
    SlabArena::Span span;       ///< canonical bytes (identity + defense)
    std::size_t bytes = 0;      ///< budget charge (span size)
    std::atomic<std::uint64_t> pins{0};
    std::list<ImageHandle>::iterator lru;
  };

  /// Evicts LRU-tail unpinned entries until `incoming` more bytes fit (or
  /// nothing evictable remains).  Lock held.
  void evict_for_locked(std::size_t incoming);

  void export_gauges_locked() const;

  StoreConfig config_;
  mutable std::mutex mu_;
  SlabArena arena_;
  std::unordered_map<ImageHandle, std::shared_ptr<Entry>> entries_;
  std::list<ImageHandle> lru_;  ///< front = most recently used
  std::size_t resident_bytes_ = 0;
  std::uint64_t registered_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t evict_blocked_by_pin_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t lookup_misses_ = 0;
};

}  // namespace sysrle
