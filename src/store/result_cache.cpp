#include "store/result_cache.hpp"

#include <utility>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

ResultCache::ResultCache(CacheConfig config) : config_(config) {
  SYSRLE_REQUIRE(config_.capacity_bytes > 0,
                 "ResultCache: capacity must be positive");
}

std::size_t ResultCache::cost_of(const RleImage& diff) {
  // Run storage plus per-row vector overhead plus a fixed per-entry charge
  // for the map/list/operand-reference bookkeeping.  Approximate is fine —
  // the budget bounds memory order-of-magnitude, not byte-exactly.
  std::size_t bytes = 128;
  for (const RleRow& row : diff.rows())
    bytes += sizeof(RleRow) + row.run_count() * sizeof(Run);
  return bytes;
}

void ResultCache::evict_for_locked(std::size_t incoming) {
  while (resident_bytes_ + incoming > config_.capacity_bytes &&
         !lru_.empty()) {
    const ResultKey victim = lru_.back();
    auto found = entries_.find(victim);
    SYSRLE_REQUIRE(found != entries_.end(), "ResultCache: LRU/map desync");
    resident_bytes_ -= found->second.bytes;
    lru_.pop_back();
    entries_.erase(found);
    ++stats_.evictions;
    if (telemetry_enabled()) global_metrics().add("cache.evictions");
  }
}

std::shared_ptr<const CachedDiff> ResultCache::lookup(const ResultKey& key,
                                                      const RleImage& a,
                                                      const RleImage& b) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  if (telemetry_enabled()) global_metrics().add("cache.lookups");
  auto found = entries_.find(key);
  if (found != entries_.end()) {
    Entry& entry = found->second;
    // Collision defense: the key only *names* the operands; verify them.
    // Store entries are stable objects, so pointer equality (the common
    // case for by-handle requests) short-circuits the full compare.
    const bool same_a = entry.a.get() == &a || *entry.a == a;
    const bool same_b = entry.b.get() == &b || *entry.b == b;
    if (same_a && same_b) {
      lru_.splice(lru_.begin(), lru_, entry.lru);
      ++stats_.hits;
      if (telemetry_enabled()) global_metrics().add("cache.hits");
      return entry.result;
    }
    ++stats_.collisions;
    if (telemetry_enabled()) global_metrics().add("cache.collisions");
  }
  ++stats_.misses;
  if (telemetry_enabled()) global_metrics().add("cache.misses");
  return nullptr;
}

void ResultCache::insert(const ResultKey& key,
                         std::shared_ptr<const RleImage> a,
                         std::shared_ptr<const RleImage> b,
                         CachedDiff result) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto found = entries_.find(key);
  if (found != entries_.end()) {
    // Already cached (two primaries can race to completion under key
    // collision or promotion); keep the incumbent, refresh recency.
    lru_.splice(lru_.begin(), lru_, found->second.lru);
    return;
  }
  const std::size_t bytes = cost_of(result.diff);
  evict_for_locked(bytes);
  Entry entry;
  entry.a = std::move(a);
  entry.b = std::move(b);
  entry.result = std::make_shared<const CachedDiff>(std::move(result));
  entry.bytes = bytes;
  lru_.push_front(key);
  entry.lru = lru_.begin();
  resident_bytes_ += bytes;
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
  if (telemetry_enabled()) {
    MetricsRegistry& m = global_metrics();
    m.add("cache.insertions");
    m.set_gauge("cache.resident", static_cast<double>(entries_.size()));
    m.set_gauge("cache.resident_bytes", static_cast<double>(resident_bytes_));
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.resident = entries_.size();
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace sysrle
