#pragma once
// ResultCache: content-addressed cache of completed diff results.
//
// Once both operands of a diff live in the ImageStore, the result of
// diffing them is itself content-addressed: the key
// (fingerprint-a, fingerprint-b, engine, canonicalization) names exactly
// one output image, because every engine is bit-identical for a given
// input pair and option set.  The cache closes the loop the Coalescer
// opened: coalescing dedups *concurrent* identical diffs, the cache dedups
// *sequential* ones — the second identical by-handle request is answered
// from memory without invoking an engine at all.
//
// Collision defense (the Coalescer idiom): every hit is verified against
// the stored operands before it is served.  Entries keep shared_ptr
// references to the store's parsed images (via PinnedImage::share(), which
// keeps them alive past eviction without pinning them), so verification is
// usually a pointer-equality check and at worst a full image compare; a
// 64-bit key collision degrades to a miss, never to a wrong answer.
//
// Byte-budgeted LRU: entries are charged their diff's run storage plus the
// operand-reference overhead, and insertion evicts from the LRU tail.  The
// identity lookups == hits + misses always holds (collisions are counted
// inside misses); serve.v4 accounting and bench_store assert it.
//
// Thread-safe: one mutex over the map + LRU list.  The router calls
// lookup() under its own lock on the submit path and insert() on the
// completion path; lock ordering is always router → cache, never reversed.
//
// Metrics: cache.lookups, cache.hits, cache.misses, cache.collisions,
// cache.insertions, cache.evictions, cache.resident / .resident_bytes.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/image_diff.hpp"
#include "rle/rle_image.hpp"

namespace sysrle {

/// Identity of a by-handle diff result.  Deliberately its own type (not
/// CoalesceKey) so the store layer does not depend on the service layer;
/// the fields and hashing match the coalescer's key exactly.
struct ResultKey {
  std::uint64_t fp_a = 0;
  std::uint64_t fp_b = 0;
  DiffEngine engine = DiffEngine::kSystolic;
  bool canonicalize = true;

  friend bool operator==(const ResultKey&, const ResultKey&) = default;
};

struct ResultKeyHash {
  std::size_t operator()(const ResultKey& k) const {
    std::uint64_t h = k.fp_a * 0x9e3779b97f4a7c15ull;
    h ^= k.fp_b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= (static_cast<std::uint64_t>(k.engine) << 1) ^
         (k.canonicalize ? 0x2545f4914f6cdd1dull : 0);
    return static_cast<std::size_t>(h);
  }
};

/// One cached completion: the diff image plus the row counters the service
/// reported, so a cache hit reproduces the original response payload.
struct CachedDiff {
  RleImage diff{0, 0};
  std::uint64_t rows_processed = 0;
  std::uint64_t fallback_rows = 0;
};

struct CacheConfig {
  /// Byte budget over cached diffs (cost_of below); insert evicts past it.
  std::size_t capacity_bytes = std::size_t{16} << 20;
};

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< includes collisions
  std::uint64_t collisions = 0;  ///< key hit, operand verification failed
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t resident = 0;
  std::size_t resident_bytes = 0;

  /// Every lookup resolved to exactly one of hit or miss.
  bool accounted() const { return lookups == hits + misses; }
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `key`, or nullptr on miss.  `a`/`b` are
  /// the resolved operands; a key hit whose stored operands differ from
  /// them is a fingerprint collision — counted, reported as a miss.
  std::shared_ptr<const CachedDiff> lookup(const ResultKey& key,
                                           const RleImage& a,
                                           const RleImage& b);

  /// Inserts a completed result.  `a`/`b` are shared references to the
  /// operands (PinnedImage::share()) kept for collision verification.
  /// Re-inserting an existing key refreshes its recency only.
  void insert(const ResultKey& key, std::shared_ptr<const RleImage> a,
              std::shared_ptr<const RleImage> b, CachedDiff result);

  /// Byte charge of a cached diff (approximate heap footprint).
  static std::size_t cost_of(const RleImage& diff);

  CacheStats stats() const;
  std::size_t capacity_bytes() const { return config_.capacity_bytes; }

 private:
  struct Entry {
    std::shared_ptr<const RleImage> a;
    std::shared_ptr<const RleImage> b;
    std::shared_ptr<const CachedDiff> result;
    std::size_t bytes = 0;
    std::list<ResultKey>::iterator lru;
  };

  void evict_for_locked(std::size_t incoming);

  CacheConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<ResultKey, Entry, ResultKeyHash> entries_;
  std::list<ResultKey> lru_;  ///< front = most recently used
  std::size_t resident_bytes_ = 0;
  CacheStats stats_;
};

}  // namespace sysrle
