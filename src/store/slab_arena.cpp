#include "store/slab_arena.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace sysrle {

SlabArena::SlabArena(std::size_t slab_bytes) : slab_bytes_(slab_bytes) {
  SYSRLE_REQUIRE(slab_bytes_ > 0, "SlabArena: slab size must be positive");
}

std::size_t SlabArena::slab_for(std::size_t size) {
  if (open_ != kNoSlab) {
    Slab& open = slabs_[open_];
    if (open.capacity - open.used >= size) return open_;
  }
  // Reuse a freed slot before growing the vector, so a churn workload does
  // not leave an ever-growing trail of dead Slab entries.
  std::size_t slot = slabs_.size();
  for (std::size_t i = 0; i < slabs_.size(); ++i) {
    if (slabs_[i].capacity == 0 && i != open_) {
      slot = i;
      break;
    }
  }
  if (slot == slabs_.size()) slabs_.emplace_back();
  Slab& slab = slabs_[slot];
  slab.capacity = size > slab_bytes_ ? size : slab_bytes_;
  slab.bytes = std::make_unique<unsigned char[]>(slab.capacity);
  slab.used = 0;
  slab.live_spans = 0;
  ++stats_.slabs_allocated;
  stats_.reserved_bytes += slab.capacity;
  // Oversized spans fill their dedicated slab completely; keep the open
  // slab pointed at a shared chunk.
  if (size <= slab_bytes_) open_ = slot;
  return slot;
}

SlabArena::Span SlabArena::store(const void* data, std::size_t size) {
  if (size == 0) return Span{};
  const std::size_t slot = slab_for(size);
  Slab& slab = slabs_[slot];
  unsigned char* dst = slab.bytes.get() + slab.used;
  std::memcpy(dst, data, size);
  slab.used += size;
  ++slab.live_spans;
  ++stats_.spans_stored;
  stats_.live_bytes += size;
  return Span{dst, size, slot};
}

void SlabArena::release(Span& span) {
  if (!span.valid()) return;
  SYSRLE_REQUIRE(span.slab < slabs_.size() && slabs_[span.slab].live_spans > 0,
                 "SlabArena: release of a span this arena does not own");
  Slab& slab = slabs_[span.slab];
  --slab.live_spans;
  ++stats_.spans_released;
  stats_.live_bytes -= span.size;
  if (slab.live_spans == 0) {
    if (span.slab == open_) {
      // Recycle the open slab in place: the next store() bumps from 0.
      slab.used = 0;
    } else {
      stats_.reserved_bytes -= slab.capacity;
      ++stats_.slabs_freed;
      slab.bytes.reset();
      slab.capacity = 0;
      slab.used = 0;
    }
  }
  span = Span{};
}

}  // namespace sysrle
