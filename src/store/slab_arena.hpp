#pragma once
// SlabArena: bump allocation of immutable byte spans in shared slabs.
//
// The image store keeps the canonical serialized bytes of every resident
// image (its content identity and the collision-defense evidence) alive for
// the store's lifetime.  Allocating each byte string on the general heap
// would fragment it with thousands of medium-sized, long-lived blocks; the
// arena instead packs spans into slab chunks and frees a whole slab once
// every span in it has been released.  Spans are written once at store()
// and never mutated, so readers need no synchronization with the arena —
// the owning ImageStore serializes store()/release() under its own lock.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sysrle {

/// Arena of immutable byte spans packed into shared slabs.  Not thread-safe
/// on its own; the ImageStore guards it.
class SlabArena {
 public:
  /// One stored byte range.  `data` stays valid until release().
  struct Span {
    const unsigned char* data = nullptr;
    std::size_t size = 0;
    std::size_t slab = kNoSlab;  ///< owning slab index

    bool valid() const { return data != nullptr; }
  };

  static constexpr std::size_t kNoSlab = static_cast<std::size_t>(-1);

  /// `slab_bytes` is the shared-chunk size; spans larger than it get a
  /// dedicated exact-size slab.
  explicit SlabArena(std::size_t slab_bytes = std::size_t{1} << 20);

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Copies `size` bytes into the arena and returns their span.
  Span store(const void* data, std::size_t size);

  /// Releases one span.  When the last live span of a slab is released the
  /// slab is recycled (if it is the open slab) or its memory freed.
  void release(Span& span);

  struct Stats {
    std::uint64_t spans_stored = 0;
    std::uint64_t spans_released = 0;
    std::uint64_t slabs_allocated = 0;
    std::uint64_t slabs_freed = 0;
    std::size_t live_bytes = 0;      ///< bytes in unreleased spans
    std::size_t reserved_bytes = 0;  ///< bytes currently held in slabs
  };
  Stats stats() const { return stats_; }

 private:
  struct Slab {
    std::unique_ptr<unsigned char[]> bytes;
    std::size_t capacity = 0;
    std::size_t used = 0;        ///< bump offset
    std::size_t live_spans = 0;  ///< unreleased spans in this slab
  };

  /// Index of a slab with at least `size` free bytes (allocating or reusing
  /// a freed slot as needed).
  std::size_t slab_for(std::size_t size);

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t open_ = kNoSlab;  ///< slab currently taking new spans
  Stats stats_;
};

}  // namespace sysrle
