#include "store/store_journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace {

constexpr char kMagic[4] = {'S', 'R', 'L', 'J'};
constexpr std::size_t kHeaderBytes = 8;  // magic + u32 version
constexpr std::uint32_t kMaxLabel = 1u << 16;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::string header_bytes() {
  std::string h(kMagic, sizeof(kMagic));
  put_u32(h, StoreJournal::kVersion);
  return h;
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      SYSRLE_REQUIRE(false, "StoreJournal: write failed for " + path + ": " +
                                std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return crc;
}

/// The record CRC covers the 4 length-prefix bytes followed by the payload,
/// so framing corruption is as detectable as payload corruption.
std::uint32_t record_crc(std::uint32_t payload_len, const char* payload) {
  std::string len_le;
  put_u32(len_le, payload_len);
  std::uint32_t crc = 0xFFFFFFFFu;
  crc = crc32_update(crc, len_le.data(), len_le.size());
  crc = crc32_update(crc, payload, payload_len);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

std::uint32_t crc32_bytes(const void* data, std::size_t size) {
  return crc32_update(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

StoreJournal::StoreJournal(std::string path, std::size_t fsync_every)
    : path_(std::move(path)),
      fsync_every_(fsync_every == 0 ? 1 : fsync_every) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  SYSRLE_REQUIRE(fd_ >= 0, "StoreJournal: cannot open " + path_ + ": " +
                               std::strerror(errno));
  struct stat st {};
  SYSRLE_REQUIRE(::fstat(fd_, &st) == 0,
                 "StoreJournal: fstat failed for " + path_);
  if (st.st_size == 0) {
    const std::string header = header_bytes();
    write_all(fd_, header.data(), header.size(), path_);
    SYSRLE_REQUIRE(::fsync(fd_) == 0,
                   "StoreJournal: fsync failed for " + path_);
    file_bytes_ = header.size();
  } else {
    char buf[kHeaderBytes] = {};
    const ssize_t n = ::pread(fd_, buf, kHeaderBytes, 0);
    const bool ok = n == static_cast<ssize_t>(kHeaderBytes) &&
                    std::memcmp(buf, kMagic, sizeof(kMagic)) == 0 &&
                    get_u32(buf + 4) == kVersion;
    SYSRLE_REQUIRE(ok, "StoreJournal: " + path_ +
                           " exists but is not a v1 journal (salvage first)");
    file_bytes_ = static_cast<std::uint64_t>(st.st_size);
    SYSRLE_REQUIRE(::lseek(fd_, 0, SEEK_END) >= 0,
                   "StoreJournal: seek failed for " + path_);
  }
}

StoreJournal::~StoreJournal() {
  if (fd_ >= 0) {
    // Best effort: make the tail durable before letting go of the fd.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (pending_ > 0) {
        ::fsync(fd_);
        pending_ = 0;
      }
    }
    ::close(fd_);
  }
}

void StoreJournal::append_record_locked(const std::string& payload) {
  SYSRLE_REQUIRE(payload.size() <= kMaxPayload,
                 "StoreJournal: record payload exceeds kMaxPayload");
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string record;
  record.reserve(8 + payload.size());
  put_u32(record, len);
  put_u32(record, record_crc(len, payload.data()));
  record.append(payload);
  write_all(fd_, record.data(), record.size(), path_);
  file_bytes_ += record.size();
  ++stats_.appends;
  stats_.appended_bytes += record.size();
  ++pending_;
  if (telemetry_enabled()) {
    global_metrics().add("store.journal.appends");
    global_metrics().add("store.journal.bytes", record.size());
  }
  if (pending_ >= fsync_every_) sync_locked();
}

void StoreJournal::append_register(ImageHandle handle,
                                   const std::string& label,
                                   const std::string& bytes) {
  SYSRLE_REQUIRE(label.size() < kMaxLabel,
                 "StoreJournal: label too long to journal");
  std::string payload;
  payload.reserve(1 + 8 + 4 + label.size() + 8 + bytes.size());
  payload.push_back(static_cast<char>(JournalRecordKind::kRegister));
  put_u64(payload, handle);
  put_u32(payload, static_cast<std::uint32_t>(label.size()));
  payload.append(label);
  put_u64(payload, bytes.size());
  payload.append(bytes);
  const std::lock_guard<std::mutex> lock(mu_);
  append_record_locked(payload);
  flight_record(FlightEventKind::kJournalAppend, RequestContext{}, "register",
                handle);
}

void StoreJournal::append_evict(ImageHandle handle) {
  std::string payload;
  payload.reserve(1 + 8);
  payload.push_back(static_cast<char>(JournalRecordKind::kEvict));
  put_u64(payload, handle);
  const std::lock_guard<std::mutex> lock(mu_);
  append_record_locked(payload);
  flight_record(FlightEventKind::kJournalAppend, RequestContext{}, "evict",
                handle);
}

void StoreJournal::sync_locked() {
  if (pending_ == 0) return;
  SYSRLE_REQUIRE(::fsync(fd_) == 0,
                 "StoreJournal: fsync failed for " + path_);
  pending_ = 0;
  ++stats_.fsyncs;
  if (telemetry_enabled()) global_metrics().add("store.journal.fsyncs");
}

void StoreJournal::sync() {
  const std::lock_guard<std::mutex> lock(mu_);
  sync_locked();
}

void StoreJournal::truncate_to_header() {
  const std::lock_guard<std::mutex> lock(mu_);
  SYSRLE_REQUIRE(::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) == 0,
                 "StoreJournal: truncate failed for " + path_);
  SYSRLE_REQUIRE(::lseek(fd_, 0, SEEK_END) >= 0,
                 "StoreJournal: seek failed for " + path_);
  SYSRLE_REQUIRE(::fsync(fd_) == 0,
                 "StoreJournal: fsync failed for " + path_);
  file_bytes_ = kHeaderBytes;
  pending_ = 0;
  ++stats_.truncations;
  if (telemetry_enabled()) global_metrics().add("store.journal.truncations");
}

JournalStats StoreJournal::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t StoreJournal::size_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return file_bytes_;
}

JournalLoadResult load_journal(const std::string& path) {
  JournalLoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // missing file == empty journal
  result.file_present = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  SYSRLE_REQUIRE(!in.bad(), "load_journal: read failed for " + path);

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0 ||
      get_u32(data.data() + 4) != StoreJournal::kVersion) {
    result.header_ok = false;
    result.salvaged_tail_bytes = data.size();
    result.tail_reason = "bad_header";
    return result;
  }

  std::size_t pos = kHeaderBytes;
  const auto fail = [&](const char* reason) {
    result.salvaged_tail_bytes = data.size() - pos;
    result.tail_reason = reason;
  };
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      fail("torn_frame");
      break;
    }
    const std::uint32_t len = get_u32(data.data() + pos);
    const std::uint32_t crc = get_u32(data.data() + pos + 4);
    if (len > StoreJournal::kMaxPayload) {
      fail("oversize_length");
      break;
    }
    if (data.size() - pos - 8 < len) {
      fail("torn_payload");
      break;
    }
    const char* payload = data.data() + pos + 8;
    if (record_crc(len, payload) != crc) {
      fail("crc_mismatch");
      break;
    }

    JournalRecord record;
    record.offset = pos;
    record.length = 8 + static_cast<std::uint64_t>(len);
    bool parsed = false;
    if (len >= 9) {
      const auto kind = static_cast<unsigned char>(payload[0]);
      record.handle = get_u64(payload + 1);
      if (kind == static_cast<unsigned char>(JournalRecordKind::kEvict) &&
          len == 9) {
        record.kind = JournalRecordKind::kEvict;
        parsed = true;
      } else if (kind ==
                 static_cast<unsigned char>(JournalRecordKind::kRegister) &&
                 len >= 9 + 4) {
        const std::uint32_t label_len = get_u32(payload + 9);
        if (label_len < kMaxLabel &&
            len >= 9 + 4 + static_cast<std::uint64_t>(label_len) + 8) {
          record.label.assign(payload + 13, label_len);
          const std::uint64_t data_len = get_u64(payload + 13 + label_len);
          if (13 + label_len + 8 + data_len == len) {
            record.kind = JournalRecordKind::kRegister;
            record.bytes.assign(payload + 13 + label_len + 8,
                                static_cast<std::size_t>(data_len));
            parsed = true;
          }
        }
      }
    }
    if (!parsed) {
      // CRC says the bytes are what the writer wrote, but the payload does
      // not decode — a writer/reader version skew or an unknown kind.  The
      // salvage rule is the same: keep the clean prefix, stop here.
      fail("bad_payload");
      break;
    }
    result.records.push_back(std::move(record));
    pos += 8 + len;
  }
  result.clean_bytes = pos;
  return result;
}

}  // namespace sysrle
