#pragma once
// StoreJournal: the write-ahead journal behind the durable image store.
//
// One append-only file of length-prefixed, CRC-checksummed records.  Layout:
//
//   header   "SRLJ" + u32 version (little-endian)
//   record   u32 payload_len | u32 crc32(payload_len_le ++ payload) | payload
//   payload  u8 kind (1 = register, 2 = evict) + u64 handle
//            register adds: u32 label_len + label + u64 data_len + canonical
//            SRLB bytes (rle/serialize.hpp)
//
// The CRC covers the length prefix as well as the payload, so a flipped
// byte anywhere in a record — including the framing — is detected (CRC-32
// catches every burst error of 32 bits or fewer; a single corrupted byte
// is an 8-bit burst).  Appends are a single write(2) each and are made
// durable in batches: every `fsync_every` appends, and on demand via
// sync().  A record counts as *acknowledged* only once a sync covering it
// has returned — the recovery prefix property is stated over acknowledged
// records.
//
// Torn-tail salvage (load_journal): records are replayed up to the first
// bad one — short length word, length past EOF, oversize length, CRC
// mismatch, or unknown kind — and everything from that point on is
// reported as salvageable tail bytes.  A crash mid-write therefore loses
// at most the unacknowledged suffix, never a prefix record.  A missing
// file is an empty journal; a bad header quarantines the whole file (the
// loader reports it, recovery counts it, nothing is replayed).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "store/image_store.hpp"

namespace sysrle {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over a byte range.
std::uint32_t crc32_bytes(const void* data, std::size_t size);

enum class JournalRecordKind : std::uint8_t {
  kRegister = 1,
  kEvict = 2,
};

/// One decoded journal record.  `offset`/`length` locate the encoded record
/// in the file (offset of the length prefix), so crash-injection harnesses
/// can truncate or corrupt at exact record boundaries.
struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kRegister;
  ImageHandle handle = 0;
  std::string label;  ///< register only: the caller-visible image name
  std::string bytes;  ///< register only: canonical SRLB bytes
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t appended_bytes = 0;  ///< record bytes, header excluded
  std::uint64_t fsyncs = 0;
  std::uint64_t truncations = 0;
};

/// Append side.  Thread-safe; every entry point locks.  Construction opens
/// (creating when absent) the file, validates or writes the header, and
/// positions at the end.  Throws contract_error on I/O failure or on a file
/// whose header is not a journal header — callers salvage first (see
/// load_journal) and construct the writer on a clean file.
class StoreJournal {
 public:
  static constexpr std::uint32_t kVersion = 1;
  /// Framing cap: a length prefix past this is structural corruption, not a
  /// record (keeps salvage from attempting multi-GB allocations).
  static constexpr std::uint32_t kMaxPayload = 1u << 28;

  explicit StoreJournal(std::string path, std::size_t fsync_every = 1);
  ~StoreJournal();

  StoreJournal(const StoreJournal&) = delete;
  StoreJournal& operator=(const StoreJournal&) = delete;

  void append_register(ImageHandle handle, const std::string& label,
                       const std::string& bytes);
  void append_evict(ImageHandle handle);

  /// Forces everything appended so far to disk (fsync).  No-op when nothing
  /// is pending.
  void sync();

  /// Empties the journal back to a bare header + fsync.  Called only after
  /// a snapshot covering its records is durable.
  void truncate_to_header();

  JournalStats stats() const;
  std::uint64_t size_bytes() const;  ///< current file size, header included
  const std::string& path() const { return path_; }

 private:
  void append_record_locked(const std::string& payload);
  void sync_locked();

  std::string path_;
  std::size_t fsync_every_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t pending_ = 0;  ///< appends not yet covered by an fsync
  JournalStats stats_;
};

/// Read side, torn-tail salvage included.  Never throws on file *content*;
/// only an unreadable file (open/read errors on an existing path) throws.
struct JournalLoadResult {
  std::vector<JournalRecord> records;  ///< the clean prefix, in append order
  bool file_present = false;
  bool header_ok = true;          ///< false: not a journal — nothing replayed
  std::uint64_t clean_bytes = 0;  ///< header + clean records
  std::uint64_t salvaged_tail_bytes = 0;  ///< bytes past the clean prefix
  std::string tail_reason;  ///< empty when the file parsed to the last byte
};

JournalLoadResult load_journal(const std::string& path);

}  // namespace sysrle
