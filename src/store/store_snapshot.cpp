#include "store/store_snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/assert.hpp"
#include "store/store_journal.hpp"

namespace sysrle {

namespace {

constexpr char kMagic[4] = {'S', 'R', 'L', 'S'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;  // magic + u32 version + u64 count
constexpr std::uint32_t kMaxLabel = 1u << 16;
constexpr std::uint64_t kMaxData = 1u << 28;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

/// The per-entry CRC covers every field except the CRC word itself, in file
/// order: handle, label_len, label, data_len, data.
std::uint32_t entry_crc(const SnapshotEntry& e) {
  std::string head;
  put_u64(head, e.handle);
  put_u32(head, static_cast<std::uint32_t>(e.label.size()));
  head.append(e.label);
  put_u64(head, e.bytes.size());
  head.append(e.bytes);
  return crc32_bytes(head.data(), head.size());
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      SYSRLE_REQUIRE(false, "write_snapshot: write failed for " + path +
                                ": " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  SYSRLE_REQUIRE(dfd >= 0,
                 "write_snapshot: cannot open directory " + dir + ": " +
                     std::strerror(errno));
  const int rc = ::fsync(dfd);
  ::close(dfd);
  SYSRLE_REQUIRE(rc == 0, "write_snapshot: directory fsync failed for " + dir);
}

}  // namespace

void write_snapshot(const std::string& path,
                    const std::vector<SnapshotEntry>& entries) {
  std::string blob(kMagic, sizeof(kMagic));
  put_u32(blob, kVersion);
  put_u64(blob, entries.size());
  for (const SnapshotEntry& e : entries) {
    SYSRLE_REQUIRE(e.label.size() < kMaxLabel,
                   "write_snapshot: label too long");
    SYSRLE_REQUIRE(e.bytes.size() < kMaxData,
                   "write_snapshot: entry bytes exceed cap");
    put_u64(blob, e.handle);
    put_u32(blob, static_cast<std::uint32_t>(e.label.size()));
    blob.append(e.label);
    put_u64(blob, e.bytes.size());
    put_u32(blob, entry_crc(e));
    blob.append(e.bytes);
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  SYSRLE_REQUIRE(fd >= 0, "write_snapshot: cannot open " + tmp + ": " +
                              std::strerror(errno));
  write_all(fd, blob.data(), blob.size(), tmp);
  const int frc = ::fsync(fd);
  ::close(fd);
  SYSRLE_REQUIRE(frc == 0, "write_snapshot: fsync failed for " + tmp);
  SYSRLE_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "write_snapshot: rename to " + path + " failed: " +
                     std::strerror(errno));
  fsync_parent_dir(path);
}

SnapshotLoadResult load_snapshot(const std::string& path) {
  SnapshotLoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // missing file == empty snapshot
  result.file_present = true;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  SYSRLE_REQUIRE(!in.bad(), "load_snapshot: read failed for " + path);

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0 ||
      get_u32(data.data() + 4) != kVersion) {
    result.header_ok = false;
    result.salvaged_tail_bytes = data.size();
    result.tail_reason = "bad_header";
    return result;
  }
  result.declared_entries = get_u64(data.data() + 8);

  std::size_t pos = kHeaderBytes;
  const auto fail = [&](const char* reason) {
    result.salvaged_tail_bytes = data.size() - pos;
    result.tail_reason = reason;
  };
  for (std::uint64_t i = 0; i < result.declared_entries; ++i) {
    if (data.size() - pos < 8 + 4) {
      fail("torn_entry");
      break;
    }
    SnapshotEntry entry;
    entry.handle = get_u64(data.data() + pos);
    const std::uint32_t label_len = get_u32(data.data() + pos + 8);
    if (label_len >= kMaxLabel) {
      fail("oversize_label");
      break;
    }
    if (data.size() - pos < 8 + 4 + static_cast<std::size_t>(label_len) + 12) {
      fail("torn_entry");
      break;
    }
    entry.label.assign(data.data() + pos + 12, label_len);
    const std::uint64_t data_len = get_u64(data.data() + pos + 12 + label_len);
    const std::uint32_t crc = get_u32(data.data() + pos + 12 + label_len + 8);
    if (data_len >= kMaxData) {
      fail("oversize_entry");
      break;
    }
    const std::size_t body = pos + 12 + label_len + 12;
    if (data.size() - body < data_len) {
      fail("torn_entry");
      break;
    }
    entry.bytes.assign(data.data() + body, static_cast<std::size_t>(data_len));
    if (entry_crc(entry) != crc) {
      fail("crc_mismatch");
      break;
    }
    result.entries.push_back(std::move(entry));
    pos = body + static_cast<std::size_t>(data_len);
  }
  if (result.tail_reason.empty() && pos != data.size())
    fail("trailing_bytes");
  return result;
}

}  // namespace sysrle
