#pragma once
// StoreSnapshot: periodic compaction target for the durable image store.
//
// A snapshot is one self-verifying file holding every resident image's
// canonical SRLB bytes plus its label(s).  Layout (all little-endian):
//
//   header  "SRLS" + u32 version + u64 entry_count
//   entry   u64 handle | u32 label_len | label | u64 data_len |
//           u32 crc32(handle_le ++ label_len_le ++ label ++ data_len_le ++
//                     data) | data
//
// Durability protocol (write_snapshot): the file is written to
// `<path>.tmp`, fsync'd, atomically renamed over `<path>`, and the parent
// directory fsync'd — a crash anywhere in the sequence leaves either the
// old snapshot or the new one, never a torn hybrid.  The caller truncates
// the journal only after write_snapshot returns.
//
// Reading (load_snapshot) applies the same salvage discipline as the
// journal: entries are loaded until the first structurally bad or
// CRC-mismatching one, and the remainder is reported as salvageable tail
// bytes.  Per-entry CRCs localize at-rest corruption to one entry; the
// recovery layer then re-verifies every entry's canonical fingerprint
// against its handle, so even a CRC-colliding corruption cannot surface as
// a wrong image.

#include <cstdint>
#include <string>
#include <vector>

#include "store/image_store.hpp"

namespace sysrle {

struct SnapshotEntry {
  ImageHandle handle = 0;
  std::string label;
  std::string bytes;  ///< canonical SRLB bytes
};

/// Writes `entries` as a durable snapshot at `path` (write-temp + fsync +
/// atomic rename + directory fsync).  Throws contract_error on I/O failure;
/// on failure the previous snapshot, if any, is untouched.
void write_snapshot(const std::string& path,
                    const std::vector<SnapshotEntry>& entries);

struct SnapshotLoadResult {
  std::vector<SnapshotEntry> entries;  ///< the clean prefix, in file order
  bool file_present = false;
  bool header_ok = true;  ///< false: not a snapshot — nothing loaded
  std::uint64_t declared_entries = 0;
  std::uint64_t salvaged_tail_bytes = 0;
  std::string tail_reason;  ///< empty when every declared entry loaded clean
};

/// Loads a snapshot with salvage semantics (see header comment).  A missing
/// file is an empty snapshot.  Never throws on file content.
SnapshotLoadResult load_snapshot(const std::string& path);

}  // namespace sysrle
