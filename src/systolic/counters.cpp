#include "systolic/counters.hpp"

#include <algorithm>
#include <sstream>

namespace sysrle {

SystolicCounters& SystolicCounters::operator+=(const SystolicCounters& o) {
  iterations += o.iterations;
  swaps += o.swaps;
  promotions += o.promotions;
  xors += o.xors;
  shifts += o.shifts;
  bus_moves += o.bus_moves;
  bus_cycles += o.bus_cycles;
  cells_used = std::max(cells_used, o.cells_used);
  return *this;
}

std::string SystolicCounters::to_string() const {
  std::ostringstream os;
  os << "iterations=" << iterations << " swaps=" << swaps
     << " promotions=" << promotions << " xors=" << xors
     << " shifts=" << shifts << " bus_moves=" << bus_moves
     << " bus_cycles=" << bus_cycles << " cells_used=" << cells_used;
  return os.str();
}

}  // namespace sysrle
