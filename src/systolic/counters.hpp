#pragma once
// Event counters for the systolic simulator.  Everything the evaluation
// section reports (iterations) plus the internal activity that explains it
// (the "chain reaction" shifts discussed in section 5).

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace sysrle {

/// Activity counters accumulated over one systolic run (or, summed, over a
/// whole image).
struct SystolicCounters {
  cycle_t iterations = 0;        ///< main-loop iterations until termination
  std::uint64_t swaps = 0;       ///< step-1 register swaps
  std::uint64_t promotions = 0;  ///< step-1 RegBig -> RegSmall moves
  std::uint64_t xors = 0;        ///< step-2 executions with both regs full
  std::uint64_t shifts = 0;      ///< step-3 moves of a non-empty RegBig
  std::uint64_t bus_moves = 0;   ///< bus-variant long-hop deliveries
  std::uint64_t bus_cycles = 0;  ///< extra cycles serialising bus deliveries
  std::uint64_t cells_used = 0;  ///< 1 + highest cell index ever non-empty

  /// Element-wise accumulation (iterations add; cells_used takes the max).
  SystolicCounters& operator+=(const SystolicCounters& o);

  /// One-line human-readable summary.
  std::string to_string() const;
};

}  // namespace sysrle
