#include "systolic/datapath.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace sysrle {
namespace {

// Textbook per-bit gate-equivalent figures.
constexpr std::uint64_t kComparatorGePerBit = 5;   // eq + gt cell
constexpr std::uint64_t kIncrementerGePerBit = 3;  // half adder + carry
constexpr std::uint64_t kMuxGePerBit = 3;          // 2:1 mux
constexpr std::uint64_t kFlipFlopGe = 6;           // D flip-flop

// Carry-lookahead area premium on carry-chain structures.
constexpr double kLookaheadAreaFactor = 1.5;

std::uint64_t scaled(std::uint64_t ripple_ge, AdderStyle style) {
  if (style == AdderStyle::kRipple) return ripple_ge;
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(ripple_ge) * kLookaheadAreaFactor));
}

unsigned ceil_log2(unsigned v) {
  unsigned bits = 0;
  while ((1u << bits) < v) ++bits;
  return bits;
}

}  // namespace

CellCostModel::CellCostModel(unsigned word_bits, AdderStyle style)
    : word_bits_(word_bits), style_(style) {
  SYSRLE_REQUIRE(word_bits >= 1 && word_bits <= 64,
                 "CellCostModel: word_bits must be in [1, 64]");
}

GateCounts CellCostModel::comparator() const {
  return {scaled(kComparatorGePerBit * word_bits_, style_), 0};
}

GateCounts CellCostModel::incrementer() const {
  return {scaled(kIncrementerGePerBit * word_bits_, style_), 0};
}

GateCounts CellCostModel::minmax_unit() const {
  // Comparator plus a per-bit select mux.
  GateCounts g = comparator();
  g.combinational += kMuxGePerBit * word_bits_;
  return g;
}

GateCounts CellCostModel::registers() const {
  // RegSmall + RegBig, each (start, end) of W bits, plus a valid bit each.
  const std::uint64_t bits = 2ull * 2ull * word_bits_ + 2ull;
  return {0, bits * kFlipFlopGe};
}

GateCounts CellCostModel::cell_total() const {
  GateCounts total;
  // Step 1: lexicographic comparator = two chained W-bit comparators, and
  // swap muxes on all four register fields.
  total += comparator();
  total += comparator();
  total.combinational += 4ull * kMuxGePerBit * word_bits_;
  // Step 2: four min/max units and two incrementers (the +1/-1 adjusts).
  for (int i = 0; i < 4; ++i) total += minmax_unit();
  total += incrementer();
  total += incrementer();
  // Registers and control (completion driver, step sequencing): ~25 GE.
  total += registers();
  total.combinational += 25;
  return total;
}

unsigned CellCostModel::critical_path_gates() const {
  // Comparator chain -> swap mux -> min/max (comparator + mux).  Ripple
  // carries cost one gate per bit; lookahead costs ~2*log2(W)+4.
  const unsigned cmp = style_ == AdderStyle::kRipple
                           ? word_bits_
                           : 2 * ceil_log2(word_bits_) + 4;
  const unsigned mux = 2;
  return cmp + mux + cmp + mux;  // step-1 compare/swap then step-2 min/max
}

GateCounts ArrayCostModel::total() const {
  GateCounts per_cell = cell.cell_total();
  return {per_cell.combinational * cells, per_cell.sequential * cells};
}

double ArrayCostModel::max_clock_mhz(double gate_delay_ns) const {
  SYSRLE_REQUIRE(gate_delay_ns > 0, "max_clock_mhz: non-positive gate delay");
  const double period_ns =
      static_cast<double>(cell.critical_path_gates()) * gate_delay_ns;
  return 1000.0 / period_ns;
}

std::string ArrayCostModel::to_string() const {
  std::ostringstream os;
  const GateCounts t = total();
  os << cells << " cells x " << cell.word_bits() << "-bit ("
     << (cell.style() == AdderStyle::kRipple ? "ripple" : "lookahead")
     << "): " << t.total() << " GE (" << t.combinational << " comb + "
     << t.sequential << " seq), critical path "
     << cell.critical_path_gates() << " gates";
  return os.str();
}

}  // namespace sysrle
