#pragma once
// First-order gate-level cost model for the Figure-2 cell and array.
//
// The paper proposes special-purpose hardware but gives no area/timing
// budget; this model fills that gap so the benches can report how big and
// how fast an implementation would be.  Costs are expressed in classic gate
// equivalents (1 GE = one 2-input NAND) with textbook per-bit figures; the
// point is relative scaling (area vs word width, cells vs k; ripple vs
// carry-lookahead timing), not absolute silicon numbers.
//
// One cell's datapath per Figure 2 and the three algorithm steps:
//   * step 1: one W-bit lexicographic comparator (start, then end) and a
//     register swap (implemented as muxes on the register inputs),
//   * step 2: four W-bit min/max units and two W-bit incrementers
//     (end+1 / start-1 style adjustments),
//   * registers: two runs x two W-bit fields, plus valid bits,
//   * control: completion line driver and a handful of state gates.

#include <cstddef>
#include <cstdint>
#include <string>

namespace sysrle {

/// Aggregated gate counts (unit: gate equivalents).
struct GateCounts {
  std::uint64_t combinational = 0;  ///< logic GE
  std::uint64_t sequential = 0;     ///< flip-flop GE

  std::uint64_t total() const { return combinational + sequential; }

  GateCounts& operator+=(const GateCounts& o) {
    combinational += o.combinational;
    sequential += o.sequential;
    return *this;
  }
  friend GateCounts operator+(GateCounts a, const GateCounts& b) {
    a += b;
    return a;
  }
};

/// Comparator/adder implementation style (affects the critical path).
enum class AdderStyle {
  kRipple,     ///< O(W) delay, minimal area
  kLookahead,  ///< O(log W) delay, ~1.5x comparator/adder area
};

/// Cost model for one cell.
class CellCostModel {
 public:
  /// `word_bits` is the position/length field width (20 bits addresses
  /// 1 Mpixel rows, the paper's gigabyte-boards regime).
  explicit CellCostModel(unsigned word_bits = 20,
                         AdderStyle style = AdderStyle::kRipple);

  unsigned word_bits() const { return word_bits_; }
  AdderStyle style() const { return style_; }

  /// W-bit magnitude comparator.
  GateCounts comparator() const;
  /// W-bit incrementer/decrementer.
  GateCounts incrementer() const;
  /// W-bit min/max unit (comparator + 2:1 mux per bit).
  GateCounts minmax_unit() const;
  /// All cell registers: 2 runs x 2 fields x W bits + 2 valid bits.
  GateCounts registers() const;
  /// Whole cell: step-1 comparator + swap muxes, step-2 datapath, registers
  /// and control.
  GateCounts cell_total() const;

  /// Critical path through one iteration's combinational logic, in gate
  /// delays (comparator -> mux -> min/max cascade).
  unsigned critical_path_gates() const;

 private:
  unsigned word_bits_;
  AdderStyle style_;
};

/// Cost model for a whole array of `cells` cells.
struct ArrayCostModel {
  CellCostModel cell;
  std::size_t cells = 0;

  GateCounts total() const;

  /// Estimated maximum clock from the critical path, given a per-gate delay
  /// in nanoseconds (late-1990s standard cell: ~0.3-1 ns).
  double max_clock_mhz(double gate_delay_ns) const;

  /// One-line summary.
  std::string to_string() const;
};

}  // namespace sysrle
