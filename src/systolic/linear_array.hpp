#pragma once
// A generic synchronous linear systolic array skeleton (Figure 2 of the
// paper): N identical cells, a left-to-right nearest-neighbour channel, and a
// wired-AND completion line.  The skeleton is algorithm-agnostic; the image
// difference machine instantiates it with DiffCell (src/core/diff_cell.hpp).
//
// The model is the standard globally synchronous updating mode the paper
// describes: within one micro-step every cell observes the pre-step state and
// produces the post-step state, which shift_right implements by buffering the
// outgoing values before committing them.

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace sysrle {

/// Synchronous linear array of `Cell`s.  `Cell` must be default-constructible
/// and copyable; everything else (registers, local steps) is the cell's own
/// business.
template <typename Cell>
class LinearArray {
 public:
  /// A default-constructed array is a valid one-cell array; reset() resizes
  /// it in place (reusing the cell storage) before each run.
  LinearArray() : cells_(1) {}

  explicit LinearArray(std::size_t n) : cells_(n) {
    SYSRLE_REQUIRE(n >= 1, "LinearArray: need at least one cell");
  }

  /// Re-dimensions the array to `n` default-constructed cells, reusing the
  /// existing allocation when capacity allows.  This is what lets one
  /// machine workspace serve many rows without reallocating per row.
  void reset(std::size_t n) {
    SYSRLE_REQUIRE(n >= 1, "LinearArray: need at least one cell");
    cells_.assign(n, Cell{});
  }

  std::size_t size() const { return cells_.size(); }

  Cell& cell(cell_index_t i) {
    SYSRLE_REQUIRE(i < cells_.size(), "LinearArray::cell: index out of range");
    return cells_[i];
  }
  const Cell& cell(cell_index_t i) const {
    SYSRLE_REQUIRE(i < cells_.size(), "LinearArray::cell: index out of range");
    return cells_[i];
  }

  const std::vector<Cell>& cells() const { return cells_; }

  /// Applies `fn(cell)` to every cell — one synchronous local micro-step.
  /// Cells must not touch their neighbours inside `fn`.
  template <typename Fn>
  void for_each(Fn fn) {
    for (Cell& c : cells_) fn(c);
  }

  /// Synchronous right shift of one register lane.  `get(cell)` reads the
  /// outgoing value, `set(cell, v)` installs the incoming one; `feed` enters
  /// cell 0 and the value leaving the last cell is returned (the paper's
  /// "Out" port).  All reads happen before all writes, as in hardware.
  template <typename T, typename Get, typename Set>
  T shift_right(Get get, Set set, T feed) {
    T carry = feed;
    for (Cell& c : cells_) {
      T outgoing = get(c);
      set(c, carry);
      carry = outgoing;
    }
    return carry;
  }

  /// Wired-AND over all cells: true when every `pred(cell)` holds.  Models
  /// the completion line C in Figure 2.
  template <typename Pred>
  bool all_of(Pred pred) const {
    for (const Cell& c : cells_)
      if (!pred(c)) return false;
    return true;
  }

 private:
  std::vector<Cell> cells_;
};

}  // namespace sysrle
