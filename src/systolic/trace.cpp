#include "systolic/trace.hpp"

#include <algorithm>
#include <sstream>

namespace sysrle {
namespace {

bool same_cells(const std::vector<CellSnapshot>& a,
                const std::vector<CellSnapshot>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].reg_small != b[i].reg_small || a[i].reg_big != b[i].reg_big)
      return false;
  return true;
}

std::string reg_text(const std::optional<Run>& r) {
  return r ? r->to_string() : std::string{};
}

}  // namespace

void TraceRecorder::record_initial(std::span<const CellSnapshot> cells) {
  frames_.push_back({"Initial", {cells.begin(), cells.end()}});
}

void TraceRecorder::record(cycle_t iteration, MicroStep step,
                           std::span<const CellSnapshot> cells) {
  std::ostringstream label;
  label << iteration << '.' << static_cast<int>(step);
  frames_.push_back({label.str(), {cells.begin(), cells.end()}});
}

std::string TraceRecorder::render(bool elide_unchanged) const {
  if (frames_.empty()) return "";
  const std::size_t ncells = frames_.front().cells.size();

  // Column widths: label column + one column per cell, sized to the widest
  // register text that ever appears there.
  std::size_t label_w = 4;  // "Step"
  std::vector<std::size_t> cell_w(ncells, 5);  // "CellN"
  for (std::size_t c = 0; c < ncells; ++c)
    cell_w[c] = std::max(cell_w[c], ("Cell" + std::to_string(c)).size());
  for (const auto& f : frames_) {
    label_w = std::max(label_w, f.label.size());
    for (std::size_t c = 0; c < f.cells.size() && c < ncells; ++c) {
      cell_w[c] = std::max(cell_w[c], reg_text(f.cells[c].reg_small).size());
      cell_w[c] = std::max(cell_w[c], reg_text(f.cells[c].reg_big).size());
    }
  }

  std::ostringstream os;
  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };

  os << pad("Step", label_w);
  for (std::size_t c = 0; c < ncells; ++c)
    os << "  " << pad("Cell" + std::to_string(c), cell_w[c]);
  os << '\n';

  const std::vector<CellSnapshot>* prev = nullptr;
  for (const auto& f : frames_) {
    if (elide_unchanged && prev && same_cells(*prev, f.cells)) {
      prev = &f.cells;
      continue;
    }
    prev = &f.cells;
    // RegSmall line (carries the step label), then RegBig line if any
    // register is occupied.
    os << pad(f.label, label_w);
    for (std::size_t c = 0; c < ncells; ++c)
      os << "  " << pad(reg_text(f.cells[c].reg_small), cell_w[c]);
    os << '\n';
    const bool any_big = std::any_of(
        f.cells.begin(), f.cells.end(),
        [](const CellSnapshot& s) { return s.reg_big.has_value(); });
    if (any_big) {
      os << pad("", label_w);
      for (std::size_t c = 0; c < ncells; ++c)
        os << "  " << pad(reg_text(f.cells[c].reg_big), cell_w[c]);
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace sysrle
