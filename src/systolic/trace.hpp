#pragma once
// Execution tracing for the systolic simulator.  Captures register snapshots
// after each micro-step and renders them in the exact layout of the paper's
// Figure 3: one row block per step ("Initial", "1.1", "1.2", "1.3", "2.1",
// ...), one column per cell, RegSmall printed above RegBig.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rle/run.hpp"

namespace sysrle {

/// The three micro-steps of one iteration of the paper's algorithm.
enum class MicroStep {
  kOrder = 1,  ///< step 1: order the registers
  kXor = 2,    ///< step 2: in-cell XOR
  kShift = 3,  ///< step 3: shift RegBig right
};

/// Contents of one cell's two registers at a point in time.
struct CellSnapshot {
  std::optional<Run> reg_small;
  std::optional<Run> reg_big;
};

/// Records snapshots of the whole array and renders a Figure-3-style table.
class TraceRecorder {
 public:
  /// Records the pre-loop state (Figure 3's "Initial" row).
  void record_initial(std::span<const CellSnapshot> cells);

  /// Records the array state after `step` of iteration `iteration` (1-based).
  void record(cycle_t iteration, MicroStep step,
              std::span<const CellSnapshot> cells);

  /// Number of recorded snapshots (including the initial one).
  std::size_t frame_count() const { return frames_.size(); }

  /// Renders the full table.  `elide_unchanged` skips frames identical to
  /// their predecessor, which is what the paper's Figure 3 does from row 2.2
  /// onwards ("And steps 2 and 3 of iteration 3 make no further changes").
  std::string render(bool elide_unchanged = true) const;

 private:
  struct Frame {
    std::string label;  // "Initial", "1.1", ...
    std::vector<CellSnapshot> cells;
  };
  std::vector<Frame> frames_;
};

}  // namespace sysrle
