#pragma once
// Synthesizable Verilog-2001 emitter for the Figure-2 machine.
//
// The simulator (core/systolic_diff) is the reference model; this generator
// emits RTL with the same cycle semantics — one algorithm iteration per
// clock: step 1 (order) and step 2 (XOR) combinationally, step 3 (shift)
// and register update on the clock edge, plus the wired-AND completion
// reduction.  Interval arithmetic uses (W+1)-bit signed extensions so the
// `end < start` empty-register encoding survives `start-1` underflow at 0,
// mirroring the simulator's signed positions.
//
// No Verilog toolchain is assumed here: the tests validate the emitted text
// structurally (balanced begin/end, declared-vs-used signals, parameter
// plumbing) and the cell semantics are pinned against diff_cell.cpp by
// construction — both are generated from the same four-assignment datapath.

#include <cstddef>
#include <string>

namespace sysrle {

/// Generator options.
struct VerilogOptions {
  unsigned word_bits = 20;           ///< position field width W
  std::string module_prefix = "sysrle";  ///< module name prefix
};

/// Emits the cell module (`<prefix>_cell`).
std::string generate_cell_verilog(const VerilogOptions& options = {});

/// Emits the array module (`<prefix>_array`) instantiating `cells` cells,
/// with per-cell load ports flattened into buses and the AND-reduced
/// completion output.
std::string generate_array_verilog(const VerilogOptions& options,
                                   std::size_t cells);

/// Emits a smoke testbench that loads the paper's Figure-1 rows, runs until
/// `complete`, and $display's the RegSmall lane for manual comparison with
/// Figure 3.
std::string generate_testbench_verilog(const VerilogOptions& options,
                                       std::size_t cells);

}  // namespace sysrle
