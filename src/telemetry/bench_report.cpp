#include "telemetry/bench_report.hpp"

#include <fstream>
#include <ostream>

#include "common/assert.hpp"
#include "telemetry/json_writer.hpp"

namespace sysrle {

BenchReport::BenchReport(std::string bench_name)
    : bench_(std::move(bench_name)) {}

void BenchReport::set_param(const std::string& name, const std::string& value) {
  params_.push_back(Param{name, false, 0.0, value});
}

void BenchReport::set_param(const std::string& name, double value) {
  params_.push_back(Param{name, true, value, {}});
}

void BenchReport::set_param(const std::string& name, std::int64_t value) {
  set_param(name, static_cast<double>(value));
}

void BenchReport::set_x(std::string name, std::vector<double> values) {
  x_name_ = std::move(name);
  x_values_ = std::move(values);
}

void BenchReport::add_series(std::string name, std::vector<double> values) {
  series_.emplace_back(std::move(name), std::move(values));
}

void BenchReport::set_scalar(const std::string& name, double value) {
  scalars_.emplace_back(name, value);
}

void BenchReport::set_check(const std::string& name, bool ok) {
  checks_.emplace_back(name, ok);
}

bool BenchReport::all_checks_pass() const {
  for (const auto& [name, ok] : checks_)
    if (!ok) return false;
  return true;
}

void BenchReport::write(std::ostream& out) const {
  for (const auto& [name, values] : series_)
    SYSRLE_REQUIRE(values.size() == x_values_.size(),
                   "BenchReport: series '" + name + "' length != x length");

  JsonWriter w(out);
  w.begin_object();
  w.member("schema", kBenchSchema);
  w.member("bench", bench_);

  w.key("params");
  w.begin_object();
  for (const Param& p : params_) {
    if (p.is_number) {
      w.member(p.name, p.number);
    } else {
      w.member(p.name, p.text);
    }
  }
  w.end_object();

  w.key("x");
  w.begin_object();
  w.member("name", x_name_);
  w.key("values");
  w.begin_array();
  for (const double v : x_values_) w.value(v);
  w.end_array();
  w.end_object();

  w.key("series");
  w.begin_object();
  for (const auto& [name, values] : series_) {
    w.key(name);
    w.begin_array();
    for (const double v : values) w.value(v);
    w.end_array();
  }
  w.end_object();

  w.key("scalars");
  w.begin_object();
  for (const auto& [name, value] : scalars_) w.member(name, value);
  w.end_object();

  w.key("checks");
  w.begin_object();
  for (const auto& [name, ok] : checks_) w.member(name, ok);
  w.end_object();

  w.end_object();
  out << '\n';
  SYSRLE_ENSURE(out.good(), "BenchReport: write failed");
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(), "BenchReport: cannot open for write: " + path);
  write(out);
}

}  // namespace sysrle
