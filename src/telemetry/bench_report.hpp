#pragma once
// Machine-readable benchmark output: every paper-reproduction harness
// (bench_fig5, bench_table1, bench_scaling) emits this one schema so
// BENCH_*.json trajectory files are comparable across PRs.
//
// Shape ("sysrle.bench.v1"): one x-axis, any number of equally long y
// series, free-form scalar results, named params, and named boolean checks
// (the bench's inline shape validations, machine-checkable at last).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace sysrle {

/// Schema identifier embedded in every bench report.
inline constexpr const char* kBenchSchema = "sysrle.bench.v1";

/// Builder for one bench's JSON report.  Fields render in insertion order,
/// so reports diff cleanly between runs.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Workload parameters (strings or numbers).
  void set_param(const std::string& name, const std::string& value);
  void set_param(const std::string& name, double value);
  void set_param(const std::string& name, std::int64_t value);

  /// The swept axis (e.g. "error_pct", "width").
  void set_x(std::string name, std::vector<double> values);

  /// One measured series over the x axis.  Must match the x length.
  void add_series(std::string name, std::vector<double> values);

  /// Scalar results (correlations, growth ratios, ...).
  void set_scalar(const std::string& name, double value);

  /// A named pass/fail shape validation.
  void set_check(const std::string& name, bool ok);

  /// True when every recorded check passed (or none were recorded).
  bool all_checks_pass() const;

  /// Writes the report as indented JSON (throws on series/x length
  /// mismatch — a malformed trajectory point must not be recorded).
  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;

 private:
  struct Param {
    std::string name;
    bool is_number = false;
    double number = 0.0;
    std::string text;
  };
  std::string bench_;
  std::vector<Param> params_;
  std::string x_name_;
  std::vector<double> x_values_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, bool>> checks_;
};

}  // namespace sysrle
