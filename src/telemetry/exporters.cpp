#include "telemetry/exporters.hpp"

#include <fstream>
#include <ostream>

#include "common/assert.hpp"
#include "telemetry/json_writer.hpp"

namespace sysrle {

namespace {

void write_histogram(JsonWriter& w, const Histogram& h) {
  const RunningStat& s = h.stat();
  w.begin_object();
  w.member("count", static_cast<std::uint64_t>(s.count()));
  w.member("min", s.min());
  w.member("max", s.max());
  w.member("mean", s.mean());
  w.member("stddev", s.stddev());
  w.member("p50", s.p50());
  w.member("p95", s.p95());
  w.member("p99", s.p99());
  w.member("scale", h.spec().scale == HistogramSpec::Scale::kLog2 ? "log2"
                                                                  : "fixed");
  w.key("buckets");
  w.begin_array();
  const std::vector<std::uint64_t>& buckets = h.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;  // sparse: empty buckets are implicit
    w.begin_object();
    w.member("le", h.bucket_upper(i));
    w.member("count", buckets[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.member("schema", kMetricsSchema);

  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snapshot.counters) w.member(name, value);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.member(name, value);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    w.key(name);
    write_histogram(w, histogram);
  }
  w.end_object();

  w.end_object();
  out << '\n';
  SYSRLE_ENSURE(out.good(), "metrics export: write failed");
}

void write_metrics_json_file(const MetricsSnapshot& snapshot,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(),
                 "metrics export: cannot open for write: " + path);
  write_metrics_json(snapshot, out);
}

void write_chrome_trace(const SpanTracer& tracer, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Process-name metadata event, so trace viewers label the track.
  w.begin_object();
  w.member("name", "process_name");
  w.member("ph", "M");
  w.member("pid", 1);
  w.member("tid", 0);
  w.key("args");
  w.begin_object();
  w.member("name", "sysrle");
  w.end_object();
  w.end_object();

  for (const SpanEvent& e : tracer.snapshot()) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.category);
    w.member("ph", "X");
    w.member("ts", e.ts_us);
    w.member("dur", e.dur_us);
    w.member("pid", 1);
    w.member("tid", static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();

  w.member("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.member("schema", "sysrle.trace.v1");
  w.member("dropped_events", tracer.dropped());
  w.end_object();

  w.end_object();
  out << '\n';
  SYSRLE_ENSURE(out.good(), "trace export: write failed");
}

void write_chrome_trace_file(const SpanTracer& tracer,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(), "trace export: cannot open for write: " + path);
  write_chrome_trace(tracer, out);
}

}  // namespace sysrle
