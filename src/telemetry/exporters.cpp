#include "telemetry/exporters.hpp"

#include <fstream>
#include <ostream>

#include "common/assert.hpp"
#include "telemetry/json_writer.hpp"

namespace sysrle {

namespace {

void write_histogram(JsonWriter& w, const Histogram& h) {
  const RunningStat& s = h.stat();
  w.begin_object();
  w.member("count", static_cast<std::uint64_t>(s.count()));
  w.member("min", s.min());
  w.member("max", s.max());
  w.member("mean", s.mean());
  w.member("stddev", s.stddev());
  w.member("p50", s.p50());
  w.member("p95", s.p95());
  w.member("p99", s.p99());
  w.member("scale", h.spec().scale == HistogramSpec::Scale::kLog2 ? "log2"
                                                                  : "fixed");
  const std::vector<std::uint64_t>& buckets = h.buckets();
  // The full bucket layout, so consumers can reconstruct the distribution
  // (and know which buckets were empty) without re-deriving the spec.
  w.key("boundaries");
  w.begin_array();
  for (std::size_t i = 0; i < buckets.size(); ++i)
    w.value(h.bucket_upper(i));
  w.end_array();
  w.key("buckets");
  w.begin_array();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;  // sparse: empty buckets are implicit
    w.begin_object();
    w.member("le", h.bucket_upper(i));
    w.member("count", buckets[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.member("schema", kMetricsSchema);

  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snapshot.counters) w.member(name, value);
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.member(name, value);
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    w.key(name);
    write_histogram(w, histogram);
  }
  w.end_object();

  w.end_object();
  out << '\n';
  SYSRLE_ENSURE(out.good(), "metrics export: write failed");
}

void write_metrics_json_file(const MetricsSnapshot& snapshot,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(),
                 "metrics export: cannot open for write: " + path);
  write_metrics_json(snapshot, out);
}

void write_chrome_trace(const SpanTracer& tracer, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Process-name metadata event, so trace viewers label the track.
  w.begin_object();
  w.member("name", "process_name");
  w.member("ph", "M");
  w.member("pid", 1);
  w.member("tid", 0);
  w.key("args");
  w.begin_object();
  w.member("name", "sysrle");
  w.end_object();
  w.end_object();

  for (const SpanEvent& e : tracer.snapshot()) {
    w.begin_object();
    w.member("name", e.label());
    w.member("cat", e.category);
    w.member("ph", "X");
    w.member("ts", e.ts_us);
    w.member("dur", e.dur_us);
    w.member("pid", 1);
    w.member("tid", static_cast<std::uint64_t>(e.tid));
    if (e.ctx.active) {
      w.key("args");
      w.begin_object();
      w.member("request_id", e.ctx.request_id);
      w.member("attempt", static_cast<std::uint64_t>(e.ctx.attempt));
      w.member("shard", static_cast<std::int64_t>(e.ctx.shard));
      w.member("replica", static_cast<std::int64_t>(e.ctx.replica));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.member("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.member("schema", "sysrle.trace.v1");
  w.member("dropped_events", tracer.dropped());
  w.end_object();

  w.end_object();
  out << '\n';
  SYSRLE_ENSURE(out.good(), "trace export: write failed");
}

void write_chrome_trace_file(const SpanTracer& tracer,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(), "trace export: cannot open for write: " + path);
  write_chrome_trace(tracer, out);
}

namespace {

// One compact JSON object for one flight event (no trailing newline).
void write_flight_event_fields(JsonWriter& w, const FlightEvent& e) {
  w.member("seq", e.seq);
  w.member("ts_us", e.ts_us);
  w.member("kind", to_string(e.kind));
  w.member("active", e.ctx.active);
  w.member("request_id", e.ctx.request_id);
  w.member("attempt", static_cast<std::uint64_t>(e.ctx.attempt));
  w.member("shard", static_cast<std::int64_t>(e.ctx.shard));
  w.member("replica", static_cast<std::int64_t>(e.ctx.replica));
  w.member("detail", e.detail);
  w.member("arg", e.arg);
}

// Track id for flight events in the Chrome rendering: one lane per
// (shard, replica), lane 0 for unrouted events.
std::uint64_t flight_tid(const RequestContext& ctx) {
  if (ctx.shard < 0) return 0;
  const std::uint64_t replica =
      ctx.replica < 0 ? 0 : static_cast<std::uint64_t>(ctx.replica);
  return static_cast<std::uint64_t>(ctx.shard) * 100 + replica + 1;
}

}  // namespace

void write_flight_jsonl(const FlightRecorder& recorder, std::ostream& out) {
  const std::vector<FlightEvent> events = recorder.snapshot();
  const std::vector<FlightRecorder::RetainedTimeline> retained =
      recorder.retained();
  {
    JsonWriter w(out, 0);
    w.begin_object();
    w.member("type", "header");
    w.member("schema", kFlightSchema);
    w.member("capacity", static_cast<std::uint64_t>(recorder.capacity()));
    w.member("recorded", recorder.recorded());
    w.member("dropped", recorder.dropped());
    w.member("retained", static_cast<std::uint64_t>(retained.size()));
    w.member("retain_dropped", recorder.retain_dropped());
    w.end_object();
    out << '\n';
  }
  for (const FlightEvent& e : events) {
    JsonWriter w(out, 0);
    w.begin_object();
    w.member("type", "event");
    write_flight_event_fields(w, e);
    w.end_object();
    out << '\n';
  }
  for (const FlightRecorder::RetainedTimeline& t : retained) {
    JsonWriter w(out, 0);
    w.begin_object();
    w.member("type", "retained");
    w.member("request_id", t.request_id);
    w.member("anomaly", t.anomaly);
    w.key("events");
    w.begin_array();
    for (const FlightEvent& e : t.events) {
      w.begin_object();
      write_flight_event_fields(w, e);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << '\n';
  }
  SYSRLE_ENSURE(out.good(), "flight export: write failed");
}

void write_flight_jsonl_file(const FlightRecorder& recorder,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(),
                 "flight export: cannot open for write: " + path);
  write_flight_jsonl(recorder, out);
}

void write_flight_chrome_trace(const FlightRecorder& recorder,
                               std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.member("name", "process_name");
  w.member("ph", "M");
  w.member("pid", 1);
  w.member("tid", 0);
  w.key("args");
  w.begin_object();
  w.member("name", "sysrle flight recorder");
  w.end_object();
  w.end_object();

  for (const FlightEvent& e : recorder.snapshot()) {
    const std::uint64_t tid = flight_tid(e.ctx);
    w.begin_object();
    w.member("name", to_string(e.kind));
    w.member("cat", "flight");
    w.member("ph", "i");
    w.member("s", "t");
    w.member("ts", e.ts_us);
    w.member("pid", 1);
    w.member("tid", tid);
    w.key("args");
    w.begin_object();
    w.member("seq", e.seq);
    w.member("request_id", e.ctx.request_id);
    w.member("attempt", static_cast<std::uint64_t>(e.ctx.attempt));
    w.member("detail", e.detail);
    w.member("arg", e.arg);
    w.end_object();
    w.end_object();

    // Flow arrows: a hedge_fired starts a flow under the request id; the
    // hedge_won/hedge_lost resolution finishes it, so the viewer draws the
    // hedge attempt connected to the primary it raced.
    const bool flow_start = e.kind == FlightEventKind::kHedgeFired;
    const bool flow_end = e.kind == FlightEventKind::kHedgeWon ||
                          e.kind == FlightEventKind::kHedgeLost;
    if (flow_start || flow_end) {
      w.begin_object();
      w.member("name", "hedge");
      w.member("cat", "flight");
      w.member("ph", flow_start ? "s" : "f");
      if (flow_end) w.member("bp", "e");
      w.member("id", e.ctx.request_id);
      w.member("ts", e.ts_us);
      w.member("pid", 1);
      w.member("tid", tid);
      w.end_object();
    }
  }
  w.end_array();

  w.member("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.member("schema", kFlightSchema);
  w.member("recorded", recorder.recorded());
  w.member("dropped", recorder.dropped());
  w.end_object();

  w.end_object();
  out << '\n';
  SYSRLE_ENSURE(out.good(), "flight export: write failed");
}

void write_flight_chrome_trace_file(const FlightRecorder& recorder,
                                    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SYSRLE_REQUIRE(out.is_open(),
                 "flight export: cannot open for write: " + path);
  write_flight_chrome_trace(recorder, out);
}

}  // namespace sysrle
