#pragma once
// Exporters for the telemetry layer:
//   * a JSON metrics snapshot ("sysrle.metrics.v1" — counters, gauges,
//     histograms with moments, p50/p95/p99 and bucket counts), and
//   * a Chrome trace_event file (the object form with "traceEvents"),
//     loadable directly by chrome://tracing and Perfetto, and
//   * flight-recorder dumps ("sysrle.flight.v1"): a JSONL stream of ring
//     events and retained anomaly timelines, plus a Chrome trace rendering
//     with flow events linking hedge attempts to their primaries.
//
// Schema versioning policy (docs/OBSERVABILITY.md): the "schema" string is
// bumped whenever a field is removed or changes meaning; adding fields is
// backward compatible and does not bump it.

#include <iosfwd>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sysrle {

/// Schema identifier embedded in every metrics snapshot.
inline constexpr const char* kMetricsSchema = "sysrle.metrics.v1";

/// Schema identifier on the header line of every flight-recorder JSONL dump.
inline constexpr const char* kFlightSchema = "sysrle.flight.v1";

/// Writes the snapshot as indented JSON.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);
void write_metrics_json_file(const MetricsSnapshot& snapshot,
                             const std::string& path);

/// Writes the tracer's events as a Chrome trace.  Events are complete
/// ("ph":"X") events sorted by timestamp; a process-name metadata event and
/// a drop count ride along in "otherData".
void write_chrome_trace(const SpanTracer& tracer, std::ostream& out);
void write_chrome_trace_file(const SpanTracer& tracer,
                             const std::string& path);

/// Writes the recorder as JSONL ("sysrle.flight.v1"): one compact JSON
/// object per line.  Line 1 is a header ("type":"header") with the schema
/// and ring accounting; then every live ring event ("type":"event") in seq
/// order; then one line per retained anomaly timeline ("type":"retained")
/// carrying its events inline.  Grep-able and `json.loads`-able per line.
void write_flight_jsonl(const FlightRecorder& recorder, std::ostream& out);
void write_flight_jsonl_file(const FlightRecorder& recorder,
                             const std::string& path);

/// Writes the recorder as a Chrome trace: one instant event per flight
/// event, tracked per shard/replica, with flow events ("ph":"s"/"f",
/// id = request id) linking each hedge_fired to the hedge_won/hedge_lost
/// resolution so the hedge's relationship to its primary is a drawn arrow.
void write_flight_chrome_trace(const FlightRecorder& recorder,
                               std::ostream& out);
void write_flight_chrome_trace_file(const FlightRecorder& recorder,
                                    const std::string& path);

}  // namespace sysrle
