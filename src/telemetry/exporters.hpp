#pragma once
// Exporters for the telemetry layer:
//   * a JSON metrics snapshot ("sysrle.metrics.v1" — counters, gauges,
//     histograms with moments, p50/p95/p99 and bucket counts), and
//   * a Chrome trace_event file (the object form with "traceEvents"),
//     loadable directly by chrome://tracing and Perfetto.
//
// Schema versioning policy (docs/OBSERVABILITY.md): the "schema" string is
// bumped whenever a field is removed or changes meaning; adding fields is
// backward compatible and does not bump it.

#include <iosfwd>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sysrle {

/// Schema identifier embedded in every metrics snapshot.
inline constexpr const char* kMetricsSchema = "sysrle.metrics.v1";

/// Writes the snapshot as indented JSON.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);
void write_metrics_json_file(const MetricsSnapshot& snapshot,
                             const std::string& path);

/// Writes the tracer's events as a Chrome trace.  Events are complete
/// ("ph":"X") events sorted by timestamp; a process-name metadata event and
/// a drop count ride along in "otherData".
void write_chrome_trace(const SpanTracer& tracer, std::ostream& out);
void write_chrome_trace_file(const SpanTracer& tracer,
                             const std::string& path);

}  // namespace sysrle
