#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <thread>

namespace sysrle {

namespace flight_detail {
std::atomic<FlightRecorder*> g_recorder{nullptr};
}  // namespace flight_detail

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kEnqueue: return "enqueue";
    case FlightEventKind::kDequeue: return "dequeue";
    case FlightEventKind::kDispatch: return "dispatch";
    case FlightEventKind::kFailover: return "failover";
    case FlightEventKind::kHedgeFired: return "hedge_fired";
    case FlightEventKind::kHedgeSuppressed: return "hedge_suppressed";
    case FlightEventKind::kHedgeUnroutable: return "hedge_unroutable";
    case FlightEventKind::kHedgeWon: return "hedge_won";
    case FlightEventKind::kHedgeLost: return "hedge_lost";
    case FlightEventKind::kCoalesceJoined: return "coalesce_joined";
    case FlightEventKind::kCoalescePromoted: return "coalesce_promoted";
    case FlightEventKind::kBreakerTrip: return "breaker_trip";
    case FlightEventKind::kDeadlineExpired: return "deadline_expired";
    case FlightEventKind::kCancelled: return "cancelled";
    case FlightEventKind::kRespond: return "respond";
    case FlightEventKind::kCacheHit: return "cache_hit";
    case FlightEventKind::kCacheMiss: return "cache_miss";
    case FlightEventKind::kStoreEvict: return "store_evict";
    case FlightEventKind::kJournalAppend: return "journal_append";
    case FlightEventKind::kSnapshot: return "snapshot";
    case FlightEventKind::kRecoveryDrop: return "recovery_drop";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity, std::size_t max_retained)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(round_up_pow2(capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)),
      max_retained_(max_retained) {
  // Slot i starts "free for ticket i": published word 2*i.
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].seq.store(2 * i, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void FlightRecorder::record(FlightEventKind kind, const RequestContext& ctx,
                            const char* detail, std::uint64_t arg) {
  record_at(now_us(), kind, ctx, detail, arg);
}

void FlightRecorder::record_at(std::uint64_t ts_us, FlightEventKind kind,
                               const RequestContext& ctx, const char* detail,
                               std::uint64_t arg) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & (capacity_ - 1)];
  // Wait for the previous lap's writer to publish (seq == 2*ticket).  Only
  // contended when a writer is lapped, i.e. `capacity_` events were recorded
  // during one record_at call — vanishingly rare; yield, don't block.
  while (s.seq.load(std::memory_order_acquire) != 2 * ticket)
    std::this_thread::yield();
  // Claim (odd word): readers mid-snapshot skip this slot.
  s.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  s.ts_us.store(ts_us, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.ctx_active.store(ctx.active, std::memory_order_relaxed);
  s.request_id.store(ctx.request_id, std::memory_order_relaxed);
  s.attempt.store(ctx.attempt, std::memory_order_relaxed);
  s.shard.store(ctx.shard, std::memory_order_relaxed);
  s.replica.store(ctx.replica, std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  // Publish: the slot is now free for ticket + capacity.
  s.seq.store(2 * (ticket + capacity_), std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;                    // writer mid-store
    if (s1 / 2 < capacity_) continue;        // never written
    FlightEvent e;
    e.seq = s1 / 2 - capacity_;
    e.ts_us = s.ts_us.load(std::memory_order_relaxed);
    e.kind = static_cast<FlightEventKind>(
        s.kind.load(std::memory_order_relaxed));
    e.ctx.active = s.ctx_active.load(std::memory_order_relaxed);
    e.ctx.request_id = s.request_id.load(std::memory_order_relaxed);
    e.ctx.attempt = s.attempt.load(std::memory_order_relaxed);
    e.ctx.shard = s.shard.load(std::memory_order_relaxed);
    e.ctx.replica = s.replica.load(std::memory_order_relaxed);
    e.detail = s.detail.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    // Unchanged seq = the payload reads above were not overwritten; a
    // changed seq means the slot was recycled mid-read — drop it (the new
    // event will be seen by a later snapshot).
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<FlightEvent> FlightRecorder::timeline(
    std::uint64_t request_id) const {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : snapshot())
    if (e.ctx.active && e.ctx.request_id == request_id) out.push_back(e);
  return out;
}

void FlightRecorder::retain(std::uint64_t request_id, const char* anomaly) {
  {
    // Reserve (or find) the slot first, so a full set refuses *before*
    // paying the ring scan — under sustained overload every shed retains.
    const std::lock_guard<std::mutex> lock(retained_mu_);
    bool exists = false;
    for (const RetainedTimeline& t : retained_)
      if (t.request_id == request_id) { exists = true; break; }
    if (!exists) {
      if (retained_.size() >= max_retained_) {
        ++retain_dropped_;
        return;
      }
      retained_.push_back({request_id, anomaly, {}});
    }
  }
  std::vector<FlightEvent> events = timeline(request_id);
  const std::lock_guard<std::mutex> lock(retained_mu_);
  for (RetainedTimeline& t : retained_) {
    if (t.request_id != request_id) continue;
    // Re-retained (e.g. hedge win then a later deadline expiry): keep the
    // longer view and the first anomaly label.
    if (events.size() >= t.events.size()) t.events = std::move(events);
    return;
  }
}

std::vector<FlightRecorder::RetainedTimeline> FlightRecorder::retained()
    const {
  const std::lock_guard<std::mutex> lock(retained_mu_);
  return retained_;
}

std::uint64_t FlightRecorder::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t n = recorded();
  return n > capacity_ ? n - capacity_ : 0;
}

std::uint64_t FlightRecorder::retain_dropped() const {
  const std::lock_guard<std::mutex> lock(retained_mu_);
  return retain_dropped_;
}

void set_flight_recorder(FlightRecorder* recorder) {
  flight_detail::g_recorder.store(recorder, std::memory_order_release);
}

}  // namespace sysrle
