#pragma once
// Flight recorder: a bounded lock-free ring of per-request serving events,
// with anomaly-triggered timeline retention.
//
// Aggregate counters (`router.*`, `service.*`) say *how often* the serving
// stack hedged, failed over, coalesced, or shed — they cannot say what
// happened to request 1731.  The flight recorder can: every admission,
// queue transition, dispatch, hedge, failover, breaker trip, and response
// is recorded as one fixed-size event carrying the RequestContext, into a
// ring whose write path is a ticket fetch_add plus relaxed stores — no
// mutex, no allocation — so it can sit on the serving path.  When the ring
// wraps, the oldest events are overwritten (a flight recorder keeps the
// *recent* past; the per-request `retain` mechanism below preserves the
// interesting bits beyond that horizon).
//
// Anomalies — a deadline expiry, a typed shed, a breaker opening, a hedge
// win — call `retain(request_id, anomaly)`: the request's completed
// timeline is copied out of the ring into a bounded retained set
// (mutex-guarded; retention is the cold path) and survives later ring
// wraps.  Exporters (telemetry/exporters.hpp) dump the ring and the
// retained timelines as JSONL (`sysrle.flight.v1`) and as a Chrome trace
// with flow events linking hedge attempts to their primaries.
//
// Enabling: install a recorder with set_flight_recorder(&fr).  Recording
// sites call flight_record(...), whose disabled fast path is a single
// relaxed atomic pointer load — the same contract as telemetry_enabled().
//
// Sizing: one slot is ~64 bytes; a request produces ~4 events (admit,
// enqueue/dequeue, dispatch, respond) plus one per hedge/failover/coalesce
// decision, so capacity N reconstructs roughly the last N/6 requests.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/request_context.hpp"

namespace sysrle {

/// The event vocabulary (docs/OBSERVABILITY.md, "Request tracing and the
/// flight recorder").  One request's life is a sequence of these.
enum class FlightEventKind : std::uint8_t {
  kAdmit,             ///< router/service accepted the request
  kShed,              ///< typed synchronous rejection (detail = reason)
  kEnqueue,           ///< entered a backend admission queue
  kDequeue,           ///< left the queue for a worker (arg = queue µs)
  kDispatch,          ///< submitted to shard/replica (ctx says which)
  kFailover,          ///< dispatch landed off the preferred replica
  kHedgeFired,        ///< second dispatch issued after the hedge delay
  kHedgeSuppressed,   ///< hedge denied by the token-bucket budget
  kHedgeUnroutable,   ///< no second healthy replica (token refunded)
  kHedgeWon,          ///< the hedge's response beat the primary
  kHedgeLost,         ///< hedge cancelled or beaten by the primary
  kCoalesceJoined,    ///< attached as waiter (arg = primary's request id)
  kCoalescePromoted,  ///< waiter promoted to primary after owner expired
  kBreakerTrip,       ///< a circuit breaker transitioned to open
  kDeadlineExpired,   ///< deadline passed after admission (queue/mid-image)
  kCancelled,         ///< cooperative cancellation (hedge loser)
  kRespond,           ///< client-visible response delivered (detail = status)
  kCacheHit,          ///< by-handle diff served from the result cache
  kCacheMiss,         ///< by-handle diff missed the result cache
  kStoreEvict,        ///< image store evicted an entry (arg = fingerprint)
  kJournalAppend,     ///< durable store journaled a record (detail = kind)
  kSnapshot,          ///< durable store wrote a snapshot (arg = entries)
  kRecoveryDrop,      ///< recovery dropped an entry (detail = reason)
};

/// Human-readable (and JSONL) kind name, e.g. "hedge_fired".
const char* to_string(FlightEventKind kind);

/// One recorded event.  `seq` is the global record order (the ring ticket),
/// so interleavings across threads reconstruct exactly.
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_us = 0;  ///< microseconds since the recorder's epoch
  FlightEventKind kind = FlightEventKind::kAdmit;
  RequestContext ctx;
  const char* detail = "";  ///< string literal: reason/status/label
  std::uint64_t arg = 0;    ///< kind-specific payload (µs, linked id, ...)
};

/// Bounded lock-free event ring + bounded retained-timeline set.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 64).  `max_retained`
  /// bounds the anomaly set; once full, later retains are counted and
  /// dropped (the earliest anomalies are usually the diagnostic ones).
  explicit FlightRecorder(std::size_t capacity = 1 << 14,
                          std::size_t max_retained = 256);

  /// Records one event (thread-safe, lock-free: ticket fetch_add + relaxed
  /// payload stores).  `detail` must be a string literal.
  void record(FlightEventKind kind, const RequestContext& ctx,
              const char* detail = "", std::uint64_t arg = 0);

  /// Test/export hook: record with an explicit timestamp instead of the
  /// recorder clock, so golden dumps are byte-stable.
  void record_at(std::uint64_t ts_us, FlightEventKind kind,
                 const RequestContext& ctx, const char* detail = "",
                 std::uint64_t arg = 0);

  /// Copies the request's events out of the ring into the retained set
  /// (idempotent per request id; later retains of the same id replace the
  /// timeline with the longer view).  Cold path: takes the retained mutex.
  void retain(std::uint64_t request_id, const char* anomaly);

  struct RetainedTimeline {
    std::uint64_t request_id = 0;
    std::string anomaly;
    std::vector<FlightEvent> events;  ///< in seq order
  };

  /// Everything still live in the ring, in seq order.  Events being
  /// overwritten mid-read are skipped, never torn.
  std::vector<FlightEvent> snapshot() const;

  /// The ring's view of one request (subset of snapshot()).
  std::vector<FlightEvent> timeline(std::uint64_t request_id) const;

  /// The anomaly set, in retention order.
  std::vector<RetainedTimeline> retained() const;

  std::uint64_t recorded() const;  ///< events ever recorded
  std::uint64_t dropped() const;   ///< events overwritten by ring wrap
  std::uint64_t retain_dropped() const;  ///< retains refused (set full)
  std::size_t capacity() const { return capacity_; }

  /// Microseconds since construction (the event clock).
  std::uint64_t now_us() const;

 private:
  // One ring slot.  `seq` is the publication word: even = published (value
  // 2*(ticket + capacity)), odd = a writer is mid-store.  Payload fields
  // are relaxed atomics so concurrent snapshot() reads are race-free; the
  // seq acquire/release pair orders them.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<bool> ctx_active{false};
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::uint32_t> attempt{0};
    std::atomic<std::int32_t> shard{-1};
    std::atomic<std::int32_t> replica{-1};
    std::atomic<const char*> detail{""};
    std::atomic<std::uint64_t> arg{0};
  };

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};

  std::size_t max_retained_;
  mutable std::mutex retained_mu_;
  std::vector<RetainedTimeline> retained_;
  std::uint64_t retain_dropped_ = 0;
};

namespace flight_detail {
extern std::atomic<FlightRecorder*> g_recorder;
}  // namespace flight_detail

/// The process-global recorder, or nullptr when flight recording is off.
/// Inline single relaxed atomic load — safe on the serving path.
inline FlightRecorder* flight_recorder() {
  return flight_detail::g_recorder.load(std::memory_order_relaxed);
}

/// Installs (or, with nullptr, removes) the global recorder.  The caller
/// owns the recorder and must keep it alive while installed.
void set_flight_recorder(FlightRecorder* recorder);

/// Records into the global recorder when one is installed; a no-op
/// (one relaxed load) otherwise.
inline void flight_record(FlightEventKind kind, const RequestContext& ctx,
                          const char* detail = "", std::uint64_t arg = 0) {
  if (FlightRecorder* fr = flight_recorder()) fr->record(kind, ctx, detail, arg);
}

/// Retains into the global recorder when one is installed.
inline void flight_retain(std::uint64_t request_id, const char* anomaly) {
  if (FlightRecorder* fr = flight_recorder()) fr->retain(request_id, anomaly);
}

}  // namespace sysrle
