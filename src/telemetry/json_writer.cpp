#include "telemetry/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace sysrle {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, int indent_width)
    : out_(out), indent_width_(indent_width) {}

void JsonWriter::newline_indent() {
  if (indent_width_ <= 0) return;
  out_ << '\n';
  const std::size_t depth = stack_.size();
  for (std::size_t i = 0; i < depth * static_cast<std::size_t>(indent_width_);
       ++i)
    out_ << ' ';
}

void JsonWriter::before_value() {
  if (pending_key_) {
    // key() already emitted "name": — the value attaches to it.
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) {
    SYSRLE_REQUIRE(!root_written_, "JsonWriter: multiple root values");
    return;
  }
  Level& level = stack_.back();
  SYSRLE_REQUIRE(level.is_array,
                 "JsonWriter: object member requires key() first");
  if (!level.first) out_ << ',';
  level.first = false;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({false, true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SYSRLE_REQUIRE(!stack_.empty() && !stack_.back().is_array && !pending_key_,
                 "JsonWriter: mismatched end_object");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({true, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SYSRLE_REQUIRE(!stack_.empty() && stack_.back().is_array,
                 "JsonWriter: mismatched end_array");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  SYSRLE_REQUIRE(!stack_.empty() && !stack_.back().is_array && !pending_key_,
                 "JsonWriter: key() outside an object");
  Level& level = stack_.back();
  if (!level.first) out_ << ',';
  level.first = false;
  newline_indent();
  out_ << '"' << json_escape(k) << '"' << ':';
  if (indent_width_ > 0) out_ << ' ';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.write(buf, res.ptr - buf);
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  if (stack_.empty()) root_written_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (stack_.empty()) root_written_ = true;
  return *this;
}

}  // namespace sysrle
