#pragma once
// Minimal streaming JSON writer shared by every machine-readable output in
// sysrle: the metrics snapshot, the Chrome trace, the bench reports and the
// CLI --json modes.  One serialisation path means one escaping policy and
// one number format everywhere.
//
// Strings are escaped per RFC 8259 (quotes, backslash, control characters);
// doubles render with shortest round-trip precision (std::to_chars) and
// non-finite values map to null, since JSON has no NaN/Inf.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sysrle {

/// Escapes a string for embedding between JSON double quotes.
std::string json_escape(std::string_view s);

/// Structured writer with automatic commas and indentation.  Containers must
/// be closed in the order they were opened; misuse (a bare value where a key
/// is required, unbalanced end_*) throws contract_error rather than emitting
/// malformed JSON.
class JsonWriter {
 public:
  /// `indent_width` 0 renders compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent_width = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  /// key(k) followed by value(v).
  template <typename T>
  JsonWriter& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once every opened container has been closed and a root value has
  /// been written — i.e. the output is a complete JSON document.
  bool complete() const { return stack_.empty() && root_written_; }

 private:
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_width_;
  struct Level {
    bool is_array = false;
    bool first = true;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
  bool root_written_ = false;
};

}  // namespace sysrle
