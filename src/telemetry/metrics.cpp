#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace sysrle {

Histogram::Histogram(const HistogramSpec& spec) : spec_(spec) {
  SYSRLE_REQUIRE(spec_.bucket_count >= 1, "Histogram: need >= 1 bucket");
  SYSRLE_REQUIRE(spec_.scale == HistogramSpec::Scale::kLog2 ||
                     spec_.bucket_width > 0.0,
                 "Histogram: fixed scale needs bucket_width > 0");
  buckets_.assign(spec_.bucket_count, 0);
}

void Histogram::observe(double v) {
  stat_.add(v);
  std::size_t index = 0;
  if (spec_.scale == HistogramSpec::Scale::kLog2) {
    if (v > 1.0) {
      // bucket i covers (2^(i-1), 2^i]
      index = static_cast<std::size_t>(std::ceil(std::log2(v)));
    }
  } else {
    if (v > 0.0)
      index = static_cast<std::size_t>(std::floor(v / spec_.bucket_width));
  }
  index = std::min(index, buckets_.size() - 1);
  ++buckets_[index];
}

double Histogram::bucket_upper(std::size_t i) const {
  SYSRLE_REQUIRE(i < buckets_.size(), "Histogram: bucket index out of range");
  if (spec_.scale == HistogramSpec::Scale::kLog2)
    return std::pow(2.0, static_cast<double>(i));
  return static_cast<double>(i + 1) * spec_.bucket_width;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge(std::string_view name, double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

const Histogram* MetricsSnapshot::histogram(std::string_view name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

void MetricsRegistry::add(std::string_view counter, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = state_.counters.find(counter);
  if (it == state_.counters.end()) {
    state_.counters.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view gauge, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = state_.gauges.find(gauge);
  if (it == state_.gauges.end()) {
    state_.gauges.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view histogram, double value,
                              const HistogramSpec& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.histograms.find(histogram);
  if (it == state_.histograms.end()) {
    it = state_.histograms.emplace(std::string(histogram), Histogram(spec))
             .first;
  }
  it->second.observe(value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  state_ = MetricsSnapshot{};
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return state_.counters.empty() && state_.gauges.empty() &&
         state_.histograms.empty();
}

}  // namespace sysrle
