#pragma once
// Process-wide metrics primitives: named counters, gauges and histograms
// behind one mutex-guarded registry.
//
// The registry is the quantitative half of the telemetry layer (spans in
// telemetry/span.hpp are the temporal half).  Hot paths feed it per *row*,
// not per systolic iteration, so a mutex + map lookup is cheap relative to
// the work being measured; when telemetry is disabled (the default) the
// instrumentation sites never call in at all — see telemetry/telemetry.hpp
// for the one-atomic-load fast path.
//
// Metric naming convention (documented in docs/OBSERVABILITY.md):
// dot-separated "<subsystem>.<metric>" with units as a suffix where they are
// not obvious, e.g. "systolic.row_iterations", "stream.row_latency_us".

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace sysrle {

/// Bucket layout of a histogram.
struct HistogramSpec {
  enum class Scale {
    kLog2,   ///< bucket 0 covers <= 1; bucket i covers (2^(i-1), 2^i]
    kFixed,  ///< bucket i covers [i*bucket_width, (i+1)*bucket_width)
  };
  Scale scale = Scale::kLog2;
  double bucket_width = 1.0;      ///< kFixed only; must be > 0
  std::size_t bucket_count = 32;  ///< out-of-range values clamp to the ends
};

/// One distribution: bucket counts for shape plus a RunningStat (with its
/// quantile reservoir) for moments and p50/p95/p99.
class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec = {});

  /// Records one observation.
  void observe(double v);

  const HistogramSpec& spec() const { return spec_; }
  const RunningStat& stat() const { return stat_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Inclusive upper bound of bucket i.
  double bucket_upper(std::size_t i) const;

 private:
  HistogramSpec spec_;
  RunningStat stat_;
  std::vector<std::uint64_t> buckets_;
};

/// Deep copy of the registry's state at one instant.  Also the registry's
/// internal storage type (snapshots are copies taken under the lock).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;

  /// Lookup helpers returning a fallback when the metric never fired.
  std::uint64_t counter(std::string_view name, std::uint64_t fallback = 0) const;
  double gauge(std::string_view name, double fallback = 0.0) const;
  const Histogram* histogram(std::string_view name) const;
};

/// Thread-safe name-addressed metrics store.
class MetricsRegistry {
 public:
  /// Increments a counter (creating it at zero on first use).
  void add(std::string_view counter, std::uint64_t delta = 1);

  /// Sets a gauge to the latest value.
  void set_gauge(std::string_view gauge, double value);

  /// Records one observation into a histogram.  The spec only matters on the
  /// observation that creates the histogram; later calls reuse the existing
  /// bucket layout.
  void observe(std::string_view histogram, double value,
               const HistogramSpec& spec = {});

  /// Copies the whole registry state.
  MetricsSnapshot snapshot() const;

  /// Drops every metric.
  void reset();

  /// True when nothing has been recorded since construction/reset.
  bool empty() const;

 private:
  mutable std::mutex mu_;
  MetricsSnapshot state_;
};

}  // namespace sysrle
