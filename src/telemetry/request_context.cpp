#include "telemetry/request_context.hpp"

namespace sysrle {

namespace {
thread_local RequestContext t_current;
}  // namespace

const RequestContext& current_request_context() { return t_current; }

RequestContextScope::RequestContextScope(const RequestContext& ctx)
    : saved_(t_current) {
  t_current = ctx;
}

RequestContextScope::~RequestContextScope() { t_current = saved_; }

}  // namespace sysrle
