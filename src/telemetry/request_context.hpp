#pragma once
// RequestContext: the identity one serving request carries through every
// layer it touches.
//
// The paper's systolic array is analyzable because every cell's behaviour at
// every beat can be attributed; the serving stack regains that property by
// tagging each piece of work with *whose request* it is.  The ShardRouter
// stamps a context (client request id, dispatch attempt, shard/replica) onto
// every backend submission; the DiffService worker installs it on its thread
// for the duration of the request (RequestContextScope); and every span the
// engines record underneath — `stream.push_row`, `checked.row`,
// `service.request` — picks the context up from the thread automatically, so
// a trace can be filtered down to one request after the fact.
//
// The context is plain data: copying it is free, and an inactive context
// (the default) annotates nothing.

#include <cstdint>

namespace sysrle {

/// Identity of the request the current work belongs to.
struct RequestContext {
  /// True once a serving layer stamped this context; inactive contexts are
  /// never attached to spans or flight-recorder events.
  bool active = false;

  /// The *client-visible* request id (ServiceRequest::id as the caller set
  /// it) — stable across failover, hedging, and coalescer promotion, which
  /// is what makes one request's scattered work re-joinable.
  std::uint64_t request_id = 0;

  /// Dispatch ordinal within the request: 0 for the primary dispatch, 1+
  /// for hedges and failover re-dispatches.
  std::uint32_t attempt = 0;

  /// Where this dispatch landed; -1 = not routed (standalone DiffService).
  std::int32_t shard = -1;
  std::int32_t replica = -1;

  friend bool operator==(const RequestContext&,
                         const RequestContext&) = default;
};

/// The context installed on the calling thread (inactive when none).
const RequestContext& current_request_context();

/// RAII: installs `ctx` as the calling thread's context for the scope and
/// restores the previous one on exit.  Scopes nest (a service worker inside
/// a bench inside a test each see their own).
class RequestContextScope {
 public:
  explicit RequestContextScope(const RequestContext& ctx);
  ~RequestContextScope();

  RequestContextScope(const RequestContextScope&) = delete;
  RequestContextScope& operator=(const RequestContextScope&) = delete;

 private:
  RequestContext saved_;
};

}  // namespace sysrle
