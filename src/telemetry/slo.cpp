#include "telemetry/slo.hpp"

#include <algorithm>

namespace sysrle {

SloTracker::SloTracker() : SloTracker(Config{}) {}

SloTracker::SloTracker(const Config& config) : config_(config) {
  if (config_.bucket_width_us == 0) config_.bucket_width_us = 1;
  if (config_.long_window_buckets == 0) config_.long_window_buckets = 1;
  config_.short_window_buckets =
      std::clamp<std::size_t>(config_.short_window_buckets, 1,
                              config_.long_window_buckets);
  config_.objective = std::clamp(config_.objective, 0.0, 0.9999);
  ring_.resize(config_.long_window_buckets);
}

SloTracker::Bucket& SloTracker::bucket_for_locked(std::uint64_t now_us) {
  // 1-based epochs so index 0 unambiguously means "slot never used".
  const std::uint64_t index = now_us / config_.bucket_width_us + 1;
  Bucket& b = ring_[index % ring_.size()];
  if (b.index != index) b = Bucket{index, 0, 0};
  return b;
}

void SloTracker::record(std::uint64_t now_us, std::uint64_t latency_us) {
  const bool bad = latency_us > config_.target_us;
  const std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket_for_locked(now_us);
  ++b.total;
  ++total_;
  if (bad) {
    ++b.bad;
    ++bad_;
  }
}

void SloTracker::record_breach(std::uint64_t now_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket_for_locked(now_us);
  ++b.total;
  ++b.bad;
  ++total_;
  ++bad_;
}

SloTracker::Burn SloTracker::window_locked(std::uint64_t now_us,
                                           std::size_t buckets) const {
  const std::uint64_t newest = now_us / config_.bucket_width_us + 1;
  const std::uint64_t oldest =
      newest >= buckets ? newest - buckets + 1 : 1;
  Burn burn;
  for (const Bucket& b : ring_) {
    if (b.index < oldest || b.index > newest) continue;  // stale or unused
    burn.total += b.total;
    burn.bad += b.bad;
  }
  if (burn.total > 0) {
    burn.bad_fraction =
        static_cast<double>(burn.bad) / static_cast<double>(burn.total);
    burn.burn_rate = burn.bad_fraction / (1.0 - config_.objective);
  }
  return burn;
}

SloTracker::Burn SloTracker::short_window(std::uint64_t now_us) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return window_locked(now_us, config_.short_window_buckets);
}

SloTracker::Burn SloTracker::long_window(std::uint64_t now_us) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return window_locked(now_us, config_.long_window_buckets);
}

std::uint64_t SloTracker::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t SloTracker::bad() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bad_;
}

void SloTracker::export_gauges(MetricsRegistry& registry, std::uint64_t now_us,
                               const std::string& prefix) const {
  const Burn s = short_window(now_us);
  const Burn l = long_window(now_us);
  std::uint64_t tot = 0, bad = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tot = total_;
    bad = bad_;
  }
  registry.set_gauge(prefix + ".target_us",
                     static_cast<double>(config_.target_us));
  registry.set_gauge(prefix + ".objective", config_.objective);
  registry.set_gauge(prefix + ".burn_rate_short", s.burn_rate);
  registry.set_gauge(prefix + ".burn_rate_long", l.burn_rate);
  registry.set_gauge(prefix + ".bad_fraction_short", s.bad_fraction);
  registry.set_gauge(prefix + ".bad_fraction_long", l.bad_fraction);
  registry.set_gauge(prefix + ".good_total", static_cast<double>(tot - bad));
  registry.set_gauge(prefix + ".bad_total", static_cast<double>(bad));
}

}  // namespace sysrle
