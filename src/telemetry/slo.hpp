#pragma once
// SLO tracking: rolling burn-rate windows over a request-latency objective.
//
// An SLO here is "objective fraction of requests complete within the target
// latency" — e.g. 99% of interactive requests in 50 ms.  Each completed
// request is classified good (latency <= target) or bad (late, shed, or
// failed); the tracker buckets outcomes by time and reports, over a short
// and a long rolling window, the *burn rate*: the bad fraction divided by
// the error budget (1 - objective).  Burn rate 1.0 means the error budget
// is being consumed exactly as fast as it accrues; sustained burn > 1.0
// means the SLO will be violated.  Two windows is the standard multi-window
// alerting shape: the long window says the budget is really burning, the
// short window says it is burning *now* (so recovered incidents stop
// alerting quickly).
//
// The tracker is mutex-guarded — it is fed once per request completion,
// never from the row loop — and clocks are caller-supplied microsecond
// timestamps so tests and golden exports are deterministic.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

#include <mutex>

namespace sysrle {

/// Rolling-window burn-rate tracker for one latency SLO.
class SloTracker {
 public:
  struct Config {
    /// Latency target: a request is "good" iff latency_us <= target.
    std::uint64_t target_us = 50'000;
    /// Fraction of requests that must be good (error budget = 1 - this).
    double objective = 0.99;
    /// Time-bucket granularity of the rolling windows.
    std::uint64_t bucket_width_us = 1'000'000;
    /// Window sizes, in buckets.  Short must be <= long.
    std::size_t short_window_buckets = 5;
    std::size_t long_window_buckets = 60;
  };

  SloTracker();  ///< default Config
  explicit SloTracker(const Config& config);

  /// Records one completed request: good iff `latency_us <= target_us`.
  void record(std::uint64_t now_us, std::uint64_t latency_us);

  /// Records one request that consumed error budget regardless of latency
  /// (a typed shed, a failure — the client did not get a good answer).
  void record_breach(std::uint64_t now_us);

  /// One window's view at `now_us`.
  struct Burn {
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
    double bad_fraction = 0.0;  ///< bad / total (0 when total == 0)
    double burn_rate = 0.0;     ///< bad_fraction / (1 - objective)
  };

  Burn short_window(std::uint64_t now_us) const;
  Burn long_window(std::uint64_t now_us) const;

  /// Lifetime totals (not windowed).
  std::uint64_t total() const;
  std::uint64_t bad() const;

  const Config& config() const { return config_; }

  /// Publishes the current windows as gauges on `registry`:
  ///   <prefix>.target_us, <prefix>.objective,
  ///   <prefix>.burn_rate_short, <prefix>.burn_rate_long,
  ///   <prefix>.bad_fraction_short, <prefix>.bad_fraction_long,
  ///   <prefix>.good_total, <prefix>.bad_total
  void export_gauges(MetricsRegistry& registry, std::uint64_t now_us,
                     const std::string& prefix = "slo.interactive") const;

 private:
  struct Bucket {
    std::uint64_t index = 0;  ///< now_us / bucket_width_us, 1-based epoch
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
  };

  // Returns the live bucket for `now_us`, recycling the ring slot if it
  // holds an older epoch.  Caller holds mu_.
  Bucket& bucket_for_locked(std::uint64_t now_us);
  Burn window_locked(std::uint64_t now_us, std::size_t buckets) const;

  Config config_;
  mutable std::mutex mu_;
  std::vector<Bucket> ring_;  ///< long_window_buckets slots, index % size
  std::uint64_t total_ = 0;
  std::uint64_t bad_ = 0;
};

}  // namespace sysrle
