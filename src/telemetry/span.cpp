#include "telemetry/span.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "telemetry/telemetry.hpp"

namespace sysrle {

std::uint32_t current_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

SpanTracer::SpanTracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {}

void SpanTracer::push(SpanEvent event) {
  event.tid = current_thread_ordinal();
  event.ctx = current_request_context();
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void SpanTracer::record(const char* name, const char* category,
                        std::uint64_t ts_us, std::uint64_t dur_us) {
  SpanEvent e;
  e.name = name;
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  push(e);
}

void SpanTracer::record_owned(std::string_view name, const char* category,
                              std::uint64_t ts_us, std::uint64_t dur_us) {
  SpanEvent e;
  e.name_owned = true;
  const std::size_t n = std::min(name.size(), kSpanNameCapacity - 1);
  std::memcpy(e.owned_name.data(), name.data(), n);
  e.owned_name[n] = '\0';
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  push(e);
}

std::vector<SpanEvent> SpanTracer::snapshot() const {
  std::vector<SpanEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  return out;
}

std::uint64_t SpanTracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t SpanTracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void SpanTracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::uint64_t SpanTracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

TelemetrySpan::TelemetrySpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!telemetry_enabled()) return;
  active_ = true;
  start_us_ = global_tracer().now_us();
}

TelemetrySpan::TelemetrySpan(const std::string& name, const char* category)
    : name_(nullptr), category_(category) {
  if (!telemetry_enabled()) return;
  const std::size_t n = std::min(name.size(), kSpanNameCapacity - 1);
  std::memcpy(owned_.data(), name.data(), n);
  owned_[n] = '\0';
  active_ = true;
  start_us_ = global_tracer().now_us();
}

TelemetrySpan::~TelemetrySpan() {
  if (!active_ || !telemetry_enabled()) return;
  SpanTracer& tracer = global_tracer();
  const std::uint64_t end_us = tracer.now_us();
  const std::uint64_t dur = end_us >= start_us_ ? end_us - start_us_ : 0;
  if (name_ != nullptr) {
    tracer.record(name_, category_, start_us_, dur);
  } else {
    tracer.record_owned(owned_.data(), category_, start_us_, dur);
  }
}

}  // namespace sysrle
