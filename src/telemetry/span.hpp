#pragma once
// Lightweight span tracing: RAII scopes that record (name, category, thread,
// start, duration) events into a bounded thread-safe buffer, exportable as a
// Chrome trace_event file (telemetry/exporters.hpp) that chrome://tracing
// and Perfetto load directly.
//
// Usage at an instrumentation site:
//
//   void hot_path() {
//     TELEMETRY_SPAN("row_diff");
//     ...
//   }
//
// The span checks the global enable flag in its constructor; when telemetry
// is disabled the scope never reads the clock.  Span names and categories
// passed as `const char*` must be string literals (or otherwise outlive the
// tracer) — the buffer stores the pointers, not copies.  For dynamically
// composed names (a per-replica label, a per-request tag) use the
// `std::string` constructor / `record_owned`, which copy the name into a
// small inline buffer (truncated to kSpanNameCapacity - 1 characters) so
// the event can never dangle.
//
// Every recorded span is annotated with the calling thread's RequestContext
// (telemetry/request_context.hpp) when one is active, so traces can be
// filtered down to a single serving request.

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/request_context.hpp"

namespace sysrle {

/// Inline storage (including the terminator) for owned span names.
inline constexpr std::size_t kSpanNameCapacity = 48;

/// One completed span.  Timestamps are microseconds since the tracer epoch.
struct SpanEvent {
  const char* name = "";  ///< literal name; unused when name_owned
  const char* category = "";
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;

  /// Request annotation, copied from the recording thread's context.
  /// Inactive (`ctx.active == false`) for spans outside any request.
  RequestContext ctx;

  /// Owned-name small buffer: when name_owned, the label lives here and
  /// `name` is ignored (the buffer is value-copied with the event).
  bool name_owned = false;
  std::array<char, kSpanNameCapacity> owned_name{};

  /// The span's display name regardless of storage.
  const char* label() const { return name_owned ? owned_name.data() : name; }
};

/// Small dense id for the calling thread (1, 2, 3, ... in order of first
/// use) — far more readable in a trace viewer than a hashed pthread id.
std::uint32_t current_thread_ordinal();

/// Bounded thread-safe buffer of completed spans.
class SpanTracer {
 public:
  /// `capacity` bounds memory; once full, new events are dropped and
  /// counted.  Traces are diagnostics — losing the tail beats unbounded
  /// growth inside an instrumented server.
  explicit SpanTracer(std::size_t capacity = 1 << 16);

  /// Records one completed span (thread-safe).  `name` must outlive the
  /// tracer (string literal).
  void record(const char* name, const char* category, std::uint64_t ts_us,
              std::uint64_t dur_us);

  /// Records one completed span whose name is copied into the event's
  /// inline buffer (truncated to kSpanNameCapacity - 1 chars) — safe for
  /// dynamically composed names that do not outlive the call.
  void record_owned(std::string_view name, const char* category,
                    std::uint64_t ts_us, std::uint64_t dur_us);

  /// Copies the buffered events, sorted by (ts_us, dur_us descending) so
  /// enclosing spans precede their children at equal timestamps.
  std::vector<SpanEvent> snapshot() const;

  /// Events rejected because the buffer was full.
  std::uint64_t dropped() const;

  /// Buffered event count.
  std::size_t size() const;

  /// Forgets all events (and the drop count).
  void clear();

  /// Microseconds since this tracer was constructed (its epoch).
  std::uint64_t now_us() const;

 private:
  void push(SpanEvent event);

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII scope recording into the *global* tracer when telemetry is enabled.
/// Prefer the TELEMETRY_SPAN macro, which names the local variable for you.
class TelemetrySpan {
 public:
  explicit TelemetrySpan(const char* name, const char* category = "sysrle");
  /// Owned-name variant: copies `name` into the span's inline buffer, so a
  /// dynamically composed label (e.g. "service.request.shard0.replica1")
  /// can be destroyed before the tracer is exported.
  explicit TelemetrySpan(const std::string& name,
                         const char* category = "sysrle");
  ~TelemetrySpan();

  TelemetrySpan(const TelemetrySpan&) = delete;
  TelemetrySpan& operator=(const TelemetrySpan&) = delete;

 private:
  const char* name_;  ///< nullptr when the name lives in owned_
  const char* category_;
  std::array<char, kSpanNameCapacity> owned_{};
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

#define SYSRLE_SPAN_CONCAT2(a, b) a##b
#define SYSRLE_SPAN_CONCAT(a, b) SYSRLE_SPAN_CONCAT2(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define TELEMETRY_SPAN(...) \
  ::sysrle::TelemetrySpan SYSRLE_SPAN_CONCAT(telemetry_span_, \
                                             __LINE__)(__VA_ARGS__)

}  // namespace sysrle
