#pragma once
// Lightweight span tracing: RAII scopes that record (name, category, thread,
// start, duration) events into a bounded thread-safe buffer, exportable as a
// Chrome trace_event file (telemetry/exporters.hpp) that chrome://tracing
// and Perfetto load directly.
//
// Usage at an instrumentation site:
//
//   void hot_path() {
//     TELEMETRY_SPAN("row_diff");
//     ...
//   }
//
// The span checks the global enable flag in its constructor; when telemetry
// is disabled the scope never reads the clock.  Span names and categories
// must be string literals (or otherwise outlive the tracer) — the buffer
// stores the pointers, not copies.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sysrle {

/// One completed span.  Timestamps are microseconds since the tracer epoch.
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
};

/// Small dense id for the calling thread (1, 2, 3, ... in order of first
/// use) — far more readable in a trace viewer than a hashed pthread id.
std::uint32_t current_thread_ordinal();

/// Bounded thread-safe buffer of completed spans.
class SpanTracer {
 public:
  /// `capacity` bounds memory; once full, new events are dropped and
  /// counted.  Traces are diagnostics — losing the tail beats unbounded
  /// growth inside an instrumented server.
  explicit SpanTracer(std::size_t capacity = 1 << 16);

  /// Records one completed span (thread-safe).
  void record(const char* name, const char* category, std::uint64_t ts_us,
              std::uint64_t dur_us);

  /// Copies the buffered events, sorted by (ts_us, dur_us descending) so
  /// enclosing spans precede their children at equal timestamps.
  std::vector<SpanEvent> snapshot() const;

  /// Events rejected because the buffer was full.
  std::uint64_t dropped() const;

  /// Buffered event count.
  std::size_t size() const;

  /// Forgets all events (and the drop count).
  void clear();

  /// Microseconds since this tracer was constructed (its epoch).
  std::uint64_t now_us() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII scope recording into the *global* tracer when telemetry is enabled.
/// Prefer the TELEMETRY_SPAN macro, which names the local variable for you.
class TelemetrySpan {
 public:
  explicit TelemetrySpan(const char* name, const char* category = "sysrle");
  ~TelemetrySpan();

  TelemetrySpan(const TelemetrySpan&) = delete;
  TelemetrySpan& operator=(const TelemetrySpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

#define SYSRLE_SPAN_CONCAT2(a, b) a##b
#define SYSRLE_SPAN_CONCAT(a, b) SYSRLE_SPAN_CONCAT2(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define TELEMETRY_SPAN(...) \
  ::sysrle::TelemetrySpan SYSRLE_SPAN_CONCAT(telemetry_span_, \
                                             __LINE__)(__VA_ARGS__)

}  // namespace sysrle
