#include "telemetry/telemetry.hpp"

namespace sysrle {

namespace telemetry_detail {
std::atomic<bool> g_enabled{false};
}  // namespace telemetry_detail

void set_telemetry_enabled(bool on) {
  telemetry_detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

SpanTracer& global_tracer() {
  static SpanTracer tracer;
  return tracer;
}

void reset_telemetry() {
  global_metrics().reset();
  global_tracer().clear();
}

}  // namespace sysrle
