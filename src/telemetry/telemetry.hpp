#pragma once
// Global telemetry switchboard: one process-wide MetricsRegistry, one
// process-wide SpanTracer, and an enable flag that instrumentation sites
// check before doing any work.
//
// Telemetry is OFF by default.  The disabled fast path at every
// instrumentation site is a single relaxed atomic load (telemetry_enabled()
// is inline), keeping the hot systolic row loop within noise of the
// uninstrumented build — bench_micro's BM_SystolicSimulation* pair measures
// exactly this.
//
// Who turns it on: the CLI when --metrics/--trace-out are passed, the
// `sysrle perf` subcommand, benches measuring instrumented throughput, and
// tests.  Libraries never enable it themselves.

#include <atomic>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sysrle {

namespace telemetry_detail {
extern std::atomic<bool> g_enabled;
}  // namespace telemetry_detail

/// True when instrumentation sites should record.  Inline single relaxed
/// atomic load — safe to call in hot loops.
inline bool telemetry_enabled() {
  return telemetry_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the global enable flag.  Thread-safe.
void set_telemetry_enabled(bool on);

/// The process-wide registry instrumentation records into.
MetricsRegistry& global_metrics();

/// The process-wide tracer TELEMETRY_SPAN records into.
SpanTracer& global_tracer();

/// Clears both global sinks (the CLI scopes a run with this; tests too).
/// Does not change the enable flag.
void reset_telemetry();

}  // namespace sysrle
