#include "workload/fingerprint.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sysrle {
namespace {

/// Integer triangle wave with the given period and amplitude: exact on all
/// platforms, no floating point.
pos_t triangle_wave(pos_t x, pos_t period, pos_t amplitude) {
  if (period <= 0 || amplitude <= 0) return 0;
  const pos_t phase = x % (2 * period);
  const pos_t ramp = phase < period ? phase : 2 * period - phase;
  return ramp * amplitude / period - amplitude / 2;
}

}  // namespace

BitmapImage generate_ridges(Rng& rng, const FingerprintParams& params) {
  SYSRLE_REQUIRE(params.width > 0 && params.height > 0,
                 "generate_ridges: empty image");
  SYSRLE_REQUIRE(params.ridge_period >= 2 && params.ridge_width >= 1 &&
                     params.ridge_width < params.ridge_period,
                 "generate_ridges: ridge_width must be in [1, period)");
  BitmapImage img(params.width, params.height);
  // A random global phase so different seeds give different prints.
  const pos_t phase0 = rng.uniform(0, params.ridge_period - 1);
  const pos_t wobble_phase =
      params.wobble_period > 0 ? rng.uniform(0, params.wobble_period - 1) : 0;

  for (pos_t y = 0; y < params.height; ++y) {
    for (pos_t x = 0; x < params.width; ++x) {
      const pos_t wobble = triangle_wave(x + wobble_phase,
                                         params.wobble_period,
                                         params.wobble_amplitude);
      const pos_t band =
          (y + phase0 + wobble % params.ridge_period + params.ridge_period) %
          params.ridge_period;
      if (band < params.ridge_width) img.set(x, y, true);
    }
  }
  return img;
}

std::vector<Minutia> add_minutiae(Rng& rng, BitmapImage& image,
                                  std::size_t count) {
  SYSRLE_REQUIRE(image.width() > 8 && image.height() > 8,
                 "add_minutiae: image too small");
  std::vector<Minutia> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Minutia m;
    m.kind = rng.bernoulli(0.5) ? Minutia::Kind::kEnding
                                : Minutia::Kind::kBifurcation;
    m.size = rng.uniform(3, 8);
    m.x = rng.uniform(0, image.width() - m.size - 1);
    m.y = rng.uniform(0, image.height() - m.size - 1);
    if (m.kind == Minutia::Kind::kEnding) {
      // Break the ridge: clear a small horizontal patch.
      image.fill_rect(m.x, m.y, m.size, std::min<pos_t>(m.size / 2 + 1, 3),
                      false);
    } else {
      // Bridge across a valley: paint a thin vertical bar.
      image.fill_rect(m.x, m.y, 2, m.size, true);
    }
    out.push_back(m);
  }
  return out;
}

}  // namespace sysrle
