#pragma once
// Synthetic fingerprint-like ridge imagery — the last of the four
// applications the paper's introduction names (PCB inspection, character
// recognition, fingerprint analysis, motion detection).  Real fingerprints
// binarise into alternating ridge/valley stripes whose local defects
// (minutiae: ridge endings and bifurcations) are exactly the sparse,
// run-structured differences the systolic machine processes fastest.
//
// The generator draws wavy horizontal ridges (sinusoid-free: integer
// triangle-wave phase so results are platform-exact) and can perturb a copy
// with synthetic minutiae for match/diff experiments.

#include <vector>

#include "bitmap/bitmap_image.hpp"
#include "workload/rng.hpp"

namespace sysrle {

/// Ridge pattern parameters.
struct FingerprintParams {
  pos_t width = 512;
  pos_t height = 512;
  pos_t ridge_period = 8;   ///< ridge+valley pitch in pixels (>= 2)
  pos_t ridge_width = 4;    ///< foreground thickness within a period
  pos_t wobble_amplitude = 6;  ///< vertical waviness of the ridges
  pos_t wobble_period = 96;    ///< horizontal wavelength of the waviness
};

/// Renders a wavy-ridge binary pattern.  Deterministic given the rng state.
BitmapImage generate_ridges(Rng& rng, const FingerprintParams& params);

/// One synthetic minutia perturbation applied to a ridge image.
struct Minutia {
  enum class Kind {
    kEnding,       ///< a ridge is broken (foreground erased)
    kBifurcation,  ///< a short bridge connects two ridges (foreground added)
  };
  Kind kind = Kind::kEnding;
  pos_t x = 0, y = 0;  ///< anchor position
  pos_t size = 0;      ///< affected extent in pixels
};

/// Applies `count` random minutiae to `image` and returns their ground
/// truth.  Endings erase a small patch on a ridge; bifurcations paint a
/// vertical bridge across a valley.
std::vector<Minutia> add_minutiae(Rng& rng, BitmapImage& image,
                                  std::size_t count);

}  // namespace sysrle
