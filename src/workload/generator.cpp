#include "workload/generator.hpp"

#include <algorithm>

#include "bitmap/convert.hpp"
#include "common/assert.hpp"
#include "rle/ops.hpp"

namespace sysrle {

RleRow generate_row(Rng& rng, const RowGenParams& params) {
  SYSRLE_REQUIRE(params.width >= 0, "generate_row: negative width");
  SYSRLE_REQUIRE(params.min_run_length >= 1 &&
                     params.min_run_length <= params.max_run_length,
                 "generate_row: bad run length range");
  SYSRLE_REQUIRE(params.density > 0.0 && params.density < 1.0,
                 "generate_row: density must be in (0, 1)");

  // Mean gap chosen so that mean_run / (mean_run + mean_gap) == density;
  // the paper varies density "by changing the average distance between the
  // runs".  Gaps are at least 1 pixel, so rows are canonical.
  const double mean_run =
      0.5 * static_cast<double>(params.min_run_length + params.max_run_length);
  const double mean_gap =
      std::max(1.0, mean_run * (1.0 - params.density) / params.density);
  const len_t max_gap = std::max<len_t>(1, static_cast<len_t>(2.0 * mean_gap) - 1);

  RleRow row;
  // Random phase for the first run so rows are not correlated at x = 0.
  pos_t pos = rng.uniform(0, max_gap);
  while (pos < params.width) {
    const len_t len =
        rng.uniform(params.min_run_length, params.max_run_length);
    const len_t clipped = std::min<len_t>(len, params.width - pos);
    if (clipped >= 1) row.push_back(Run{pos, clipped});
    pos += len + rng.uniform(1, max_gap);
  }
  return row;
}

namespace {

/// Applies error-run flips on a bitmap copy of `base` and re-encodes.
/// `place` is called once per error run and must flip a range in the BitRow.
template <typename PlaceFn>
RleRow flip_and_reencode(const RleRow& base, pos_t width, PlaceFn place) {
  BitRow bits = rle_to_bitrow(base, width);
  place(bits);
  return bitrow_to_rle(bits);
}

}  // namespace

RleRow inject_errors(Rng& rng, const RleRow& base, pos_t width,
                     const ErrorGenParams& params) {
  SYSRLE_REQUIRE(params.min_error_length >= 1 &&
                     params.min_error_length <= params.max_error_length,
                 "inject_errors: bad error length range");
  SYSRLE_REQUIRE(params.error_fraction >= 0.0 && params.error_fraction < 1.0,
                 "inject_errors: error_fraction outside [0, 1)");
  if (params.error_fraction == 0.0 || width == 0) return base;

  // The paper places the error runs exactly like the foreground runs: runs
  // of length 2..6 separated by gaps whose mean sets the error percentage
  // ("varied by changing the average distance between the runs").  The mask
  // is therefore non-overlapping, every masked pixel really differs, and the
  // achieved error fraction equals the target.  Flipping "in either
  // direction" is the XOR with the base row.
  RowGenParams mask_params;
  mask_params.width = width;
  mask_params.min_run_length = params.min_error_length;
  mask_params.max_run_length = params.max_error_length;
  mask_params.density = params.error_fraction;
  const RleRow mask = generate_row(rng, mask_params);
  return xor_rows(base, mask);
}

RleRow inject_error_runs(Rng& rng, const RleRow& base, pos_t width,
                         std::size_t count, len_t min_len, len_t max_len) {
  SYSRLE_REQUIRE(min_len >= 1 && min_len <= max_len,
                 "inject_error_runs: bad length range");
  SYSRLE_REQUIRE(width >= max_len, "inject_error_runs: width below run length");
  return flip_and_reencode(base, width, [&](BitRow& bits) {
    for (std::size_t i = 0; i < count; ++i) {
      const len_t len = rng.uniform(min_len, max_len);
      const pos_t pos = rng.uniform(0, width - len);
      bits.flip_range(pos, len);
    }
  });
}

RowPairSample generate_pair(Rng& rng, const RowGenParams& row_params,
                            const ErrorGenParams& error_params) {
  RowPairSample sample;
  sample.first = generate_row(rng, row_params);
  sample.second =
      inject_errors(rng, sample.first, row_params.width, error_params);
  sample.error_pixels = hamming_distance(sample.first, sample.second);
  return sample;
}

RowPairSample generate_pair_fixed_errors(Rng& rng,
                                         const RowGenParams& row_params,
                                         std::size_t error_run_count,
                                         len_t error_run_length) {
  RowPairSample sample;
  sample.first = generate_row(rng, row_params);
  sample.second =
      inject_error_runs(rng, sample.first, row_params.width, error_run_count,
                        error_run_length, error_run_length);
  sample.error_pixels = hamming_distance(sample.first, sample.second);
  return sample;
}

RleImage generate_image(Rng& rng, pos_t height, const RowGenParams& params) {
  RleImage img(params.width, height);
  for (pos_t y = 0; y < height; ++y) img.set_row(y, generate_row(rng, params));
  return img;
}

}  // namespace sysrle
