#pragma once
// The paper's section-5 workload generator, reproduced exactly:
//
//   "The on pixels in the first image were chosen in runs of length 4 to 20,
//    and the second image was obtained by flipping some of the bits of the
//    first image in either direction (1 to 0, and 0 to 1).  Here these
//    changes are called errors and they were created in runs of length 2 to
//    6.  The percentage of on pixels in the first image and of the errors in
//    the second image was varied by changing the average distance between
//    the runs."
//
// generate_row places foreground runs with uniform lengths and uniform gaps
// whose mean is chosen from the target density; inject_* flips error runs.

#include <cstdint>
#include <vector>

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"
#include "workload/rng.hpp"

namespace sysrle {

/// Parameters for the base (reference) row.
struct RowGenParams {
  pos_t width = 10000;
  len_t min_run_length = 4;   ///< paper: runs of length 4 ...
  len_t max_run_length = 20;  ///< ... to 20
  double density = 0.30;      ///< fraction of on pixels (paper uses ~30 %)
};

/// Generates one reference row.  Runs are separated by at least one
/// background pixel, so the row is canonical (maximally compressed) — the
/// precondition of the paper's Observation bound.
RleRow generate_row(Rng& rng, const RowGenParams& params);

/// Parameters for error injection by target fraction.
struct ErrorGenParams {
  len_t min_error_length = 2;  ///< paper: error runs of length 2 ...
  len_t max_error_length = 6;  ///< ... to 6
  double error_fraction = 0.035;  ///< target fraction of pixels flipped
};

/// Flips error runs in `base` so that error_fraction * width pixels differ.
/// The error runs are placed like the paper's foreground runs — lengths
/// uniform in [min, max], gaps sized to hit the target fraction — so they
/// never overlap and the achieved error fraction matches the target (up to
/// end-of-row rounding).  Each error run flips its pixels "in either
/// direction": 1s become 0s and 0s become 1s (XOR with the mask).
/// error_fraction must be < 1; with lengths 2-6 fractions up to ~0.8 are
/// reachable (each run needs a 1-pixel gap).
RleRow inject_errors(Rng& rng, const RleRow& base, pos_t width,
                     const ErrorGenParams& params);

/// Flips exactly `count` error runs, each of length uniform in
/// [min_len, max_len], at uniformly random positions — Table 1's second
/// regime ("the number of errors is fixed at 6 runs each of size 4 pixels"
/// uses count = 6, min_len = max_len = 4).  Error runs may overlap each
/// other; overlapping flips compose by XOR exactly as repeated physical
/// defects would.
RleRow inject_error_runs(Rng& rng, const RleRow& base, pos_t width,
                         std::size_t count, len_t min_len, len_t max_len);

/// One generated test case: the pair of rows plus ground-truth measures.
struct RowPairSample {
  RleRow first;
  RleRow second;
  len_t error_pixels = 0;  ///< pixels that actually differ
};

/// Generates a (first, second) row pair in the paper's fraction regime.
RowPairSample generate_pair(Rng& rng, const RowGenParams& row_params,
                            const ErrorGenParams& error_params);

/// Generates a (first, second) row pair in the fixed-error-run regime.
RowPairSample generate_pair_fixed_errors(Rng& rng,
                                         const RowGenParams& row_params,
                                         std::size_t error_run_count,
                                         len_t error_run_length);

/// Generates a full RLE image whose every row follows `params`.
RleImage generate_image(Rng& rng, pos_t height, const RowGenParams& params);

}  // namespace sysrle
