#pragma once
// A tiny 5x7 bitmap font and text rasteriser for the character-recognition
// workload (another application named in the paper's introduction).
// Template-vs-sample glyph comparison in RLE form is a classic use of the
// image-difference operation.

#include <string>

#include "bitmap/bitmap_image.hpp"

namespace sysrle {

/// Width/height of one glyph cell in pixels (before scaling).
inline constexpr pos_t kGlyphWidth = 5;
inline constexpr pos_t kGlyphHeight = 7;

/// True if the font has a bitmap for `c`.  Supported: '0'-'9', 'A'-'Z'
/// (upper case only) and ' '.
bool glyph_available(char c);

/// Renders a single glyph into a kGlyphWidth x kGlyphHeight image scaled by
/// `scale` (each font pixel becomes a scale x scale block).
/// Requires glyph_available(c).
BitmapImage render_glyph(char c, pos_t scale = 1);

/// Renders a text string on one line with a 1-pixel (scaled) inter-glyph
/// gap.  Unsupported characters render as blanks.
BitmapImage render_text(const std::string& text, pos_t scale = 1);

}  // namespace sysrle
