#include "workload/metrics.hpp"

#include "common/assert.hpp"
#include "rle/ops.hpp"

namespace sysrle {

RowSimilarity measure_rows(const RleRow& a, const RleRow& b, pos_t width) {
  SYSRLE_REQUIRE(width > 0, "measure_rows: non-positive width");
  RowSimilarity s;
  s.error_pixels = hamming_distance(a, b);
  s.error_fraction =
      static_cast<double>(s.error_pixels) / static_cast<double>(width);
  s.k1 = a.run_count();
  s.k2 = b.run_count();
  s.k3 = xor_rows(a, b).run_count();
  s.run_count_difference = s.k1 > s.k2 ? s.k1 - s.k2 : s.k2 - s.k1;
  const len_t inter = intersection_pixels(a, b);
  const len_t uni = a.foreground_pixels() + b.foreground_pixels() - inter;
  s.jaccard = uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                      : 1.0;
  return s;
}

ImageSimilarity measure_images(const RleImage& a, const RleImage& b) {
  SYSRLE_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                 "measure_images: dimension mismatch");
  ImageSimilarity s;
  len_t inter_total = 0;
  len_t union_total = 0;
  for (pos_t y = 0; y < a.height(); ++y) {
    const RleRow& ra = a.row(y);
    const RleRow& rb = b.row(y);
    s.error_pixels += hamming_distance(ra, rb);
    s.total_runs_a += ra.run_count();
    s.total_runs_b += rb.run_count();
    s.total_runs_xor += xor_rows(ra, rb).run_count();
    const std::uint64_t k1 = ra.run_count();
    const std::uint64_t k2 = rb.run_count();
    s.sum_run_count_difference += k1 > k2 ? k1 - k2 : k2 - k1;
    const len_t inter = intersection_pixels(ra, rb);
    inter_total += inter;
    union_total += ra.foreground_pixels() + rb.foreground_pixels() - inter;
  }
  const double area =
      static_cast<double>(a.width()) * static_cast<double>(a.height());
  s.error_fraction =
      area > 0 ? static_cast<double>(s.error_pixels) / area : 0.0;
  s.jaccard = union_total > 0 ? static_cast<double>(inter_total) /
                                    static_cast<double>(union_total)
                              : 1.0;
  return s;
}

}  // namespace sysrle
