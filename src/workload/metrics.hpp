#pragma once
// Similarity measures between image pairs — the quantities the paper's
// evaluation sweeps and correlates: error-pixel fraction (Figure 5's x axis),
// run counts k1/k2/k3, and the run-count difference |k1 - k2| (the claimed
// predictor of systolic iterations).

#include <cstdint>

#include "rle/rle_image.hpp"
#include "rle/rle_row.hpp"

namespace sysrle {

/// Similarity statistics for one row pair.
struct RowSimilarity {
  len_t error_pixels = 0;      ///< |a XOR b|
  double error_fraction = 0.0; ///< error_pixels / width
  std::uint64_t k1 = 0;        ///< runs in a
  std::uint64_t k2 = 0;        ///< runs in b
  std::uint64_t k3 = 0;        ///< runs in the canonical XOR
  std::uint64_t run_count_difference = 0;  ///< |k1 - k2|
  double jaccard = 1.0;        ///< |A and B| / |A or B| (1.0 when both empty)
};

/// Measures one row pair; width is used for error_fraction.
RowSimilarity measure_rows(const RleRow& a, const RleRow& b, pos_t width);

/// Similarity statistics aggregated over a whole image pair.
struct ImageSimilarity {
  len_t error_pixels = 0;
  double error_fraction = 0.0;     ///< over width*height
  std::uint64_t total_runs_a = 0;
  std::uint64_t total_runs_b = 0;
  std::uint64_t total_runs_xor = 0;
  std::uint64_t sum_run_count_difference = 0;  ///< summed per-row |k1 - k2|
  double jaccard = 1.0;
};

/// Measures an image pair (dimensions must match).
ImageSimilarity measure_images(const RleImage& a, const RleImage& b);

}  // namespace sysrle
