#include "workload/motion.hpp"

#include "bitmap/convert.hpp"
#include "common/assert.hpp"

namespace sysrle {

MotionScene::MotionScene(Rng& rng, const MotionParams& params)
    : params_(params) {
  SYSRLE_REQUIRE(params.width > 0 && params.height > 0,
                 "MotionScene: empty frame");
  SYSRLE_REQUIRE(params.min_size >= 1 && params.min_size <= params.max_size &&
                     params.max_size <= params.width &&
                     params.max_size <= params.height,
                 "MotionScene: bad object size range");
  objects_.reserve(params.objects);
  for (std::size_t i = 0; i < params.objects; ++i) {
    MovingObject o;
    o.w = rng.uniform(params.min_size, params.max_size);
    o.h = rng.uniform(params.min_size, params.max_size);
    o.x = rng.uniform(0, params.width - o.w);
    o.y = rng.uniform(0, params.height - o.h);
    do {
      o.dx = rng.uniform(-params.max_speed, params.max_speed);
      o.dy = rng.uniform(-params.max_speed, params.max_speed);
    } while (o.dx == 0 && o.dy == 0);
    objects_.push_back(o);
  }
}

BitmapImage MotionScene::render() const {
  BitmapImage frame(params_.width, params_.height);
  for (const MovingObject& o : objects_) frame.fill_rect(o.x, o.y, o.w, o.h, true);
  return frame;
}

void MotionScene::advance() {
  for (MovingObject& o : objects_) {
    o.x += o.dx;
    o.y += o.dy;
    if (o.x < 0) {
      o.x = -o.x;
      o.dx = -o.dx;
    }
    if (o.y < 0) {
      o.y = -o.y;
      o.dy = -o.dy;
    }
    if (o.x + o.w > params_.width) {
      o.x = 2 * (params_.width - o.w) - o.x;
      o.dx = -o.dx;
    }
    if (o.y + o.h > params_.height) {
      o.y = 2 * (params_.height - o.h) - o.y;
      o.dy = -o.dy;
    }
    // After a bounce the corner must be back in range (speeds are small
    // relative to the frame, but the contract keeps it honest).
    SYSRLE_CHECK(o.x >= 0 && o.y >= 0 && o.x + o.w <= params_.width &&
                     o.y + o.h <= params_.height,
                 "MotionScene::advance: object escaped the frame");
  }
}

std::vector<RleImage> generate_motion_sequence(Rng& rng,
                                               const MotionParams& params,
                                               std::size_t frames) {
  MotionScene scene(rng, params);
  std::vector<RleImage> out;
  out.reserve(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    out.push_back(bitmap_to_rle(scene.render()));
    scene.advance();
  }
  return out;
}

}  // namespace sysrle
