#pragma once
// Synthetic motion-detection workload: rectangular objects translating
// across a frame, bouncing at the borders.  Frame-to-frame RLE difference is
// one of the paper's motivating applications ("motion detection for safety
// and security").  Consecutive frames are highly similar — exactly the
// regime where the systolic machine's |k1 - k2| behaviour shines.

#include <vector>

#include "bitmap/bitmap_image.hpp"
#include "rle/rle_image.hpp"
#include "workload/rng.hpp"

namespace sysrle {

/// One moving rectangle.
struct MovingObject {
  pos_t x = 0, y = 0;  ///< top-left corner
  pos_t w = 0, h = 0;  ///< extent
  pos_t dx = 0, dy = 0;  ///< velocity in pixels/frame
};

/// Scene parameters.
struct MotionParams {
  pos_t width = 640;
  pos_t height = 480;
  std::size_t objects = 6;
  pos_t min_size = 12;
  pos_t max_size = 48;
  pos_t max_speed = 4;  ///< |dx|,|dy| <= max_speed, not both zero
};

/// A scene of moving rectangles that can be rendered frame by frame.
class MotionScene {
 public:
  MotionScene(Rng& rng, const MotionParams& params);

  /// Renders the current frame (objects are foreground).
  BitmapImage render() const;

  /// Advances every object one time step, bouncing off borders.
  void advance();

  const std::vector<MovingObject>& objects() const { return objects_; }

 private:
  MotionParams params_;
  std::vector<MovingObject> objects_;
};

/// Convenience: renders `frames` consecutive frames directly in RLE form.
std::vector<RleImage> generate_motion_sequence(Rng& rng,
                                               const MotionParams& params,
                                               std::size_t frames);

}  // namespace sysrle
