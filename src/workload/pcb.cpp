#include "workload/pcb.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace sysrle {

const char* to_string(DefectType type) {
  switch (type) {
    case DefectType::kOpen:
      return "open";
    case DefectType::kShort:
      return "short";
    case DefectType::kPinhole:
      return "pinhole";
    case DefectType::kSpur:
      return "spur";
    case DefectType::kMissingPad:
      return "missing-pad";
  }
  return "unknown";
}

std::string InjectedDefect::to_string() const {
  std::ostringstream os;
  os << sysrle::to_string(type) << " at (" << x << ',' << y << ") " << w << 'x'
     << h;
  return os.str();
}

BitmapImage generate_pcb_artwork(Rng& rng, const PcbParams& params) {
  SYSRLE_REQUIRE(params.width > 0 && params.height > 0,
                 "generate_pcb_artwork: empty board");
  SYSRLE_REQUIRE(params.trace_width >= 1 && params.pad_size >= 1,
                 "generate_pcb_artwork: degenerate feature sizes");
  BitmapImage board(params.width, params.height);

  // Horizontal traces: full-width copper strips at random vertical offsets.
  for (std::size_t i = 0; i < params.horizontal_traces; ++i) {
    const pos_t y =
        rng.uniform(0, std::max<pos_t>(0, params.height - params.trace_width));
    board.fill_rect(0, y, params.width,
                    std::min(params.trace_width, params.height - y), true);
  }

  // Vertical stubs: shorter strips at random positions.
  for (std::size_t i = 0; i < params.vertical_traces; ++i) {
    const pos_t x =
        rng.uniform(0, std::max<pos_t>(0, params.width - params.trace_width));
    const pos_t h = rng.uniform(params.height / 8, params.height / 2);
    const pos_t y = rng.uniform(0, std::max<pos_t>(0, params.height - h));
    board.fill_rect(x, y, std::min(params.trace_width, params.width - x),
                    std::min(h, params.height - y), true);
  }

  // Square pads.
  for (std::size_t i = 0; i < params.pads; ++i) {
    const pos_t s = std::min({params.pad_size, params.width, params.height});
    const pos_t x = rng.uniform(0, params.width - s);
    const pos_t y = rng.uniform(0, params.height - s);
    board.fill_rect(x, y, s, s, true);
  }
  return board;
}

namespace {

/// Finds a pixel with the requested polarity by rejection sampling; falls
/// back to scanning if the board is extremely unbalanced.
bool find_pixel(Rng& rng, const BitmapImage& board, bool want, pos_t& out_x,
                pos_t& out_y) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    const pos_t x = rng.uniform(0, board.width() - 1);
    const pos_t y = rng.uniform(0, board.height() - 1);
    if (board.get(x, y) == want) {
      out_x = x;
      out_y = y;
      return true;
    }
  }
  for (pos_t y = 0; y < board.height(); ++y)
    for (pos_t x = 0; x < board.width(); ++x)
      if (board.get(x, y) == want) {
        out_x = x;
        out_y = y;
        return true;
      }
  return false;
}

}  // namespace

std::vector<InjectedDefect> inject_pcb_defects(Rng& rng, BitmapImage& board,
                                               const DefectParams& params) {
  SYSRLE_REQUIRE(params.min_size >= 1 && params.min_size <= params.max_size,
                 "inject_pcb_defects: bad size range");
  std::vector<InjectedDefect> defects;
  defects.reserve(params.count);

  for (std::size_t i = 0; i < params.count; ++i) {
    const auto type = static_cast<DefectType>(rng.uniform(0, 4));
    // Copper-removing defects anchor on copper, copper-adding on background.
    const bool removes = type == DefectType::kOpen ||
                         type == DefectType::kPinhole ||
                         type == DefectType::kMissingPad;
    pos_t cx = 0, cy = 0;
    if (!find_pixel(rng, board, removes, cx, cy)) continue;

    pos_t w = rng.uniform(params.min_size, params.max_size);
    pos_t h = rng.uniform(params.min_size, params.max_size);
    if (type == DefectType::kOpen) h = std::max(h, board.height() / 32);
    if (type == DefectType::kMissingPad) {
      w = std::max<pos_t>(w, 8);
      h = std::max<pos_t>(h, 8);
    }
    const pos_t x = std::clamp<pos_t>(cx - w / 2, 0, board.width() - w);
    const pos_t y = std::clamp<pos_t>(cy - h / 2, 0, board.height() - h);
    board.fill_rect(x, y, w, h, !removes);
    defects.push_back({type, x, y, w, h});
  }
  return defects;
}

}  // namespace sysrle
