#pragma once
// Synthetic printed-circuit-board artwork and defect injection.  The paper is
// motivated by reference-based PCB inspection ("comparison of the board image
// against the original CAD design", section 1); this module generates the
// CAD-reference side and fabricates realistic defect classes on a copy to
// play the role of the scanned board.

#include <string>
#include <vector>

#include "bitmap/bitmap_image.hpp"
#include "workload/rng.hpp"

namespace sysrle {

/// Geometry of the synthetic board artwork.
struct PcbParams {
  pos_t width = 1024;
  pos_t height = 256;
  std::size_t horizontal_traces = 12;  ///< long copper traces across the board
  std::size_t vertical_traces = 24;    ///< stubs/columns connecting them
  pos_t trace_width = 3;               ///< copper width in pixels
  std::size_t pads = 24;               ///< square solder pads
  pos_t pad_size = 9;
};

/// Draws deterministic random artwork: horizontal and vertical traces plus
/// square pads.  Foreground (1) is copper.
BitmapImage generate_pcb_artwork(Rng& rng, const PcbParams& params);

/// The classic reference-comparison defect classes.
enum class DefectType {
  kOpen,        ///< copper missing across a trace (connection broken)
  kShort,       ///< stray copper bridging background
  kPinhole,     ///< small void inside copper
  kSpur,        ///< small copper protrusion
  kMissingPad,  ///< an entire pad absent
};

/// Human-readable defect class name.
const char* to_string(DefectType type);

/// Ground truth for one injected defect (bounding box in pixels).
struct InjectedDefect {
  DefectType type;
  pos_t x = 0, y = 0, w = 0, h = 0;

  std::string to_string() const;
};

/// Defect injection parameters.
struct DefectParams {
  std::size_t count = 8;   ///< defects to inject
  pos_t min_size = 2;      ///< defect edge length range
  pos_t max_size = 6;
};

/// Injects `params.count` defects into `board` (which starts as a copy of
/// the reference artwork) and returns the ground-truth list.  Defect types
/// are chosen uniformly; copper-removing defects are centred on copper,
/// copper-adding defects on background.
std::vector<InjectedDefect> inject_pcb_defects(Rng& rng, BitmapImage& board,
                                               const DefectParams& params);

}  // namespace sysrle
