#include "workload/rng.hpp"

#include "common/assert.hpp"

namespace sysrle {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  SYSRLE_REQUIRE(lo <= hi, "Rng::uniform: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace sysrle
