#pragma once
// Deterministic pseudo-random number generation for the experiment
// harnesses.  Self-contained (SplitMix64 seeding + xoshiro256**) so that
// every figure and table in EXPERIMENTS.md is reproducible bit-for-bit on
// any platform, independent of the standard library's distributions.

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace sysrle {

/// xoshiro256** seeded via SplitMix64.  Not cryptographic; fast and
/// statistically solid for simulation workloads.
class Rng {
 public:
  /// Seeds deterministically; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  /// Unbiased (rejection sampling).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Creates an independent generator for a sub-task (e.g. one row) so rows
  /// can be generated in any order with identical results.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sysrle
