// Tests for the bounded two-class admission queue.

#include "service/admission_queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace sysrle {
namespace {

ServiceRequest request(std::uint64_t id, Priority priority) {
  ServiceRequest r;
  r.id = id;
  r.priority = priority;
  return r;
}

AdmissionConfig small_config(std::size_t interactive, std::size_t batch) {
  AdmissionConfig cfg;
  cfg.interactive_capacity = interactive;
  cfg.batch_capacity = batch;
  return cfg;
}

TEST(AdmissionQueue, PopsInteractiveBeforeBatchFifoWithinClass) {
  AdmissionQueue q(small_config(4, 4), 1);
  EXPECT_FALSE(q.try_push(request(1, Priority::kBatch)).has_value());
  EXPECT_FALSE(q.try_push(request(2, Priority::kInteractive)).has_value());
  EXPECT_FALSE(q.try_push(request(3, Priority::kBatch)).has_value());
  EXPECT_FALSE(q.try_push(request(4, Priority::kInteractive)).has_value());
  q.close();
  std::vector<std::uint64_t> order;
  while (auto item = q.pop()) order.push_back(item->request.id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 4, 1, 3}));
}

TEST(AdmissionQueue, RefusesWithQueueFullPerClass) {
  AdmissionQueue q(small_config(1, 2), 1);
  EXPECT_FALSE(q.try_push(request(1, Priority::kInteractive)).has_value());
  const auto refused = q.try_push(request(2, Priority::kInteractive));
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(*refused, RejectReason::kQueueFull);
  // The batch class has its own capacity: still admitted.
  EXPECT_FALSE(q.try_push(request(3, Priority::kBatch)).has_value());
  EXPECT_FALSE(q.try_push(request(4, Priority::kBatch)).has_value());
  const auto batch_refused = q.try_push(request(5, Priority::kBatch));
  ASSERT_TRUE(batch_refused.has_value());
  EXPECT_EQ(*batch_refused, RejectReason::kQueueFull);
  EXPECT_EQ(q.depth(), 3u);
}

TEST(AdmissionQueue, ClosedQueueRefusesWithShutdownAndDrains) {
  AdmissionQueue q(small_config(4, 4), 1);
  EXPECT_FALSE(q.try_push(request(1, Priority::kBatch)).has_value());
  q.close();
  EXPECT_TRUE(q.closed());
  const auto refused = q.try_push(request(2, Priority::kBatch));
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(*refused, RejectReason::kShutdown);
  // Drain contract: what was admitted is still served...
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->request.id, 1u);
  // ...then pop reports end-of-stream instead of blocking.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(AdmissionQueue, PopBlocksUntilWorkArrives) {
  AdmissionQueue q(small_config(4, 4), 1);
  std::uint64_t got = 0;
  std::thread consumer([&] {
    auto item = q.pop();
    if (item) got = item->request.id;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(q.try_push(request(42, Priority::kBatch)).has_value());
  consumer.join();
  EXPECT_EQ(got, 42u);
}

TEST(AdmissionQueue, EarlyShedRampsUpAsBatchFillsAndIsSeedDeterministic) {
  AdmissionConfig cfg = small_config(4, 100);
  cfg.batch_shed_threshold = 0.5;
  auto run = [&cfg](std::uint64_t seed) {
    AdmissionQueue q(cfg, seed);
    std::vector<bool> admitted;
    for (std::uint64_t i = 0; i < 100; ++i)
      admitted.push_back(!q.try_push(request(i, Priority::kBatch)).has_value());
    return admitted;
  };
  const std::vector<bool> a = run(9);
  const std::vector<bool> b = run(9);
  EXPECT_EQ(a, b);  // the shed coin is the seed, not global state

  // Below the threshold nothing is early-shed; above it, some arrivals are
  // refused before the queue is actually full.
  AdmissionQueue q(cfg, 9);
  std::size_t shed = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto r = q.try_push(request(i, Priority::kBatch));
    if (i < 50) {
      EXPECT_FALSE(r.has_value()) << "early shed below threshold";
    }
    if (r.has_value()) ++shed;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_LT(q.depth(), 100u);
}

TEST(AdmissionQueue, InteractiveIsNeverEarlyShed) {
  AdmissionConfig cfg = small_config(100, 4);
  cfg.batch_shed_threshold = 0.0;  // batch sheds with probability = fill
  AdmissionQueue q(cfg, 3);
  for (std::uint64_t i = 0; i < 100; ++i)
    EXPECT_FALSE(q.try_push(request(i, Priority::kInteractive)).has_value());
  EXPECT_EQ(q.depth(), 100u);
}

TEST(AdmissionQueue, PublishesDepthGaugeBalanced) {
  reset_telemetry();
  set_telemetry_enabled(true);
  {
    AdmissionQueue q(small_config(4, 4), 1);
    (void)q.try_push(request(1, Priority::kBatch));
    (void)q.try_push(request(2, Priority::kInteractive));
    EXPECT_EQ(global_metrics().snapshot().gauge("service.queue_depth", -1.0),
              2.0);
    q.close();
    while (q.pop().has_value()) {
    }
    EXPECT_EQ(global_metrics().snapshot().gauge("service.queue_depth", -1.0),
              0.0);
  }
  set_telemetry_enabled(false);
  reset_telemetry();
}

TEST(AdmissionQueue, RejectsInvalidConfig) {
  EXPECT_THROW(AdmissionQueue(small_config(0, 4), 1), contract_error);
  AdmissionConfig bad = small_config(4, 4);
  bad.batch_shed_threshold = 1.5;
  EXPECT_THROW(AdmissionQueue(bad, 1), contract_error);
}

TEST(AdmissionQueue, ToStringsCoverTheVocabulary) {
  EXPECT_STREQ(to_string(Priority::kInteractive), "interactive");
  EXPECT_STREQ(to_string(Priority::kBatch), "batch");
  EXPECT_STREQ(to_string(RejectReason::kQueueFull), "queue_full");
  EXPECT_STREQ(to_string(RejectReason::kDeadlineExpired), "deadline_expired");
  EXPECT_STREQ(to_string(RejectReason::kCircuitOpen), "circuit_open");
  EXPECT_STREQ(to_string(RejectReason::kShutdown), "shutdown");
  EXPECT_STREQ(to_string(ServiceResponse::Status::kCompleted), "completed");
  EXPECT_STREQ(to_string(ServiceResponse::Status::kRejected), "rejected");
  EXPECT_STREQ(to_string(ServiceResponse::Status::kFailed), "failed");
}

}  // namespace
}  // namespace sysrle
