// Tests for the contract-checking layer itself — everything else in the
// suite relies on these macros actually firing.

#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sysrle {
namespace {

TEST(Contracts, RequireFiresOnFalse) {
  EXPECT_NO_THROW(SYSRLE_REQUIRE(true, "never"));
  EXPECT_THROW(SYSRLE_REQUIRE(false, "boom"), contract_error);
}

TEST(Contracts, EnsureAndCheckFire) {
  EXPECT_THROW(SYSRLE_ENSURE(1 == 2, "post"), contract_error);
  EXPECT_THROW(SYSRLE_CHECK(1 == 2, "inv"), contract_error);
}

TEST(Contracts, MessageCarriesConditionLocationAndText) {
  try {
    SYSRLE_REQUIRE(2 + 2 == 5, "arithmetic is safe");
    FAIL() << "did not throw";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_assert.cpp"), std::string::npos);
    EXPECT_NE(what.find("arithmetic is safe"), std::string::npos);
  }
}

TEST(Contracts, KindsAreDistinguished) {
  auto kind_of = [](auto fn) -> std::string {
    try {
      fn();
    } catch (const contract_error& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(kind_of([] { SYSRLE_REQUIRE(false, ""); }).find("precondition"),
            std::string::npos);
  EXPECT_NE(kind_of([] { SYSRLE_ENSURE(false, ""); }).find("postcondition"),
            std::string::npos);
  EXPECT_NE(kind_of([] { SYSRLE_CHECK(false, ""); }).find("invariant"),
            std::string::npos);
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto tick = [&calls] {
    ++calls;
    return true;
  };
  SYSRLE_REQUIRE(tick(), "once");
  EXPECT_EQ(calls, 1);
}

TEST(Contracts, StdStringMessagesWork) {
  const std::string msg = "dynamic " + std::to_string(42);
  try {
    SYSRLE_CHECK(false, msg);
    FAIL();
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("dynamic 42"), std::string::npos);
  }
}

TEST(Contracts, ContractErrorIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(SYSRLE_REQUIRE(false, ""), std::logic_error);
}

}  // namespace
}  // namespace sysrle
