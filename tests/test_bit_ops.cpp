// Tests for word-parallel bit operations (the uncompressed ground truth).

#include "bitmap/bit_ops.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

BitRow random_bitrow(Rng& rng, pos_t width, double density) {
  BitRow row(width);
  for (pos_t i = 0; i < width; ++i)
    if (rng.bernoulli(density)) row.set(i, true);
  return row;
}

TEST(BitOps, XorAndOrNotAgainstPerPixel) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const pos_t width = rng.uniform(1, 250);
    const BitRow a = random_bitrow(rng, width, 0.5);
    const BitRow b = random_bitrow(rng, width, 0.5);
    const BitRow x = xor_bitrows(a, b);
    const BitRow n = and_bitrows(a, b);
    const BitRow o = or_bitrows(a, b);
    const BitRow c = not_bitrow(a);
    for (pos_t i = 0; i < width; ++i) {
      EXPECT_EQ(x.get(i), a.get(i) != b.get(i));
      EXPECT_EQ(n.get(i), a.get(i) && b.get(i));
      EXPECT_EQ(o.get(i), a.get(i) || b.get(i));
      EXPECT_EQ(c.get(i), !a.get(i));
    }
  }
}

TEST(BitOps, NotKeepsTailClean) {
  const BitRow a(70);  // all zero, 6 bits of tail in word 2
  const BitRow c = not_bitrow(a);
  EXPECT_EQ(c.popcount(), 70);  // not 128
}

TEST(BitOps, WidthMismatchRejected) {
  const BitRow a(10), b(11);
  EXPECT_THROW(xor_bitrows(a, b), contract_error);
  EXPECT_THROW(bit_hamming(a, b), contract_error);
}

TEST(BitOps, HammingCountsDifferences) {
  const BitRow a = BitRow::from_string("110010");
  const BitRow b = BitRow::from_string("011010");
  EXPECT_EQ(bit_hamming(a, b), 2);
  EXPECT_EQ(bit_hamming(a, a), 0);
}

TEST(BitOps, ImageXorAndHamming) {
  BitmapImage a(40, 3), b(40, 3);
  a.fill_rect(0, 0, 10, 3, true);
  b.fill_rect(5, 0, 10, 3, true);
  const BitmapImage x = xor_images(a, b);
  EXPECT_EQ(x.popcount(), 30);  // [0,5) and [10,15) per row
  EXPECT_EQ(image_hamming(a, b), 30);
  BitmapImage c(40, 4);
  EXPECT_THROW(xor_images(a, c), contract_error);
  EXPECT_THROW(image_hamming(a, c), contract_error);
}

}  // namespace
}  // namespace sysrle
