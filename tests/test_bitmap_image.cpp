// Tests for the 2-D packed bitmap image.

#include "bitmap/bitmap_image.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace sysrle {
namespace {

TEST(BitmapImage, ConstructsEmpty) {
  const BitmapImage img(17, 9);
  EXPECT_EQ(img.width(), 17);
  EXPECT_EQ(img.height(), 9);
  EXPECT_EQ(img.popcount(), 0);
}

TEST(BitmapImage, SetAndGet) {
  BitmapImage img(8, 4);
  img.set(3, 2, true);
  EXPECT_TRUE(img.get(3, 2));
  EXPECT_FALSE(img.get(2, 3));
  img.set(3, 2, false);
  EXPECT_EQ(img.popcount(), 0);
}

TEST(BitmapImage, RowAccessBoundsChecked) {
  BitmapImage img(8, 4);
  EXPECT_THROW(img.row(4), contract_error);
  EXPECT_THROW(img.mutable_row(-1), contract_error);
}

TEST(BitmapImage, FillRect) {
  BitmapImage img(20, 10);
  img.fill_rect(5, 2, 10, 4, true);
  EXPECT_EQ(img.popcount(), 40);
  for (pos_t y = 0; y < 10; ++y)
    for (pos_t x = 0; x < 20; ++x)
      EXPECT_EQ(img.get(x, y), x >= 5 && x < 15 && y >= 2 && y < 6)
          << x << ',' << y;
  img.fill_rect(6, 3, 2, 2, false);
  EXPECT_EQ(img.popcount(), 36);
}

TEST(BitmapImage, FillRectRejectsOutOfBounds) {
  BitmapImage img(10, 10);
  EXPECT_THROW(img.fill_rect(5, 5, 6, 2, true), contract_error);
  EXPECT_THROW(img.fill_rect(0, 9, 1, 2, true), contract_error);
  EXPECT_THROW(img.fill_rect(0, 0, -1, 1, true), contract_error);
}

TEST(BitmapImage, FillRectZeroExtentIsNoop) {
  BitmapImage img(10, 10);
  img.fill_rect(9, 9, 0, 5, true);  // zero width: no pixels, no bounds error
  EXPECT_EQ(img.popcount(), 0);
}

TEST(BitmapImage, ToStringRendersRows) {
  BitmapImage img(3, 2);
  img.set(1, 0, true);
  img.set(2, 1, true);
  EXPECT_EQ(img.to_string(), "010\n001");
}

TEST(BitmapImage, EqualityIsValueBased) {
  BitmapImage a(5, 5), b(5, 5);
  EXPECT_EQ(a, b);
  a.set(0, 0, true);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sysrle
