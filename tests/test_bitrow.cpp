// Tests for the packed bit row.

#include "bitmap/bitrow.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

TEST(BitRow, StartsAllZero) {
  const BitRow row(130);
  EXPECT_EQ(row.width(), 130);
  EXPECT_EQ(row.popcount(), 0);
  for (pos_t i = 0; i < 130; ++i) EXPECT_FALSE(row.get(i));
}

TEST(BitRow, SetAndGetAcrossWordBoundaries) {
  BitRow row(130);
  for (const pos_t i : {0, 1, 63, 64, 65, 127, 128, 129}) {
    row.set(i, true);
    EXPECT_TRUE(row.get(i)) << i;
  }
  EXPECT_EQ(row.popcount(), 8);
  row.set(64, false);
  EXPECT_FALSE(row.get(64));
  EXPECT_EQ(row.popcount(), 7);
}

TEST(BitRow, IndexBoundsChecked) {
  BitRow row(10);
  EXPECT_THROW(row.get(10), contract_error);
  EXPECT_THROW(row.get(-1), contract_error);
  EXPECT_THROW(row.set(10, true), contract_error);
  EXPECT_THROW(row.flip(10), contract_error);
}

TEST(BitRow, FlipToggles) {
  BitRow row(5);
  row.flip(2);
  EXPECT_TRUE(row.get(2));
  row.flip(2);
  EXPECT_FALSE(row.get(2));
}

TEST(BitRow, FillSpanningWords) {
  BitRow row(200);
  row.fill(60, 80, true);  // spans words 0,1,2
  for (pos_t i = 0; i < 200; ++i)
    EXPECT_EQ(row.get(i), i >= 60 && i < 140) << i;
  EXPECT_EQ(row.popcount(), 80);
  row.fill(100, 10, false);
  EXPECT_EQ(row.popcount(), 70);
}

TEST(BitRow, FillFullWidth) {
  BitRow row(64);
  row.fill(0, 64, true);
  EXPECT_EQ(row.popcount(), 64);
}

TEST(BitRow, FillZeroLengthIsNoop) {
  BitRow row(10);
  row.fill(3, 0, true);
  EXPECT_EQ(row.popcount(), 0);
}

TEST(BitRow, FillBoundsChecked) {
  BitRow row(10);
  EXPECT_THROW(row.fill(8, 3, true), contract_error);
  EXPECT_THROW(row.fill(0, -1, true), contract_error);
}

TEST(BitRow, FlipRangeSpanningWords) {
  BitRow row(150);
  row.fill(0, 150, true);
  row.flip_range(50, 70);
  for (pos_t i = 0; i < 150; ++i)
    EXPECT_EQ(row.get(i), i < 50 || i >= 120) << i;
}

TEST(BitRow, StringRoundTrip) {
  Rng rng(3);
  std::string bits(97, '0');
  for (auto& c : bits)
    if (rng.bernoulli(0.5)) c = '1';
  const BitRow row = BitRow::from_string(bits);
  EXPECT_EQ(row.to_string(), bits);
}

TEST(BitRow, FromStringRejectsBadCharacters) {
  EXPECT_THROW(BitRow::from_string("01a"), contract_error);
}

TEST(BitRow, MaskTailClearsStrayBits) {
  BitRow row(5);
  row.mutable_words()[0] = ~std::uint64_t{0};
  row.mask_tail();
  EXPECT_EQ(row.popcount(), 5);
}

TEST(BitRow, EqualityIsValueBased) {
  BitRow a(70), b(70);
  EXPECT_EQ(a, b);
  a.set(69, true);
  EXPECT_NE(a, b);
  b.set(69, true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sysrle
