// Tests for the composed Boolean operations (AND / difference via
// multi-pass XOR + OR machine runs).

#include "core/boolean_ops.hpp"

#include <gtest/gtest.h>

#include "rle/encode.hpp"
#include "rle/ops.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;

TEST(BooleanOps, AndBasics) {
  const RleRow a = encode_bitstring("1100");
  const RleRow b = encode_bitstring("1010");
  const BooleanOpResult r = systolic_and(a, b);
  EXPECT_EQ(r.output, encode_bitstring("1000"));
  EXPECT_EQ(r.passes, 3u);
  EXPECT_GT(r.counters.iterations, 0u);
}

TEST(BooleanOps, AndEdgeCases) {
  const RleRow a = encode_bitstring("1111");
  EXPECT_EQ(systolic_and(a, a).output, a);
  EXPECT_TRUE(systolic_and(a, RleRow{}).output.empty());
  EXPECT_TRUE(systolic_and(RleRow{}, a).output.empty());
  EXPECT_TRUE(systolic_and(RleRow{}, RleRow{}).output.empty());
}

TEST(BooleanOps, AndMatchesParitySweepOnRandomInputs) {
  Rng rng(1501);
  for (int trial = 0; trial < 80; ++trial) {
    const pos_t width = rng.uniform(1, 250);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    ASSERT_EQ(systolic_and(a, b).output, and_rows(a, b)) << "trial " << trial;
  }
}

TEST(BooleanOps, AndExhaustiveWidth6) {
  for (unsigned va = 0; va < 64; ++va) {
    std::string sa(6, '0');
    for (int i = 0; i < 6; ++i)
      if (va & (1u << i)) sa[static_cast<std::size_t>(i)] = '1';
    const RleRow a = encode_bitstring(sa);
    for (unsigned vb = 0; vb < 64; ++vb) {
      std::string sb(6, '0');
      for (int i = 0; i < 6; ++i)
        if (vb & (1u << i)) sb[static_cast<std::size_t>(i)] = '1';
      const RleRow b = encode_bitstring(sb);
      ASSERT_EQ(systolic_and(a, b).output, and_rows(a, b))
          << sa << " & " << sb;
    }
  }
}

TEST(BooleanOps, SubtractBasics) {
  const RleRow a = encode_bitstring("1110");
  const RleRow b = encode_bitstring("0110");
  const BooleanOpResult r = systolic_subtract(a, b);
  EXPECT_EQ(r.output, encode_bitstring("1000"));
  EXPECT_EQ(r.passes, 4u);
}

TEST(BooleanOps, SubtractMatchesParitySweepOnRandomInputs) {
  Rng rng(1502);
  for (int trial = 0; trial < 60; ++trial) {
    const pos_t width = rng.uniform(1, 200);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    ASSERT_EQ(systolic_subtract(a, b).output, subtract_rows(a, b))
        << "trial " << trial;
  }
}

TEST(BooleanOps, SubtractIsAsymmetric) {
  const RleRow a = encode_bitstring("1100");
  const RleRow b = encode_bitstring("0110");
  EXPECT_EQ(systolic_subtract(a, b).output, encode_bitstring("1000"));
  EXPECT_EQ(systolic_subtract(b, a).output, encode_bitstring("0010"));
}

TEST(BooleanOps, CountersAccumulateAcrossPasses) {
  Rng rng(1503);
  const RleRow a = random_row(rng, 500, 0.4);
  const RleRow b = random_row(rng, 500, 0.4);
  const BooleanOpResult r_and = systolic_and(a, b);
  const BooleanOpResult r_sub = systolic_subtract(a, b);
  // The subtract embeds the AND, so it must cost at least as much.
  EXPECT_GE(r_sub.counters.iterations, r_and.counters.iterations);
  EXPECT_GT(r_and.counters.xors, 0u);
}

}  // namespace
}  // namespace sysrle
