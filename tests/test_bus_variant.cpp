// Tests for the broadcast-bus variant (the paper's section-6 future work):
// it must compute the same XOR as every other engine while taking no more
// iterations than the pure systolic machine.

#include "core/bus_variant.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/systolic_diff.hpp"
#include "rle/ops.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;
using sysrle::testing::reference_xor;

const RleRow kImg1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
const RleRow kImg2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};

TEST(BusVariant, PaperFigure1Output) {
  const BusResult r = bus_systolic_xor(kImg1, kImg2);
  EXPECT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2));
}

TEST(BusVariant, EmptyInputs) {
  EXPECT_TRUE(bus_systolic_xor(RleRow{}, RleRow{}).output.empty());
  EXPECT_EQ(bus_systolic_xor(kImg1, RleRow{}).output, kImg1);
  EXPECT_EQ(bus_systolic_xor(RleRow{}, kImg2).output, kImg2);
}

TEST(BusVariant, MatchesReferenceOnRandomInputs) {
  Rng rng(303);
  for (int trial = 0; trial < 80; ++trial) {
    const pos_t width = rng.uniform(1, 250);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const BusResult r = bus_systolic_xor(a, b);
    EXPECT_EQ(r.output.canonical(), reference_xor(a, b, width))
        << "trial " << trial;
  }
}

TEST(BusVariant, EssentiallyNeverSlowerThanPureSystolic) {
  // The bus variant routes each travelling run directly to its destination.
  // When two displaced runs contend for the same destination cell the loser
  // is pushed one cell past it, which can cost a single extra iteration in
  // rare cases — so the per-case guarantee is "pure + 1", and on average the
  // bus must be at least as fast.
  Rng rng(305);
  std::uint64_t pure_total = 0, bus_total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const pos_t width = rng.uniform(50, 400);
    const RleRow a = random_row(rng, width, 0.4);
    const RleRow b = random_row(rng, width, 0.4);
    const SystolicResult pure = systolic_xor(a, b);
    const BusResult bus = bus_systolic_xor(a, b);
    EXPECT_LE(bus.counters.iterations, pure.counters.iterations + 1)
        << "trial " << trial;
    pure_total += pure.counters.iterations;
    bus_total += bus.counters.iterations;
  }
  EXPECT_LE(bus_total, pure_total);
}

TEST(BusVariant, FiniteBusSerialisesLongHops) {
  Rng rng(306);
  const pos_t width = 2000;
  const RleRow a = random_row(rng, width, 0.4);
  const RleRow b = random_row(rng, width, 0.4);

  BusConfig wide;   // unbounded
  BusConfig narrow;
  narrow.bus_width = 1;
  const BusResult rw = bus_systolic_xor(a, b, wide);
  const BusResult rn = bus_systolic_xor(a, b, narrow);
  // Same computation, same iteration count; only the cycle accounting
  // differs.
  EXPECT_EQ(rw.output, rn.output);
  EXPECT_EQ(rw.counters.iterations, rn.counters.iterations);
  EXPECT_EQ(rw.counters.bus_cycles, 0u);
  EXPECT_GE(rn.total_cycles(), rw.total_cycles());
  if (rn.counters.bus_moves > rn.counters.iterations) {
    EXPECT_GT(rn.counters.bus_cycles, 0u);
  }
}

TEST(BusVariant, CanonicalizeOutputOption) {
  BusConfig cfg;
  cfg.canonicalize_output = true;
  const BusResult r = bus_systolic_xor(RleRow{{0, 4}}, RleRow{{4, 4}}, cfg);
  EXPECT_EQ(r.output, (RleRow{{0, 8}}));
}

TEST(BusVariant, RespectsTheorem1Bound) {
  Rng rng(307);
  for (int trial = 0; trial < 30; ++trial) {
    const pos_t width = rng.uniform(1, 300);
    const RleRow a = random_row(rng, width, rng.uniform01());
    const RleRow b = random_row(rng, width, rng.uniform01());
    const BusResult r = bus_systolic_xor(a, b);
    EXPECT_LE(r.counters.iterations, a.run_count() + b.run_count());
  }
}

TEST(BusVariant, RejectsCapacityBelowInputRuns) {
  BusConfig cfg;
  cfg.capacity = 2;
  EXPECT_THROW(bus_systolic_xor(kImg1, kImg2, cfg), contract_error);
}

}  // namespace
}  // namespace sysrle
