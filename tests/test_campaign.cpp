// Campaign harness tests, including the resilience acceptance criterion:
// a sweep of >= 1000 fault trials through the checked engine must end with
// zero silent corruptions and zero unrecovered rows.

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

struct Workload {
  RleImage a{0, 0};
  RleImage b{0, 0};
};

Workload make_workload(std::uint64_t seed, pos_t width, pos_t height,
                       double error_fraction) {
  Rng rng(seed);
  RowGenParams p;
  p.width = width;
  Workload w;
  w.a = generate_image(rng, height, p);
  w.b = RleImage(width, height);
  for (pos_t y = 0; y < height; ++y) {
    ErrorGenParams ep;
    ep.error_fraction = error_fraction;
    w.b.set_row(y, inject_errors(rng, w.a.row(y), width, ep));
  }
  return w;
}

TEST(Campaign, AcceptanceSweepAllFaultsContained) {
  // The headline claim of the fault-tolerant layer: over a full
  // kind x activation x cell x row sweep (>= 1000 trials), nothing is
  // silently wrong and nothing is left uncomputed.
  const Workload w = make_workload(1999, 768, 8, 0.03);
  const CampaignResult r = run_fault_campaign(w.a, w.b);
  EXPECT_GE(r.total.trials, 1000u);
  EXPECT_EQ(r.total.silent_corruptions, 0u);
  EXPECT_EQ(r.total.unrecovered, 0u);
  EXPECT_TRUE(r.all_recovered());
  // The sweep must actually bite: faults detected, both recovery paths hit.
  EXPECT_GT(r.total.detected, 0u);
  EXPECT_GT(r.total.fell_back, 0u);
  EXPECT_GT(r.total.recovered_by_retry, 0u);
  // 4 kinds x 3 activations, every group populated evenly.
  ASSERT_EQ(r.groups.size(), 12u);
  for (const CampaignResult::Group& g : r.groups) {
    EXPECT_EQ(g.counts.trials, r.total.trials / 12) << to_string(g.kind);
    EXPECT_EQ(g.counts.silent_corruptions, 0u);
  }
}

TEST(Campaign, CountsAreConsistent) {
  const Workload w = make_workload(2001, 512, 4, 0.02);
  const CampaignResult r = run_fault_campaign(w.a, w.b);
  // Every trial lands in exactly one outcome bucket.
  EXPECT_EQ(r.total.trials, r.total.clean + r.total.recovered_by_retry +
                                r.total.fell_back + r.total.unrecovered);
  CampaignCounts folded;
  for (const CampaignResult::Group& g : r.groups) folded += g.counts;
  EXPECT_EQ(folded.trials, r.total.trials);
  EXPECT_EQ(folded.detected, r.total.detected);
  EXPECT_EQ(folded.wasted_cycles, r.total.wasted_cycles);
}

TEST(Campaign, ConfigFiltersRestrictTheSweep) {
  const Workload w = make_workload(2002, 512, 2, 0.02);
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kDropShift};
  cfg.activations = {FaultActivation::kPermanent};
  const CampaignResult r = run_fault_campaign(w.a, w.b, cfg);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].kind, FaultKind::kDropShift);
  EXPECT_EQ(r.groups[0].activation, FaultActivation::kPermanent);
  EXPECT_EQ(r.total.trials, r.groups[0].counts.trials);
}

TEST(Campaign, CellStrideThinsTrialsProportionally) {
  const Workload w = make_workload(2003, 512, 2, 0.02);
  CampaignConfig full;
  CampaignConfig thin;
  thin.cell_stride = 4;
  const CampaignResult rf = run_fault_campaign(w.a, w.b, full);
  const CampaignResult rt = run_fault_campaign(w.a, w.b, thin);
  EXPECT_LT(rt.total.trials, rf.total.trials);
  EXPECT_GE(rt.total.trials, rf.total.trials / 4);
}

TEST(Campaign, NoFallbackPolicyCanLeaveRowsUnrecoveredButNeverSilent) {
  const Workload w = make_workload(2004, 512, 2, 0.02);
  CampaignConfig cfg;
  cfg.policy.fallback_to_sequential = false;
  cfg.policy.max_retries = 0;
  cfg.activations = {FaultActivation::kPermanent};
  const CampaignResult r = run_fault_campaign(w.a, w.b, cfg);
  EXPECT_GT(r.total.unrecovered, 0u);
  EXPECT_FALSE(r.all_recovered());
  EXPECT_EQ(r.total.silent_corruptions, 0u);  // still no lies
}

TEST(Campaign, IsDeterministicForAGivenSeed) {
  const Workload w = make_workload(2005, 512, 2, 0.02);
  CampaignConfig cfg;
  cfg.cell_stride = 2;
  const CampaignResult x = run_fault_campaign(w.a, w.b, cfg);
  const CampaignResult y = run_fault_campaign(w.a, w.b, cfg);
  EXPECT_EQ(x.total.trials, y.total.trials);
  EXPECT_EQ(x.total.detected, y.total.detected);
  EXPECT_EQ(x.total.recovered_by_retry, y.total.recovered_by_retry);
  EXPECT_EQ(x.total.fell_back, y.total.fell_back);
  EXPECT_EQ(x.total.wasted_cycles, y.total.wasted_cycles);
}

TEST(Campaign, RejectsMismatchedDimensionsAndZeroStride) {
  const Workload w = make_workload(2006, 256, 2, 0.02);
  const RleImage other(w.a.width(), w.a.height() + 1);
  EXPECT_THROW(run_fault_campaign(w.a, other), contract_error);
  CampaignConfig cfg;
  cfg.cell_stride = 0;
  EXPECT_THROW(run_fault_campaign(w.a, w.b, cfg), contract_error);
}

}  // namespace
}  // namespace sysrle
