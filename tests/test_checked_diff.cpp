// Tests for the fault-tolerant checked engine: clean rows pass through
// untouched, detected faults trigger retry then sequential fallback, and the
// accepted output always matches ground truth.

#include "core/checked_diff.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "rle/ops.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sysrle {
namespace {

using sysrle::testing::random_row;
using sysrle::testing::reference_xor;

const RleRow kImg1{{10, 3}, {16, 2}, {23, 2}, {27, 3}};
const RleRow kImg2{{3, 4}, {8, 5}, {15, 5}, {23, 2}, {27, 4}};

TEST(CheckedDiff, HealthyRowIsCleanFirstTry) {
  const CheckedRowResult r = checked_xor(kImg1, kImg2);
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kCleanFirstTry);
  EXPECT_TRUE(r.record.ok());
  EXPECT_FALSE(r.record.faulty());
  EXPECT_EQ(r.record.retries(), 0u);
  EXPECT_EQ(r.record.attempts.size(), 1u);
  EXPECT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2).canonical());
  // Theorem 1: the clean run fits the k1+k2 budget, so no watchdog fired.
  EXPECT_LE(r.record.total_cycles,
            static_cast<cycle_t>(kImg1.run_count() + kImg2.run_count()));
}

TEST(CheckedDiff, EmptyRowsAreClean) {
  const CheckedRowResult r = checked_xor(RleRow{}, RleRow{});
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kCleanFirstTry);
  EXPECT_TRUE(r.output.empty());
}

TEST(CheckedDiff, PermanentFaultFallsBackWithCorrectOutput) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;  // always-detected on the Figure-1 pair
  FaultInjection injection;
  injection.spec = &spec;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, {}, injection);
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kFellBack);
  EXPECT_TRUE(r.record.faulty());
  EXPECT_EQ(r.record.attempts.size(), 3u);  // 1 try + 2 retries, all detected
  EXPECT_GT(r.record.fallback_iterations, 0u);
  EXPECT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2).canonical());
  for (const AttemptRecord& a : r.record.attempts) {
    EXPECT_TRUE(a.detected || a.timed_out);
    EXPECT_FALSE(a.diagnostic.empty());
  }
}

TEST(CheckedDiff, TransientFaultRecoversByRetry) {
  // Glitch alive only during the first attempt's cycles: the retry runs on
  // a healthy machine because the arbiter's clock is global.
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;
  spec.activation = FaultActivation::kTransient;
  spec.window_start = 1;
  spec.window_length = 1;
  FaultInjection injection;
  injection.spec = &spec;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, {}, injection);
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kRecoveredByRetry);
  EXPECT_TRUE(r.record.faulty());
  EXPECT_EQ(r.record.retries(), 1u);
  EXPECT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2).canonical());
}

TEST(CheckedDiff, IntermittentFaultRecoversOrFallsBackCorrectly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultSpec spec;
    spec.kind = FaultKind::kCorruptXorEnd;
    spec.cell = 1;
    spec.activation = FaultActivation::kIntermittent;
    spec.probability = 0.7;
    spec.seed = seed;
    FaultInjection injection;
    injection.spec = &spec;
    const CheckedRowResult r = checked_xor(kImg1, kImg2, {}, injection);
    ASSERT_TRUE(r.record.ok()) << "seed " << seed;
    ASSERT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2).canonical())
        << "seed " << seed << " outcome " << to_string(r.record.outcome);
  }
}

TEST(CheckedDiff, FallbackDisabledReportsUnrecovered) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;
  FaultInjection injection;
  injection.spec = &spec;
  RecoveryPolicy policy;
  policy.fallback_to_sequential = false;
  policy.max_retries = 1;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, policy, injection);
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kUnrecovered);
  EXPECT_FALSE(r.record.ok());
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(r.record.attempts.size(), 2u);
}

TEST(CheckedDiff, ZeroRetriesGoesStraightToFallback) {
  FaultSpec spec;
  spec.kind = FaultKind::kDropShift;
  spec.cell = 3;
  FaultInjection injection;
  injection.spec = &spec;
  RecoveryPolicy policy;
  policy.max_retries = 0;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, policy, injection);
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kFellBack);
  EXPECT_EQ(r.record.attempts.size(), 1u);
  EXPECT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2).canonical());
}

TEST(CheckedDiff, NegativeRetryBudgetRejected) {
  RecoveryPolicy policy;
  policy.max_retries = -1;
  EXPECT_THROW(checked_xor(kImg1, kImg2, policy), contract_error);
}

TEST(CheckedDiff, CanonicalizeOptionAppliesToBothPaths) {
  RecoveryPolicy policy;
  policy.canonicalize_output = true;
  const CheckedRowResult clean = checked_xor(kImg1, kImg2, policy);
  EXPECT_TRUE(clean.output.is_canonical());

  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;
  FaultInjection injection;
  injection.spec = &spec;
  const CheckedRowResult fell = checked_xor(kImg1, kImg2, policy, injection);
  EXPECT_EQ(fell.record.outcome, RecoveryOutcome::kFellBack);
  EXPECT_TRUE(fell.output.is_canonical());
}

TEST(CheckedDiff, NoFalsePositivesOnRandomRows) {
  // The checkers must never cry wolf on a healthy machine: 200 random row
  // pairs, all clean first try, all matching the independent reference.
  Rng rng(909);
  const pos_t width = 400;
  for (int trial = 0; trial < 200; ++trial) {
    const RleRow a = random_row(rng, width, 0.3);
    const RleRow b = random_row(rng, width, 0.3);
    const CheckedRowResult r = checked_xor(a, b);
    ASSERT_EQ(r.record.outcome, RecoveryOutcome::kCleanFirstTry) << trial;
    ASSERT_EQ(r.output.canonical(), reference_xor(a, b, width)) << trial;
  }
}

// Scripted gate: answers allow_retry() from a fixed list, records calls.
class ScriptedGate : public RetryGate {
 public:
  explicit ScriptedGate(std::vector<bool> answers)
      : answers_(std::move(answers)) {}
  bool allow_retry() override {
    const std::size_t i = calls_++;
    return i < answers_.size() ? answers_[i] : false;
  }
  std::size_t calls() const { return calls_; }

 private:
  std::vector<bool> answers_;
  std::size_t calls_ = 0;
};

TEST(CheckedDiff, GateDenyingAllRetriesGoesStraightToFallback) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;  // always-detected on the Figure-1 pair
  FaultInjection injection;
  injection.spec = &spec;
  ScriptedGate gate({});  // denies every retry
  RecoveryPolicy policy;
  policy.max_retries = 2;
  policy.retry_gate = &gate;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, policy, injection);
  // One attempt, the veto eats both allowed retries, straight to fallback.
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kFellBack);
  EXPECT_EQ(r.record.attempts.size(), 1u);
  EXPECT_EQ(gate.calls(), 1u);  // consulted once, denial stops the sequence
  EXPECT_EQ(r.output.canonical(), xor_rows(kImg1, kImg2).canonical());
}

TEST(CheckedDiff, GateAllowingRetriesKeepsThemWithinMaxRetries) {
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;
  FaultInjection injection;
  injection.spec = &spec;
  ScriptedGate gate({true, true, true, true});  // would allow more than max
  RecoveryPolicy policy;
  policy.max_retries = 2;
  policy.retry_gate = &gate;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, policy, injection);
  // The gate allows everything, so the outcome matches the ungated run:
  // 1 try + 2 retries, then fallback.  max_retries still caps the count.
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kFellBack);
  EXPECT_EQ(r.record.attempts.size(), 3u);
  EXPECT_EQ(gate.calls(), 2u);
}

TEST(CheckedDiff, GateIsNeverConsultedOnACleanRow) {
  ScriptedGate gate({true, true});
  RecoveryPolicy policy;
  policy.retry_gate = &gate;
  const CheckedRowResult r = checked_xor(kImg1, kImg2, policy);
  EXPECT_EQ(r.record.outcome, RecoveryOutcome::kCleanFirstTry);
  EXPECT_EQ(gate.calls(), 0u);
}

TEST(CheckedDiff, DeniedRetriesAreCountedInTelemetry) {
  reset_telemetry();
  set_telemetry_enabled(true);
  FaultSpec spec;
  spec.kind = FaultKind::kNoSwap;
  spec.cell = 0;
  FaultInjection injection;
  injection.spec = &spec;
  ScriptedGate gate({});
  RecoveryPolicy policy;
  policy.retry_gate = &gate;
  (void)checked_xor(kImg1, kImg2, policy, injection);
  EXPECT_EQ(global_metrics().snapshot().counter("checked.retries_denied"), 1u);
  set_telemetry_enabled(false);
  reset_telemetry();
}

TEST(CheckedDiff, OutcomeNamesAreDistinct) {
  EXPECT_STRNE(to_string(RecoveryOutcome::kCleanFirstTry),
               to_string(RecoveryOutcome::kRecoveredByRetry));
  EXPECT_STRNE(to_string(RecoveryOutcome::kFellBack),
               to_string(RecoveryOutcome::kUnrecovered));
}

}  // namespace
}  // namespace sysrle
