// Tests for the three-state circuit breaker (closed -> open -> half-open).

#include "core/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include "telemetry/telemetry.hpp"

namespace sysrle {
namespace {

BreakerPolicy policy(int threshold, std::uint64_t open_duration,
                     int probes = 1) {
  BreakerPolicy p;
  p.failure_threshold = threshold;
  p.open_duration = open_duration;
  p.probe_successes_to_close = probes;
  return p;
}

TEST(CircuitBreaker, StartsClosedAndAdmitsEverything) {
  CircuitBreaker b(policy(3, 100));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  for (std::uint64_t t = 0; t < 10; ++t) EXPECT_TRUE(b.allow(t));
  EXPECT_EQ(b.transitions(), 0u);
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker b(policy(3, 100));
  b.record_failure(1);
  b.record_failure(2);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.consecutive_failures(), 2);
  b.record_failure(3);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(4));
  EXPECT_FALSE(b.allow(102));  // window is [3, 103)
  EXPECT_EQ(b.reopen_at(), 103u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreaker b(policy(3, 100));
  b.record_failure(1);
  b.record_failure(2);
  b.record_success(3);
  EXPECT_EQ(b.consecutive_failures(), 0);
  b.record_failure(4);
  b.record_failure(5);
  EXPECT_EQ(b.state(), BreakerState::kClosed);  // streak restarted
  b.record_failure(6);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, HalfOpenAdmitsLimitedProbesAfterTheWindow) {
  CircuitBreaker b(policy(1, 50, /*probes=*/2));
  b.record_failure(10);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(59));
  EXPECT_TRUE(b.allow(60));  // window elapsed: first probe
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.allow(61));   // second probe slot
  EXPECT_FALSE(b.allow(62));  // probe slots exhausted
}

TEST(CircuitBreaker, ProbeSuccessesCloseTheBreaker) {
  CircuitBreaker b(policy(1, 50, /*probes=*/2));
  b.record_failure(0);
  ASSERT_TRUE(b.allow(50));
  ASSERT_TRUE(b.allow(51));
  b.record_success(55);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);  // one of two
  b.record_success(56);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(57));
}

TEST(CircuitBreaker, ProbeFailureReopensImmediately) {
  CircuitBreaker b(policy(1, 50));
  b.record_failure(0);
  ASSERT_TRUE(b.allow(50));
  b.record_failure(55);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(56));
  // The new window starts at the probe failure, not the original trip.
  EXPECT_EQ(b.reopen_at(), 105u);
  EXPECT_TRUE(b.allow(105));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, ReleaseProbeFreesAnAbandonedHalfOpenSlot) {
  CircuitBreaker b(policy(1, 50, /*probes=*/1));
  b.record_failure(0);
  ASSERT_TRUE(b.allow(50));  // the only probe slot
  EXPECT_FALSE(b.allow(51));
  // The probe was shed before the backend ran (queue full / deadline):
  // releasing the slot re-admits a fresh probe instead of wedging half-open.
  b.release_probe();
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);  // no outcome recorded
  EXPECT_TRUE(b.allow(52));
  b.record_success(53);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ReleaseProbeIsANoOpOutsideHalfOpen) {
  CircuitBreaker b(policy(1, 50));
  b.release_probe();  // closed: nothing to release
  EXPECT_TRUE(b.allow(1));
  b.record_failure(2);
  b.release_probe();  // open: nothing to release
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(3));
}

TEST(CircuitBreaker, FullRecoveryCycleCountsTransitions) {
  CircuitBreaker b(policy(2, 10));
  b.record_failure(1);
  b.record_failure(2);               // closed -> open
  ASSERT_TRUE(b.allow(12));          // open -> half-open
  b.record_success(13);              // half-open -> closed
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.transitions(), 3u);
}

TEST(CircuitBreaker, PublishesStateGaugeWhenNamed) {
  reset_telemetry();
  set_telemetry_enabled(true);
  CircuitBreaker b(policy(1, 10), "unit");
  b.record_failure(1);
  const MetricsSnapshot open_snap = global_metrics().snapshot();
  EXPECT_EQ(open_snap.gauge("service.breaker_state.unit", -1.0),
            static_cast<double>(BreakerState::kOpen));
  ASSERT_TRUE(b.allow(11));
  b.record_success(12);
  const MetricsSnapshot closed_snap = global_metrics().snapshot();
  EXPECT_EQ(closed_snap.gauge("service.breaker_state.unit", -1.0),
            static_cast<double>(BreakerState::kClosed));
  EXPECT_GE(closed_snap.counter("service.breaker_transitions"), 3u);
  set_telemetry_enabled(false);
  reset_telemetry();
}

TEST(CircuitBreaker, ToStringNamesEveryState) {
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace sysrle
